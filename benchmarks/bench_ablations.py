"""Benchmark: ablations over the proposed method's design choices.

Section IV motivates two knobs; this bench regenerates the sweep tables:

* per-epoch step size (empirical property 1: steps that are too small
  cripple the defense — the "relatively large per step perturbation"
  choice);
* reset interval (tracking long-term classifier drift).
"""

import pytest

from repro.experiments import (
    run_reset_interval_ablation,
    run_step_size_ablation,
)

from conftest import save_artifact


@pytest.mark.benchmark(group="ablations")
def test_step_size_ablation(benchmark, digits_pool):
    result = benchmark.pedantic(
        run_step_size_ablation,
        args=(digits_pool.config,),
        kwargs={"pool": digits_pool},
        rounds=1,
        iterations=1,
    )
    text = result.render()
    print("\n" + text)
    path = save_artifact("ablation_step_size.txt", text)
    result.save(path.replace(".txt", ".json"))

    # Property-1 shape: the largest step must beat the smallest step on
    # iterative-attack robustness.
    by_fraction = dict(zip(result.values, result.accuracy))
    smallest = by_fraction[min(by_fraction)]
    largest = by_fraction[max(by_fraction)]
    assert largest["bim10"] >= smallest["bim10"]


@pytest.mark.benchmark(group="ablations")
def test_reset_interval_ablation(benchmark, digits_pool):
    result = benchmark.pedantic(
        run_reset_interval_ablation,
        args=(digits_pool.config,),
        kwargs={"pool": digits_pool},
        rounds=1,
        iterations=1,
    )
    text = result.render()
    print("\n" + text)
    path = save_artifact("ablation_reset_interval.txt", text)
    result.save(path.replace(".txt", ".json"))

    for accuracy in result.accuracy:
        assert 0.0 <= accuracy["bim10"] <= 1.0
