"""Microbenchmarks: attack generation cost.

The paper's efficiency argument rests on generation cost scaling linearly
with the BIM iteration count; these benches measure exactly that on a fixed
batch, using pytest-benchmark's statistical timing.
"""

import numpy as np
import pytest

from repro.attacks import BIM, FGSM, MIM, PGD
from repro.data import load_dataset
from repro.models import mnist_mlp


@pytest.fixture(scope="module")
def victim():
    model = mnist_mlp(seed=0)
    model.eval()
    return model


@pytest.fixture(scope="module")
def batch():
    train, _ = load_dataset("digits", train_per_class=13, test_per_class=1, seed=0)
    x, y = train.arrays()
    return x[:128], y[:128]


@pytest.mark.benchmark(group="attack-generation")
def test_fgsm_generation(benchmark, victim, batch):
    x, y = batch
    attack = FGSM(victim, 0.25)
    benchmark(attack.generate, x, y)


@pytest.mark.benchmark(group="attack-generation")
@pytest.mark.parametrize("steps", [5, 10, 30])
def test_bim_generation_scales_with_steps(benchmark, victim, batch, steps):
    x, y = batch
    attack = BIM(victim, 0.25, num_steps=steps)
    benchmark.pedantic(attack.generate, args=(x, y), rounds=3, iterations=1)


@pytest.mark.benchmark(group="attack-generation")
def test_pgd_generation(benchmark, victim, batch):
    x, y = batch
    attack = PGD(victim, 0.25, num_steps=10, rng=0)
    benchmark.pedantic(attack.generate, args=(x, y), rounds=3, iterations=1)


@pytest.mark.benchmark(group="attack-generation")
def test_mim_generation(benchmark, victim, batch):
    x, y = batch
    attack = MIM(victim, 0.25, num_steps=10)
    benchmark.pedantic(attack.generate, args=(x, y), rounds=3, iterations=1)
