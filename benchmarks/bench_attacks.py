"""Microbenchmarks: attack generation cost.

The paper's efficiency argument rests on generation cost scaling linearly
with the BIM iteration count; these benches measure exactly that on a fixed
batch, using pytest-benchmark's statistical timing.

A second group measures the engine's batched early stopping: a
robust-accuracy sweep with masking on must beat the identical sweep with
masking off by >= 1.2x (fooled examples leave the forward/backward passes,
so the sweep only pays for survivors).  The comparison is written to
``benchmarks/results/attack_earlystop.txt``.
"""

import time

import numpy as np
import pytest

from conftest import save_artifact, save_bench
from repro.attacks import BIM, FGSM, MIM, PGD, build_attack
from repro.data import DataLoader, load_dataset
from repro.defenses import Trainer
from repro.eval import robust_accuracy
from repro.models import mnist_mlp
from repro.optim import Adam


@pytest.fixture(scope="module")
def victim():
    model = mnist_mlp(seed=0)
    model.eval()
    return model


@pytest.fixture(scope="module")
def batch():
    train, _ = load_dataset("digits", train_per_class=13, test_per_class=1, seed=0)
    x, y = train.arrays()
    return x[:128], y[:128]


@pytest.mark.benchmark(group="attack-generation")
def test_fgsm_generation(benchmark, victim, batch):
    x, y = batch
    attack = FGSM(victim, 0.25)
    benchmark(attack.generate, x, y)


@pytest.mark.benchmark(group="attack-generation")
@pytest.mark.parametrize("steps", [5, 10, 30])
def test_bim_generation_scales_with_steps(benchmark, victim, batch, steps):
    x, y = batch
    attack = BIM(victim, 0.25, num_steps=steps)
    benchmark.pedantic(attack.generate, args=(x, y), rounds=3, iterations=1)


@pytest.mark.benchmark(group="attack-generation")
def test_pgd_generation(benchmark, victim, batch):
    x, y = batch
    attack = PGD(victim, 0.25, num_steps=10, rng=0)
    benchmark.pedantic(attack.generate, args=(x, y), rounds=3, iterations=1)


@pytest.mark.benchmark(group="attack-generation")
def test_mim_generation(benchmark, victim, batch):
    x, y = batch
    attack = MIM(victim, 0.25, num_steps=10)
    benchmark.pedantic(attack.generate, args=(x, y), rounds=3, iterations=1)


# ----------------------------------------------------------------------
# Batched early stopping.
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def trained_victim():
    """A lightly trained classifier: realistic retirement dynamics (most
    examples are fooled within the first BIM iterations, a few resist)."""
    train, test = load_dataset(
        "digits", train_per_class=30, test_per_class=15, seed=0
    )
    model = mnist_mlp(seed=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=1e-3))
    trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=3)
    model.eval()
    return model, test.arrays()


@pytest.mark.benchmark(group="attack-earlystop")
@pytest.mark.parametrize("early_stop", [False, True], ids=["mask-off", "mask-on"])
def test_bim30_earlystop_generation(benchmark, trained_victim, early_stop):
    model, (x, y) = trained_victim
    attack = build_attack(
        "bim", model, epsilon=0.25, num_steps=30, early_stop=early_stop
    )
    benchmark.pedantic(
        attack.generate, args=(x[:128], y[:128]), rounds=3, iterations=1
    )


def test_earlystop_sweep_speedup(trained_victim):
    """The early-stop robust-accuracy sweep must be >= 1.2x faster.

    Runs the same BIM(30) robust-accuracy evaluation over the test split
    with per-example masking on and off (best of three each) and asserts
    the masked sweep wins by the gate margin without weakening the attack
    (early stop freezes fooled examples, it never un-fools them).  The
    rendered comparison is saved as a results artifact.
    """
    model, (x, y) = trained_victim

    def sweep(early_stop):
        attack = build_attack(
            "bim", model, epsilon=0.25, num_steps=30, early_stop=early_stop
        )
        return robust_accuracy(model, attack, x, y, batch_size=128)

    def best_of(early_stop, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            sweep(early_stop)
            best = min(best, time.perf_counter() - start)
        return best

    # Warm both paths (BLAS threads, workspace pool).
    acc_off = sweep(False)
    acc_on = sweep(True)
    t_off = best_of(False)
    t_on = best_of(True)
    speedup = t_off / t_on
    lines = [
        "batched early stop: BIM(30) robust-accuracy sweep, digits test split",
        f"mask off: {t_off * 1000:8.2f} ms/sweep (robust acc {acc_off:.4f})",
        f"mask on:  {t_on * 1000:8.2f} ms/sweep (robust acc {acc_on:.4f})",
        f"speedup (off/on): {speedup:.3f}x  (gate >= 1.2x)",
    ]
    text = "\n".join(lines)
    path = save_artifact("attack_earlystop.txt", text)
    save_bench(
        "attack_earlystop",
        {
            "speedup": (speedup, "x", "higher"),
            "mask_off_ms": (t_off * 1000.0, "ms", None),
            "mask_on_ms": (t_on * 1000.0, "ms", None),
        },
        context={"workload":
                 "BIM(30) robust-accuracy sweep, digits test split"},
    )
    print(f"\n{text}\nsaved: {path}")
    assert acc_on <= acc_off + 1e-9, "early stop must not weaken the attack"
    assert np.isfinite(speedup)
    assert speedup >= 1.2, (
        f"early-stop sweep only {speedup:.2f}x faster than the mask-off "
        "baseline (expected >= 1.2x)"
    )
