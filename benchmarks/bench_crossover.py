"""Benchmark: where does the proposed method cross Iter-Adv?

Sweeps the training/eval budget and compares the proposed Single-Adv
method against BIM(10)-Adv pointwise.  Locates the crossover epsilon (if
any) on this substrate — the "where crossovers fall" half of the
reproduction contract.
"""

import math
import os

import pytest

from repro.experiments import run_crossover_study

from conftest import bench_config, save_artifact

SHAPE_CHECKS = os.environ.get("REPRO_BENCH_SCALE", "medium") != "smoke"


@pytest.mark.benchmark(group="crossover")
def test_budget_crossover(benchmark):
    config = bench_config("digits")
    base_eps = config.resolved_epsilon
    epsilons = (0.6 * base_eps, base_eps, 1.3 * base_eps)
    result = benchmark.pedantic(
        run_crossover_study,
        args=(config, epsilons),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    crossover = result.crossover_epsilon("proposed", "bim10_adv")
    text += (
        "\n\nfirst epsilon where proposed < bim10_adv: "
        + ("none in sweep" if math.isnan(crossover) else f"{crossover:g}")
    )
    print("\n" + text)
    path = save_artifact("crossover_digits.txt", text)
    result.save(path.replace(".txt", ".json"))

    if not SHAPE_CHECKS:
        return
    # At the calibrated budget the two methods must be within a sane band
    # (the paper's "same level" claim); a blowout either way means the
    # substrate drifted.
    gap_at_base = result.gap("proposed", "bim10_adv")[1]
    assert abs(gap_at_base) < 0.25
