"""Benchmark: extension defenses beyond Table I (future-work section).

The paper's future work calls for "more experiments to get deeper
understanding of Single-Adv and Iter-Adv"; this bench extends Table I with
the two standard relatives of the proposed method:

* ``pgd_adv``  — Iter-Adv with random-start PGD (Madry et al., 2017);
* ``free_adv`` — free adversarial training (Shafahi et al., 2019), the
  other published way to amortise the attack across training.

Expected shape: free_adv robustness between FGSM-Adv and Iter-Adv at a
cost of ~``replays`` vanilla epochs; pgd_adv ≈ bim-Adv in both accuracy
and cost.
"""

import os

import pytest

from repro.eval import RobustnessEvaluator, format_percent, format_table
from repro.experiments import run_table1

from conftest import save_artifact

SHAPE_CHECKS = os.environ.get("REPRO_BENCH_SCALE", "medium") != "smoke"

EXTENDED_METHODS = ("fgsm_adv", "proposed", "free_adv", "pgd_adv")


def _run(pool):
    return run_table1(pool.config, pool=pool, methods=EXTENDED_METHODS)


@pytest.mark.benchmark(group="extensions")
def test_extended_defense_table(benchmark, digits_pool):
    result = benchmark.pedantic(
        _run, args=(digits_pool,), rounds=1, iterations=1
    )
    text = result.render()
    print("\n" + text)
    path = save_artifact("extensions_digits.txt", text)
    result.save(path.replace(".txt", ".json"))

    if not SHAPE_CHECKS:
        return
    accuracy = result.accuracy
    times = result.time_per_epoch
    # Free training beats plain FGSM-Adv on iterative attacks...
    assert accuracy["free_adv"]["bim10"] > accuracy["fgsm_adv"]["bim10"]
    # ... and the amortised methods stay far below PGD-Adv's cost.
    assert times["proposed"] < times["pgd_adv"]
