"""Benchmark regenerating Figure 1 (both panels).

Figure 1 plots test accuracy of four classifiers (Vanilla, FGSM-Adv,
BIM(10)-Adv, BIM(30)-Adv) against BIM examples with varying iteration
count ``N`` (per-step size ``eps / N``, fixed total budget).

Expected shape versus the paper:
  * Vanilla and FGSM-Adv collapse within a few iterations;
  * BIM-Adv classifiers plateau at much higher accuracy;
  * every curve converges quickly in N (empirical property 1).
"""

import os

import pytest

from repro.experiments import run_figure1

from conftest import save_artifact

SHAPE_CHECKS = os.environ.get("REPRO_BENCH_SCALE", "medium") != "smoke"


def _run(pool):
    return run_figure1(pool.config, pool=pool)


@pytest.mark.benchmark(group="figure1")
@pytest.mark.parametrize("dataset", ["digits", "fashion"])
def test_figure1(benchmark, dataset, digits_pool, fashion_pool):
    pool = digits_pool if dataset == "digits" else fashion_pool
    result = benchmark.pedantic(_run, args=(pool,), rounds=1, iterations=1)
    text = result.render()
    print("\n" + text)
    path = save_artifact(f"figure1_{dataset}.txt", text)
    result.save(path.replace(".txt", ".json"))

    if not SHAPE_CHECKS:
        return  # smoke scale trains too briefly for the shapes to emerge
    curves = result.curves
    last = {name: curve[-1] for name, curve in curves.items()}
    # Shape: defended (BIM-Adv) classifiers end far above undefended ones.
    assert last["bim10_adv"] > last["fgsm_adv"]
    assert last["bim30_adv"] > last["vanilla"]
    # Convergence in N: the tail of each curve is nearly flat.
    for name, curve in curves.items():
        assert abs(curve[-1] - curve[-2]) < 0.1, name
