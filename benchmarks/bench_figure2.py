"""Benchmark regenerating Figure 2 (both panels).

Figure 2 plots test accuracy after every intermediate iterate of a fixed
BIM(10) attack (per-step size ``eps / 10``) for the same four classifiers.

Expected shape versus the paper:
  * accuracy decreases (in trend) with the iterate index;
  * undefended classifiers are defeated before the attack finishes;
  * intermediate iterates already account for most of the degradation
    (empirical property 2).
"""

import os

import pytest

from repro.experiments import run_figure2

from conftest import save_artifact

SHAPE_CHECKS = os.environ.get("REPRO_BENCH_SCALE", "medium") != "smoke"


def _run(pool):
    return run_figure2(pool.config, pool=pool, num_steps=10)


@pytest.mark.benchmark(group="figure2")
@pytest.mark.parametrize("dataset", ["digits", "fashion"])
def test_figure2(benchmark, dataset, digits_pool, fashion_pool):
    pool = digits_pool if dataset == "digits" else fashion_pool
    result = benchmark.pedantic(_run, args=(pool,), rounds=1, iterations=1)
    text = result.render()
    print("\n" + text)
    path = save_artifact(f"figure2_{dataset}.txt", text)
    result.save(path.replace(".txt", ".json"))

    if not SHAPE_CHECKS:
        return  # smoke scale trains too briefly for the shapes to emerge
    for name, curve in result.curves.items():
        # Overall decreasing trend (start high, end lower).
        assert curve[-1] <= curve[0] + 1e-9, name
    # Undefended models end below the defended ones.
    assert result.curves["vanilla"][-1] < result.curves["bim10_adv"][-1]
