"""Microbenchmarks: core autograd/NN operation throughput.

Tracks the substrate performance the experiment costs rest on: forward and
forward+backward passes of the dense and convolutional models, plus the two
most expensive primitives (conv2d, matmul).
"""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d, matmul
from repro.models import mnist_cnn, mnist_mlp
from repro.nn import cross_entropy


@pytest.fixture(scope="module")
def image_batch():
    return np.random.default_rng(0).uniform(0, 1, size=(64, 1, 28, 28))


@pytest.fixture(scope="module")
def labels():
    return np.random.default_rng(1).integers(0, 10, size=64)


@pytest.mark.benchmark(group="ops")
def test_matmul_512(benchmark):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(512, 512)))
    b = Tensor(rng.normal(size=(512, 512)))
    benchmark(lambda: (a @ b).data)


@pytest.mark.benchmark(group="ops")
def test_conv2d_forward(benchmark, image_batch):
    x = Tensor(image_batch)
    w = Tensor(np.random.default_rng(0).normal(size=(16, 1, 3, 3)) * 0.1)
    benchmark(lambda: conv2d(x, w, padding=1).data)


@pytest.mark.benchmark(group="model-pass")
def test_mlp_forward(benchmark, image_batch):
    model = mnist_mlp(seed=0)
    model.eval()
    x = Tensor(image_batch)
    benchmark(lambda: model(x).data)


@pytest.mark.benchmark(group="model-pass")
def test_mlp_forward_backward(benchmark, image_batch, labels):
    model = mnist_mlp(seed=0)

    def step():
        model.zero_grad()
        loss = cross_entropy(model(Tensor(image_batch)), labels)
        loss.backward()

    benchmark(step)


@pytest.mark.benchmark(group="model-pass")
def test_cnn_forward_backward(benchmark, image_batch, labels):
    model = mnist_cnn(seed=0)

    def step():
        model.zero_grad()
        loss = cross_entropy(model(Tensor(image_batch)), labels)
        loss.backward()

    benchmark.pedantic(step, rounds=3, iterations=1)
