"""Microbenchmarks: core autograd/NN operation throughput.

Tracks the substrate performance the experiment costs rest on: forward and
forward+backward passes of the dense and convolutional models, plus the two
most expensive primitives (conv2d, matmul).

Every bench is parametrised over the runtime precision policy so a run
reports float32-vs-float64 throughput side by side (compare within each
``group`` in the pytest-benchmark table).  Inputs and models are built
inside ``precision(dtype)`` so weights, activations and gradients all
carry the policy dtype.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d, matmul
from repro.models import mnist_cnn, mnist_mlp
from repro.nn import cross_entropy
from repro.runtime import compute_dtype, precision

DTYPES = ["float64", "float32"]


def image_batch(dtype):
    raw = np.random.default_rng(0).uniform(0, 1, size=(64, 1, 28, 28))
    return raw.astype(dtype)


def labels():
    return np.random.default_rng(1).integers(0, 10, size=64)


@pytest.mark.benchmark(group="ops-matmul")
@pytest.mark.parametrize("dtype", DTYPES)
def test_matmul_512(benchmark, dtype):
    with precision(dtype):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(512, 512)).astype(compute_dtype()))
        b = Tensor(rng.normal(size=(512, 512)).astype(compute_dtype()))
        benchmark(lambda: (a @ b).data)


@pytest.mark.benchmark(group="ops-conv2d")
@pytest.mark.parametrize("dtype", DTYPES)
def test_conv2d_forward(benchmark, dtype):
    with precision(dtype):
        x = Tensor(image_batch(dtype))
        w = Tensor(
            (np.random.default_rng(0).normal(size=(16, 1, 3, 3)) * 0.1)
            .astype(compute_dtype())
        )
        benchmark(lambda: conv2d(x, w, padding=1).data)


@pytest.mark.benchmark(group="model-forward")
@pytest.mark.parametrize("dtype", DTYPES)
def test_mlp_forward(benchmark, dtype):
    with precision(dtype):
        model = mnist_mlp(seed=0)
        model.eval()
        x = Tensor(image_batch(dtype))
        benchmark(lambda: model(x).data)


@pytest.mark.benchmark(group="model-pass")
@pytest.mark.parametrize("dtype", DTYPES)
def test_mlp_forward_backward(benchmark, dtype):
    with precision(dtype):
        model = mnist_mlp(seed=0)
        x, y = image_batch(dtype), labels()

        def step():
            model.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            loss.backward()

        benchmark(step)


@pytest.mark.benchmark(group="model-pass")
@pytest.mark.parametrize("dtype", DTYPES)
def test_cnn_forward_backward(benchmark, dtype):
    with precision(dtype):
        model = mnist_cnn(seed=0)
        x, y = image_batch(dtype), labels()

        def step():
            model.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            loss.backward()

        benchmark.pedantic(step, rounds=3, iterations=1)
