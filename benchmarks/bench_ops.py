"""Microbenchmarks: core autograd/NN operation throughput.

Tracks the substrate performance the experiment costs rest on: forward and
forward+backward passes of the dense and convolutional models, plus the two
most expensive primitives (conv2d, matmul).

Every bench is parametrised over the runtime precision policy so a run
reports float32-vs-float64 throughput side by side (compare within each
``group`` in the pytest-benchmark table).  Inputs and models are built
inside ``precision(dtype)`` so weights, activations and gradients all
carry the policy dtype.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d, matmul
from repro.autograd._im2col import im2col
from repro.models import mnist_cnn, mnist_mlp
from repro.nn import cross_entropy, cross_entropy_reference
from repro.runtime import compute_dtype, get_workspace, hotpaths, precision

DTYPES = ["float64", "float32"]


def image_batch(dtype):
    raw = np.random.default_rng(0).uniform(0, 1, size=(64, 1, 28, 28))
    return raw.astype(dtype)


def labels():
    return np.random.default_rng(1).integers(0, 10, size=64)


@pytest.mark.benchmark(group="ops-matmul")
@pytest.mark.parametrize("dtype", DTYPES)
def test_matmul_512(benchmark, dtype):
    with precision(dtype):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(512, 512)).astype(compute_dtype()))
        b = Tensor(rng.normal(size=(512, 512)).astype(compute_dtype()))
        benchmark(lambda: (a @ b).data)


@pytest.mark.benchmark(group="ops-conv2d")
@pytest.mark.parametrize("dtype", DTYPES)
def test_conv2d_forward(benchmark, dtype):
    with precision(dtype):
        x = Tensor(image_batch(dtype))
        w = Tensor(
            (np.random.default_rng(0).normal(size=(16, 1, 3, 3)) * 0.1)
            .astype(compute_dtype())
        )
        benchmark(lambda: conv2d(x, w, padding=1).data)


@pytest.mark.benchmark(group="ops-loss")
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("impl", ["fused", "composed"])
def test_cross_entropy_forward_backward(benchmark, dtype, impl):
    """Fused softmax-CE node vs. the composed log_softmax chain."""
    loss_fn = cross_entropy if impl == "fused" else cross_entropy_reference
    with precision(dtype):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(512, 10)).astype(compute_dtype())
        y = rng.integers(0, 10, size=512)

        def step():
            t = Tensor(logits, requires_grad=True)
            loss_fn(t, y).backward()

        benchmark(step)


@pytest.mark.benchmark(group="ops-im2col")
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("impl", ["fast", "loop"])
def test_im2col_3x3_padded(benchmark, dtype, impl):
    """sliding_window_view + workspace gather vs. the kernel-position loop."""
    x = image_batch(dtype)
    workspace = get_workspace()

    def gather():
        with hotpaths(impl == "fast"):
            workspace.release(im2col(x, 3, 3, 1, 1))

    benchmark(gather)


@pytest.mark.benchmark(group="model-forward")
@pytest.mark.parametrize("dtype", DTYPES)
def test_mlp_forward(benchmark, dtype):
    with precision(dtype):
        model = mnist_mlp(seed=0)
        model.eval()
        x = Tensor(image_batch(dtype))
        benchmark(lambda: model(x).data)


@pytest.mark.benchmark(group="model-pass")
@pytest.mark.parametrize("dtype", DTYPES)
def test_mlp_forward_backward(benchmark, dtype):
    with precision(dtype):
        model = mnist_mlp(seed=0)
        x, y = image_batch(dtype), labels()

        def step():
            model.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            loss.backward()

        benchmark(step)


@pytest.mark.benchmark(group="model-pass")
@pytest.mark.parametrize("dtype", DTYPES)
def test_cnn_forward_backward(benchmark, dtype):
    with precision(dtype):
        model = mnist_cnn(seed=0)
        x, y = image_batch(dtype), labels()

        def step():
            model.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            loss.backward()

        benchmark.pedantic(step, rounds=3, iterations=1)
