"""Macrobenchmark: data-parallel epoch throughput vs the serial trainer.

``repro.parallel.DataParallelTrainer`` shards every batch across persistent
forked workers over shared-memory buffers.  Its payoff is compute
concurrency: adversarial-example generation plus forward/backward for each
shard runs on its own core while the parent only pays for the parameter
broadcast, the pipe round-trip and the deterministic gradient reduce.

``test_parallel_epoch_speedup`` gates that payoff on the repo's heaviest
per-batch regime: epochwise-adv (the proposed defense) CNN epochs, where
each batch step runs a full attack plus a mixture forward/backward — enough
arithmetic per pipe round-trip for sharding to win.  Two workers must beat
the serial epoch by at least 1.6x; four workers are measured and reported
alongside (not gated — runners expose 2 reliable cores, beyond that the
scaling is informational).

The gate's name contains ``epoch_speedup`` so the CI benchmark smoke lane
(which filters ``-k "not epoch_speedup"``) skips the timing-sensitive gate
on shared runners; it also self-skips on hosts with fewer than two usable
cores, where forked workers only time-slice one CPU and no speedup is
physically available.  ``test_parallel_smoke`` below is the light exercise
the dedicated CI parallel lane does run: a short two-worker training run
that must stay within summation-order tolerance of its serial twin.
"""

import os
import time

import numpy as np
import pytest

from conftest import save_artifact, save_bench
from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.models import build_model
from repro.optim import SGD
from repro.parallel import DataParallelTrainer, resolve_workers
from repro.runtime import compute_dtype


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _make(train_per_class=20, batch_size=32):
    train, _ = load_dataset(
        "digits", train_per_class=train_per_class, test_per_class=1, seed=0
    )
    loader = DataLoader(train, batch_size=batch_size, rng=0)
    model = build_model("small_cnn", seed=0)
    trainer = build_trainer(
        "proposed", model, epsilon=0.25,
        optimizer=SGD(model.parameters(), lr=0.05),
    )
    return loader, trainer


def _epoch_seconds(trainer, loader, epochs):
    """Median wall-clock seconds per epoch (workers run on other cores,
    so process-CPU time would not see the concurrency)."""
    times = []
    for _ in range(epochs):
        start = time.perf_counter()
        trainer.train_epoch(loader)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_parallel_epoch_speedup():
    """Two workers must beat the serial epochwise-adv CNN epoch by 1.6x.

    Skipped on hosts with fewer than two usable cores: forked workers
    then time-slice a single CPU and the parallel epoch can only tie or
    lose — there is nothing to gate.  CI runs this on multi-core runners
    via the dedicated parallel lane (without the smoke filter).
    """
    cores = _usable_cores()
    if cores < 2:
        pytest.skip(
            f"host exposes {cores} usable core(s); the speedup gate needs"
            " at least 2"
        )
    rounds = 5
    loader_s, trainer_s = _make()
    # Warm-up epoch: BLAS threads, workspace pool, adversarial cache.
    trainer_s.train_epoch(loader_s)
    t_serial = _epoch_seconds(trainer_s, loader_s, rounds)

    results = {}
    for workers in (2, 4):
        loader_p, inner = _make()
        wrapper = DataParallelTrainer(inner, num_workers=workers)
        try:
            wrapper.train_epoch(loader_p)  # warm-up: fork + caches
            results[workers] = _epoch_seconds(wrapper, loader_p, rounds)
        finally:
            wrapper.close()

    speedup2 = t_serial / results[2]
    speedup4 = t_serial / results[4]
    dtype = np.dtype(compute_dtype()).name
    lines = [
        f"data-parallel training: epochwise-adv CNN epoch, {dtype}, "
        f"{cores} usable cores",
        f"serial            : {t_serial * 1000:8.1f} ms/epoch (median)",
        f"2 workers         : {results[2] * 1000:8.1f} ms/epoch (median)"
        f"  -> {speedup2:.2f}x  (gate >= 1.6x)",
        f"4 workers         : {results[4] * 1000:8.1f} ms/epoch (median)"
        f"  -> {speedup4:.2f}x  (measured, not gated)",
    ]
    text = "\n".join(lines)
    path = save_artifact(f"parallel_speedup_{dtype}.txt", text)
    save_bench(
        f"parallel_speedup_{dtype}",
        {
            "speedup_2workers": (speedup2, "x", "higher"),
            "speedup_4workers": (speedup4, "x", None),
            "serial_ms": (t_serial * 1000.0, "ms", None),
        },
        context={"workload": "epochwise-adv CNN epoch",
                 "dtype": dtype, "cores": cores},
    )
    print(f"\n{text}\nsaved: {path}")
    assert np.isfinite(speedup2)
    assert speedup2 >= 1.6, (
        f"2 workers only {speedup2:.2f}x faster than serial "
        "(expected >= 1.6x)"
    )


def test_parallel_smoke():
    """Light CI exercise for the parallel lane: shards must reproduce serial.

    Trains the epochwise-adv CNN for two epochs serially and under the
    default worker count (``REPRO_WORKERS``, the parallel lane sets 2) and
    asserts the final parameters agree to summation-order tolerance —
    proving fork, shared-memory transport, sharded attack/backward and the
    deterministic reduce are all live without gating on wall-clock.
    """
    workers = resolve_workers(None)
    loader_s, trainer_s = _make(train_per_class=8, batch_size=16)
    serial_history = trainer_s.fit(loader_s, epochs=2)

    loader_p, inner = _make(train_per_class=8, batch_size=16)
    wrapper = DataParallelTrainer(inner, num_workers=workers)
    try:
        parallel_history = wrapper.fit(loader_p, epochs=2)
    finally:
        wrapper.close()

    tight = np.dtype(compute_dtype()) == np.float64
    tol = (
        dict(rtol=1e-6, atol=1e-9) if tight else dict(rtol=1e-3, atol=1e-5)
    )
    serial_state = trainer_s.model.state_dict()
    parallel_state = wrapper.model.state_dict()
    for key in serial_state:
        np.testing.assert_allclose(
            serial_state[key], parallel_state[key],
            err_msg=f"parameter {key} diverged at {workers} workers",
            **tol,
        )
    np.testing.assert_allclose(
        serial_history.losses, parallel_history.losses, **tol
    )
