"""Microbenchmark: micro-batched serving vs single-request-at-a-time.

The serving layer (``repro.serving``) coalesces concurrent classify
requests into batched forward passes.  Its payoff mirrors the compiled
tape's: per-request dispatch overhead.  A batch-1 server pays the full
engine walk — layer dispatch, buffer allocation, per-forward telemetry —
once per request; a micro-batched server pays it once per *batch* and
lets the kernels amortise over the coalesced examples, so even on a
single core the batched path wins on raw BLAS efficiency.

``test_serving_microbatch_speedup`` gates that payoff on the CNN
classify path: a closed-loop load generator (8 client threads, each
pushing waves of unique inputs through ``classify_many`` so the
prediction cache cannot help) must sustain at least 2x the examples/sec
through a ``max_batch_size=32`` service that it manages through an
otherwise identical ``max_batch_size=1`` service.  The workload is
identical in both modes — only server-side coalescing differs.
Per-wave p50/p99 latency and throughput for both modes are written to
``benchmarks/results/serving_throughput.txt``.

The gate self-skips under ``REPRO_BENCH_SCALE=smoke`` — the CI serving
lane runs on shared runners where wall-clock throughput ratios are too
noisy to gate on (and the gate's name contains ``speedup`` so the
benchmark smoke lanes' ``-k`` filters drop it as well).
``test_serving_coalesce_smoke`` below is the light exercise CI does
run: it proves concurrent load actually coalesces without gating on
time.
"""

import os
import threading
import time

import numpy as np
import pytest

from conftest import save_artifact, save_bench
from repro.models import build_model
from repro.serving import InferenceService

_CLIENTS = 8
_WAVE = 8        # examples per classify_many call
_WAVES = 6       # calls per client per round
_ROUNDS = 3


def _service(max_batch_size):
    """A cache-less eager CNN service; weights don't affect throughput."""
    return InferenceService(
        build_model("small_cnn", seed=0),
        max_batch_size=max_batch_size,
        max_wait_us=2000,
        queue_depth=256,
        cache_size=0,
        use_tape=False,
        name="small_cnn",
    )


def _drive(service, inputs):
    """Closed-loop load: _CLIENTS threads each push waves of examples.

    Every client loops ``classify_many`` over its own unique inputs, so
    requests from different clients are in flight together and the
    batched service has something to coalesce.  Returns (elapsed_s,
    per-wave latencies in ms).
    """
    latencies = [[] for _ in range(_CLIENTS)]
    errors = []

    def client(index):
        try:
            for wave in inputs[index]:
                start = time.perf_counter()
                service.classify_many(wave)
                latencies[index].append(
                    (time.perf_counter() - start) * 1000.0
                )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(_CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[0]
    return elapsed, [ms for per_client in latencies for ms in per_client]


def _measure(service, rng):
    """One round: fresh unique inputs, returns (examples/s, wave ms)."""
    inputs = rng.random(
        (_CLIENTS, _WAVES, _WAVE, 1, 28, 28)
    ).astype(np.float64)
    elapsed, latencies = _drive(service, inputs)
    return _CLIENTS * _WAVES * _WAVE / elapsed, latencies


def test_serving_microbatch_speedup():
    """Micro-batched serving must sustain >= 2x batch-1 throughput.

    Measures paired rounds (batch-1 then batched, back to back) and
    gates on the median of per-round throughput ratios, so a machine
    speed phase shift between rounds cannot skew the comparison.
    Throughput here is wall-clock by necessity — it is the metric being
    served — which is why this gate self-skips at smoke scale instead
    of running on noisy shared runners.
    """
    if os.environ.get("REPRO_BENCH_SCALE") == "smoke":
        pytest.skip("throughput gate needs an unloaded box (smoke scale)")
    rng = np.random.default_rng(0)
    with _service(1) as single, _service(32) as batched:
        # Warm-up: BLAS threads, workspace pool, first-touch allocations.
        _measure(single, rng)
        _measure(batched, rng)
        single_rps, batched_rps = [], []
        single_lat, batched_lat = [], []
        for _ in range(_ROUNDS):
            rps, lat = _measure(single, rng)
            single_rps.append(rps)
            single_lat.extend(lat)
            rps, lat = _measure(batched, rng)
            batched_rps.append(rps)
            batched_lat.extend(lat)
    ratios = [b / s for s, b in zip(single_rps, batched_rps)]
    speedup = float(np.median(ratios))
    rows = []
    for mode, rps, lat in (
        ("batch-1 ", single_rps, single_lat),
        ("batch-32", batched_rps, batched_lat),
    ):
        rows.append(
            f"{mode}: {np.median(rps):8.1f} examples/s   "
            f"wave p50 {np.percentile(lat, 50):7.2f} ms   "
            f"p99 {np.percentile(lat, 99):7.2f} ms"
        )
    lines = [
        "serving micro-batching: small_cnn classify, "
        f"{_CLIENTS} closed-loop clients x {_WAVE}-example waves, cache off",
        *rows,
        "per-round batched/batch-1 examples/s: "
        + " ".join(f"{r:.3f}" for r in ratios),
        f"speedup (median of paired rounds): {speedup:.3f}x  (gate >= 2x)",
    ]
    text = "\n".join(lines)
    path = save_artifact("serving_throughput.txt", text)
    save_bench(
        "serving_throughput",
        {
            "speedup": (speedup, "x", "higher"),
            "batch1_rps": (float(np.median(single_rps)),
                           "examples/s", None),
            "batch32_rps": (float(np.median(batched_rps)),
                            "examples/s", None),
        },
        context={"workload": f"small_cnn classify, {_CLIENTS} clients x "
                 f"{_WAVE}-example waves, cache off"},
    )
    print(f"\n{text}\nsaved: {path}")
    assert np.isfinite(speedup)
    assert speedup >= 2.0, (
        f"micro-batching only {speedup:.2f}x faster than batch-1 serving "
        "(expected >= 2x)"
    )


def test_serving_coalesce_smoke():
    """Light CI exercise: concurrent load actually forms multi-request
    batches and the latency histogram carries quantiles.
    """
    rng = np.random.default_rng(1)
    with _service(8) as service:
        inputs = rng.random((_CLIENTS, 2, 4, 1, 28, 28))
        _drive(service, inputs)
        stats = service.metrics()
    assert stats["batcher"]["requests"] == _CLIENTS * 2 * 4
    assert stats["batcher"]["batches"] < _CLIENTS * 2 * 4
    histograms = stats["metrics"]["histograms"]
    latency = histograms["serving.classify.batch_latency_ms"]
    assert latency["count"] >= stats["batcher"]["batches"]
    assert latency["p50"] <= latency["p99"]
    sizes = histograms["serving.classify.batch_size"]
    assert sizes["max"] > 1  # at least one multi-request batch formed
