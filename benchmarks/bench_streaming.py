"""Macrobenchmark: streamed epochwise training vs the in-memory path.

The streaming pipeline regenerates clean shards on demand
(``SyntheticSource``), keeps at most ``budget_bytes`` of them resident
(``ShardCache``), and carries only adversarial perturbations between
epochs (``DeltaStore``).  Its payoff is that dataset size no longer caps
what the system can train on — but that is only a win if paying for
regeneration does not throw away the throughput the fast kernels bought.

``test_streaming_epoch_speedup`` gates exactly that trade: an
epochwise-adv epoch over a synthetic stream at least 4x larger than the
configured byte budget must keep peak resident data-pipeline bytes
(shard cache *and* delta store) under budget while sustaining at least
0.8x the examples/s of the same training run over the fully materialised
in-memory dataset.  The attack plus forward/backward dominate each batch
step, and the prefetch thread overlaps shard regeneration with that
compute, so streaming should cost almost nothing on wall-clock.

The gate's name contains ``epoch_speedup`` so the CI benchmark smoke
lanes (which filter ``-k "not epoch_speedup"``) skip the timing gate on
shared runners; ``test_streaming_smoke`` below is the light exercise
those lanes do run — a short bounded-budget training run that must match
its unbounded twin bit-for-bit while staying under budget.
"""

import time

import numpy as np

from conftest import save_artifact, save_bench
from repro.data import DataLoader, SyntheticSource, TensorSource
from repro.defenses import build_trainer
from repro.models import build_model
from repro.optim import SGD
from repro.runtime import compute_dtype

SHARD = 128


def _source(num_examples, seed=0):
    return SyntheticSource(
        "digits", num_examples=num_examples, shard_size=SHARD, seed=seed
    )


def _trainer(budget_bytes=None, model_name="mnist_mlp"):
    model = build_model(model_name, seed=0)
    kwargs = {}
    if budget_bytes is not None:
        kwargs = dict(delta_budget_bytes=budget_bytes, delta_block_size=SHARD)
    return build_trainer(
        "proposed", model, epsilon=0.25,
        optimizer=SGD(model.parameters(), lr=0.05), **kwargs,
    )


def _shard_bytes():
    itemsize = np.dtype(compute_dtype()).itemsize
    return SHARD * (28 * 28 * itemsize + 8)


def _epoch_rate(trainer, loader, num_examples, rounds):
    """Median examples/s over ``rounds`` training epochs."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        trainer.train_epoch(loader)
        times.append(time.perf_counter() - start)
    return num_examples / float(np.median(times))


def test_streaming_epoch_speedup():
    """Streamed epochwise-adv training: under budget, >= 0.8x in-memory.

    The stream is 8 shards; the budget admits 2, so every epoch
    regenerates most of the dataset.  Peak bytes of both pipeline stores
    must stay under budget and throughput must hold 0.8x the in-memory
    path.  The gate trains the paper's CNN: its attack + batch step is
    the compute the prefetch thread hides regeneration behind — on a
    model cheaper than the renderer the 0.8x bound is not achievable and
    not representative.
    """
    num_examples = 8 * SHARD
    budget = 2 * _shard_bytes()
    dataset_bytes = 8 * _shard_bytes()
    assert dataset_bytes >= 4 * budget
    rounds = 3

    in_memory = _trainer(model_name="mnist_cnn")
    loader_m = DataLoader(
        TensorSource(_source(num_examples).materialize()),
        batch_size=64, rng=0,
    )
    in_memory.train_epoch(loader_m)  # warm-up: BLAS, workspace, cache
    rate_memory = _epoch_rate(in_memory, loader_m, num_examples, rounds)

    streamed = _trainer(budget_bytes=budget, model_name="mnist_cnn")
    loader_s = DataLoader(
        _source(num_examples), batch_size=64, rng=0, budget_bytes=budget
    )
    streamed.train_epoch(loader_s)
    rate_stream = _epoch_rate(streamed, loader_s, num_examples, rounds)

    ratio = rate_stream / rate_memory
    dtype = np.dtype(compute_dtype()).name
    lines = [
        f"streaming pipeline: epochwise-adv CNN training, {dtype}, "
        f"{num_examples} examples in {num_examples // SHARD} shards",
        f"byte budget       : {budget} B "
        f"(dataset {dataset_bytes // budget}x larger)",
        f"in-memory path    : {rate_memory:10.0f} examples/s (median)",
        f"streamed path     : {rate_stream:10.0f} examples/s (median)"
        f"  -> {ratio:.2f}x  (gate >= 0.8x)",
        f"shard cache peak  : {loader_s.cache.peak_bytes} B, "
        f"{loader_s.cache.evictions} evictions",
        f"delta store peak  : {streamed.delta_store.peak_bytes} B, "
        f"{streamed.delta_store.evictions} evictions",
    ]
    text = "\n".join(lines)
    path = save_artifact("streaming_throughput.txt", text)
    save_bench(
        "streaming_throughput",
        {
            "ratio": (ratio, "x", "higher"),
            "memory_rps": (rate_memory, "examples/s", None),
            "stream_rps": (rate_stream, "examples/s", None),
        },
        context={"workload": "epochwise-adv CNN training, sharded",
                 "dtype": dtype},
    )
    print(f"\n{text}\nsaved: {path}")

    assert loader_s.cache.peak_bytes <= budget
    assert streamed.delta_store.peak_bytes <= budget
    assert np.isfinite(ratio)
    assert ratio >= 0.8, (
        f"streamed path only {ratio:.2f}x of in-memory examples/s "
        "(expected >= 0.8x)"
    )


def test_streaming_smoke():
    """Light CI exercise: streamed training equals in-memory bit-for-bit.

    One epoch over a 4-shard stream, once through the streaming path and
    once over the materialised dataset, must produce identical
    parameters — and a rerun under a 2-shard budget must stay within it.
    Proves sources, shard-local shuffle, the delta store and the byte
    budget are all live without gating on wall-clock.
    """
    num_examples = 4 * SHARD
    source = _source(num_examples, seed=3)

    streamed = _trainer()
    streamed.fit(DataLoader(source, batch_size=64, rng=1), epochs=1)

    in_memory = _trainer()
    in_memory.fit(
        DataLoader(
            TensorSource(source.materialize(), shard_size=SHARD),
            batch_size=64, rng=1,
        ),
        epochs=1,
    )
    for ps, pm in zip(
        streamed.model.parameters(), in_memory.model.parameters()
    ):
        np.testing.assert_array_equal(ps.data, pm.data)

    budget = 2 * _shard_bytes()
    bounded = _trainer(budget_bytes=budget)
    loader = DataLoader(
        _source(num_examples, seed=3), batch_size=64, rng=1,
        budget_bytes=budget,
    )
    bounded.fit(loader, epochs=2)
    assert loader.cache.peak_bytes <= budget
    assert bounded.delta_store.peak_bytes <= budget
    assert loader.cache.evictions > 0
