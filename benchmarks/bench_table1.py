"""Benchmark regenerating Table I (both datasets).

Table I reports, per defense: accuracy on {clean, FGSM, BIM(10), BIM(30)}
plus training time per epoch.  This bench trains every method (via the
shared pool), evaluates the grid, prints the rendered table and saves it to
``benchmarks/results/``.

Expected shape versus the paper (absolute numbers differ — see DESIGN.md):
  * every method holds high clean accuracy;
  * FGSM-Adv collapses on the BIM columns; ATDA / Proposed / BIM-Adv resist;
  * Proposed > ATDA on BIM columns at lower per-epoch cost;
  * per-epoch time: proposed ~ fgsm_adv < atda < bim10_adv < bim30_adv.
"""

import os

import pytest

from repro.experiments import run_table1

from conftest import save_artifact

SHAPE_CHECKS = os.environ.get("REPRO_BENCH_SCALE", "medium") != "smoke"


def _run(pool):
    return run_table1(pool.config, pool=pool)


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("dataset", ["digits", "fashion"])
def test_table1(benchmark, dataset, digits_pool, fashion_pool):
    pool = digits_pool if dataset == "digits" else fashion_pool
    result = benchmark.pedantic(
        _run, args=(pool,), rounds=1, iterations=1
    )
    text = result.render()
    lines = [
        text,
        "",
        "paper-shape checkpoints:",
        (
            "  proposed - atda on bim10: "
            f"{100 * result.improvement_over('proposed', 'atda', 'bim10'):+.2f} pts"
        ),
        (
            "  proposed vs atda time/epoch: "
            f"{100 * result.speedup_over('proposed', 'atda'):+.1f}% saved"
        ),
        (
            "  proposed vs bim30_adv time/epoch: "
            f"{100 * result.speedup_over('proposed', 'bim30_adv'):+.1f}% saved"
        ),
    ]
    report = "\n".join(lines)
    print("\n" + report)
    path = save_artifact(f"table1_{dataset}.txt", report)
    result.save(path.replace(".txt", ".json"))

    if not SHAPE_CHECKS:
        return  # smoke-scale timings are too noisy to assert on
    # Structural assertions (shape, not absolute numbers).
    times = result.time_per_epoch
    assert times["bim30_adv"] > times["bim10_adv"] > times["proposed"]
    assert times["atda"] > times["fgsm_adv"]
