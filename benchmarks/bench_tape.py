"""Microbenchmark: compiled-tape replay vs eager graph construction.

The compiled autograd tape (``repro.autograd.tape``) traces one train step
and replays it with pre-leased workspace buffers, dead-code elimination and
fused elementwise chains.  Its payoff is dispatch overhead: in dispatch-
bound regimes the eager engine spends a large share of each step
re-building the graph, re-walking the topological order and re-allocating
gradient buffers, all of which the replay path skips.

``test_tape_epoch_speedup`` gates that payoff on the repo's most
dispatch-bound training regime: epochwise-adv (the proposed defense)
CNN epochs at batch size one — the online single-example setting where
per-step kernel work is smallest relative to per-step engine work, and
the regime the AttackLoop's batched early stop drives every attack toward
as examples converge and batches shrink.  Each batch runs the compiled
attack step plus the compiled clean/adversarial mixture step; the epoch
must be at least 1.2x faster replayed than eager.  Correctness is pinned
elsewhere (``tests/autograd/test_tape.py`` asserts the replay is
bit-for-bit identical to eager); this file only gates the speed.

The gate's name contains ``epoch_speedup`` so the CI benchmark smoke lane
(which filters ``-k "not epoch_speedup"``) skips the timing-sensitive
gate on shared runners, exactly like the PR-3 hot-path gate;
``test_tape_replay_smoke`` below is the light exercise CI does run in
both dtype jobs.
"""

import time

import numpy as np

from conftest import save_artifact, save_bench
from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.models import build_model
from repro.optim import SGD
from repro.runtime import compiled, compute_dtype


def _make(batch_size):
    train, _ = load_dataset(
        "digits", train_per_class=20, test_per_class=1, seed=0
    )
    loader = DataLoader(train, batch_size=batch_size, rng=0)
    model = build_model("small_cnn", seed=0)
    trainer = build_trainer(
        "proposed", model, epsilon=0.25,
        optimizer=SGD(model.parameters(), lr=0.05),
    )
    return loader, trainer


def test_tape_epoch_speedup():
    """Replayed tapes must beat eager per-step graph construction.

    Uses one persistent trainer per mode so the traced variants stay warm
    (trace on the first epoch, replay from then on).  Two measures keep
    the gate honest on shared/virtualised boxes:

    * epochs are timed with ``time.process_time`` — both modes are pure
      CPU compute, and CPU time is immune to hypervisor steal, which
      wall-clock measurements on such boxes pick up as ±30% swings;
    * each round times an eager and a compiled epoch back to back and
      the gate is the **median of the per-round ratios**, so a speed
      phase shift between rounds cannot skew the comparison the way a
      global min/mean can.

    The compiled epochwise-adv CNN epoch must be at least 1.2x faster
    than the identical eager epoch; the rendered comparison is saved as
    a results artifact.
    """
    rounds = 9
    loader_e, trainer_e = _make(1)
    loader_c, trainer_c = _make(1)
    # Warm-up epoch per mode: BLAS threads, workspace pool, tape traces.
    with compiled(False):
        trainer_e.train_epoch(loader_e)
    with compiled(True):
        trainer_c.train_epoch(loader_c)
    eager_times, compiled_times = [], []
    for _ in range(rounds):
        with compiled(False):
            start = time.process_time()
            trainer_e.train_epoch(loader_e)
            eager_times.append(time.process_time() - start)
        with compiled(True):
            start = time.process_time()
            trainer_c.train_epoch(loader_c)
            compiled_times.append(time.process_time() - start)
    ratios = [e / c for e, c in zip(eager_times, compiled_times)]
    speedup = float(np.median(ratios))
    t_eager = float(np.median(eager_times))
    t_replay = float(np.median(compiled_times))
    dtype = np.dtype(compute_dtype()).name
    lines = [
        f"compiled autograd tape: epochwise-adv CNN epoch, {dtype}, batch 1",
        f"eager    (graph per step):  {t_eager * 1000:8.2f} cpu-ms/epoch"
        " (median)",
        f"compiled (trace + replay):  {t_replay * 1000:8.2f} cpu-ms/epoch"
        " (median)",
        "per-round eager/compiled: "
        + " ".join(f"{r:.3f}" for r in ratios),
        f"speedup (median of paired rounds): {speedup:.3f}x  (gate >= 1.2x)",
    ]
    text = "\n".join(lines)
    path = save_artifact(f"tape_speedup_{dtype}.txt", text)
    save_bench(
        f"tape_speedup_{dtype}",
        {
            "speedup": (speedup, "x", "higher"),
            "eager_ms": (t_eager * 1000.0, "cpu-ms", None),
            "compiled_ms": (t_replay * 1000.0, "cpu-ms", None),
        },
        context={"workload": "epochwise-adv CNN epoch, batch 1",
                 "dtype": dtype},
    )
    print(f"\n{text}\nsaved: {path}")
    assert np.isfinite(speedup)
    assert speedup >= 1.2, (
        f"compiled tape only {speedup:.2f}x faster than eager "
        "(expected >= 1.2x)"
    )


def test_tape_replay_smoke():
    """Light CI exercise: one compiled epoch actually replays its tapes.

    Runs in the CI benchmark smoke lane under both dtype policies.  Two
    epochs of the epochwise-adv trainer with the compiled toggle on must
    finish with finite losses, one traced variant per step and a growing
    replay hit count — proving the tape path is live without gating on
    wall-clock (shared runners are too noisy for that).
    """
    loader, trainer = _make(8)
    with compiled(True):
        history = trainer.fit(loader, epochs=2)
    assert all(np.isfinite(loss) for loss in history.losses)
    steps = trainer.__dict__.get("_compiled_steps", {})
    assert "mixture" in steps
    stats = steps["mixture"].stats
    assert stats["disabled"] is None
    assert stats["hits"] > 0
    estimator = trainer._stepper.step_fn.estimator
    est_stats = estimator._compiled_step().stats
    assert est_stats["disabled"] is None
    assert est_stats["hits"] > 0
