"""Telemetry cost: primitive-op benchmarks and the disabled-overhead gate.

Telemetry ships **disabled**, so the cost that matters is what the
instrumentation adds to the hot training loop while off: a ``span()`` call
that returns the shared null singleton, and ``tel.enabled()`` checks that
early-out.  ``test_telemetry_disabled_overhead`` measures those primitive
costs, multiplies by the number of instrumentation sites one epochwise-adv
training epoch executes, and gates the estimated overhead at <2% of the
measured epoch time (the ISSUE acceptance bound).  The estimate is the
honest comparison: the un-instrumented baseline no longer exists in-tree,
and an A/B against it would measure run-to-run noise, not the ~100ns/site
the null path actually costs.

The enabled-mode epoch is also timed (not gated — recording is expected to
cost something) and the full comparison saved to
``benchmarks/results/telemetry_overhead.txt``.
"""

import time

import pytest

from conftest import save_artifact, save_bench
from repro import telemetry as tel
from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.models import mnist_mlp
from repro.runtime import precision


def _make_loader():
    with precision("float64"):
        train, _ = load_dataset(
            "digits", train_per_class=50, test_per_class=1, seed=0
        )
        return DataLoader(train, batch_size=128, rng=0)


@pytest.fixture(scope="module")
def loader():
    return _make_loader()


def _epoch(loader):
    """One epochwise-adv (proposed) training epoch — the gated workload."""
    with precision("float64"):
        model = mnist_mlp(seed=0)
        trainer = build_trainer("proposed", model, epsilon=0.25, lr=1e-3)
        trainer.train_epoch(loader)


# ----------------------------------------------------------------------
# Primitive-op benchmarks.
# ----------------------------------------------------------------------

@pytest.mark.benchmark(group="telemetry-ops")
def test_disabled_span_op(benchmark):
    """The null-span fast path every instrumented site pays while off."""
    assert not tel.enabled()

    def op():
        with tel.span("bench"):
            pass

    benchmark(op)


@pytest.mark.benchmark(group="telemetry-ops")
def test_disabled_counter_op(benchmark):
    assert not tel.enabled()
    benchmark(tel.counter, "bench")


@pytest.mark.benchmark(group="telemetry-ops")
def test_enabled_nested_span_op(benchmark):
    """A real child span: stopwatch + stack push/pop + parent fold."""
    previous = tel.set_enabled(True)

    def op():
        with tel.span("parent", emit=False):
            with tel.span("child"):
                pass

    try:
        benchmark(op)
    finally:
        tel.set_enabled(previous)


@pytest.mark.benchmark(group="telemetry-ops")
def test_enabled_counter_op(benchmark):
    previous = tel.set_enabled(True)
    try:
        benchmark(tel.counter, "bench")
    finally:
        tel.set_enabled(previous)
        tel.reset_metrics()


# ----------------------------------------------------------------------
# The disabled-mode overhead gate.
# ----------------------------------------------------------------------

def _primitive_cost(op, calls=100_000):
    start = time.perf_counter()
    for _ in range(calls):
        op()
    return (time.perf_counter() - start) / calls


def test_telemetry_disabled_overhead(loader):
    """Disabled-mode instrumentation must cost <2% of an adv-training epoch.

    Sites one epochwise-adv epoch executes while telemetry is off:

    * per batch — 4 phase spans (``data``/``forward``/``backward``/
      ``optimizer``), 1 ``attack`` span, and 1 ``tel.enabled()`` check in
      the loader;
    * per epoch — the ``epoch`` span and the workspace-gauge
      ``tel.enabled()`` check (the span lives in ``fit``, so it is an
      upper bound for a bare ``train_epoch``).
    """
    assert not tel.enabled(), "gate must run with telemetry off"

    def null_span():
        with tel.span("bench"):
            pass

    span_cost = _primitive_cost(null_span)
    check_cost = _primitive_cost(tel.enabled)

    # Measured epoch time of the instrumented loop, telemetry disabled.
    _epoch(loader)  # warm caches / BLAS threads
    t_disabled = min(_timed_epoch(loader) for _ in range(3))

    batches = len(loader)
    spans = 5 * batches + 1
    checks = batches + 1
    est_overhead = spans * span_cost + checks * check_cost
    fraction = est_overhead / t_disabled

    # Enabled-mode comparison, for the artifact only (recording costs are
    # allowed; only the always-on disabled path is gated).
    previous = tel.set_enabled(True)
    try:
        tel.reset_metrics()
        t_enabled = min(_timed_epoch(loader) for _ in range(3))
    finally:
        tel.set_enabled(previous)
        tel.reset_metrics()

    lines = [
        "telemetry overhead: epochwise-adv MLP epoch, digits, float64",
        f"epoch (telemetry disabled): {t_disabled * 1000:8.2f} ms",
        f"epoch (telemetry enabled):  {t_enabled * 1000:8.2f} ms "
        f"({t_enabled / t_disabled:.3f}x)",
        f"null span: {span_cost * 1e9:6.0f} ns/site   "
        f"enabled() check: {check_cost * 1e9:6.0f} ns/site",
        f"disabled sites/epoch: {spans} spans + {checks} checks "
        f"-> {est_overhead * 1e6:.1f} us/epoch",
        f"disabled overhead: {fraction:.4%} of epoch  (gate < 2%)",
    ]
    text = "\n".join(lines)
    path = save_artifact("telemetry_overhead.txt", text)
    save_bench(
        "telemetry_overhead",
        {
            # Near-zero fractions diff terribly in relative terms (noise
            # swamps them), so the hard bounds live in this test's asserts
            # and the records are trajectory data, not diff gates.
            "disabled_overhead_fraction": (fraction, "fraction", None),
            "enabled_ratio": (t_enabled / t_disabled, "x", None),
            "epoch_ms": (t_disabled * 1000.0, "ms", None),
        },
        context={"workload": "epochwise-adv MLP epoch, digits, float64"},
    )
    print(f"\n{text}\nsaved: {path}")
    assert fraction < 0.02, (
        f"disabled-mode telemetry estimated at {fraction:.2%} of an "
        "epochwise-adv epoch (gate < 2%)"
    )


def test_profiler_overhead(loader):
    """The sampling profiler must cost <5% at the default rate.

    A/B at ``DEFAULT_HZ``, with bare and profiled epochs **interleaved**
    (bare, profiled, bare, profiled, ...) so slow drift on a shared box
    hits both sides equally; the gate compares the best round of each.
    Unlike the disabled-telemetry estimate, this really is measurable
    A/B — the sampler is a separate thread and its cost (GIL grabs
    during ``sys._current_frames``) shows up directly in the epoch wall
    clock.  Also asserts the profile itself is usable: non-empty
    collapsed stacks that caught the training loop in the act.
    """
    from repro.telemetry.profiler import SamplingProfiler

    _epoch(loader)  # warm caches / BLAS threads
    profiler = SamplingProfiler()
    bare_times, profiled_times = [], []
    for _ in range(5):
        bare_times.append(_timed_epoch(loader))
        profiler.start()
        profiled_times.append(_timed_epoch(loader))
        profiler.stop()
    t_bare = min(bare_times)
    t_profiled = min(profiled_times)

    overhead = t_profiled / t_bare - 1.0
    collapsed = profiler.collapsed()
    lines = [
        "sampling profiler overhead: epochwise-adv MLP epoch, digits",
        f"epoch (bare):      {t_bare * 1000:8.2f} ms",
        f"epoch (profiled):  {t_profiled * 1000:8.2f} ms "
        f"({overhead:+.2%}, gate < 5%)",
        f"samples: {profiler.samples}  distinct stacks: "
        f"{len(profiler.stacks)}  rate: {profiler.hz} Hz",
    ]
    text = "\n".join(lines)
    path = save_artifact("profiler_overhead.txt", text)
    save_bench(
        "profiler_overhead",
        {
            "overhead_fraction": (max(overhead, 0.0), "fraction", None),
            "samples": (profiler.samples, "samples", None),
        },
        context={"hz": profiler.hz},
    )
    print(f"\n{text}\nsaved: {path}")
    assert profiler.samples > 0, "sampler never fired"
    assert collapsed, "profiler produced no collapsed stacks"
    assert "train_epoch" in collapsed, (
        "profile never caught the training loop"
    )
    # Negative readings are timing noise in the bare measurement.
    assert overhead < 0.05, (
        f"profiler added {overhead:.2%} to an epoch (gate < 5%)"
    )


def _timed_epoch(loader):
    start = time.perf_counter()
    _epoch(loader)
    return time.perf_counter() - start
