"""Microbenchmarks: per-epoch training cost of every defense.

This isolates the Table I timing column: one epoch of each method on an
identical loader.  The structural expectation is

    vanilla < fgsm_adv ~ proposed < atda < bim10_adv < bim30_adv

with BIM(k)-Adv scaling roughly as ``(k + 2) / 3`` over the single-step
methods.
"""

import pytest

from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.models import mnist_mlp


@pytest.fixture(scope="module")
def loader():
    train, _ = load_dataset(
        "digits", train_per_class=50, test_per_class=1, seed=0
    )
    return DataLoader(train, batch_size=128, rng=0)


def one_epoch(name, loader):
    model = mnist_mlp(seed=0)
    trainer = build_trainer(name, model, epsilon=0.25, lr=1e-3)
    trainer.train_epoch(loader)


@pytest.mark.benchmark(group="epoch-cost")
@pytest.mark.parametrize(
    "name",
    ["vanilla", "fgsm_adv", "atda", "proposed", "bim10_adv", "bim30_adv"],
)
def test_epoch_cost(benchmark, name, loader):
    benchmark.pedantic(
        one_epoch, args=(name, loader), rounds=2, iterations=1
    )
