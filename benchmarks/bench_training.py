"""Microbenchmarks: per-epoch training cost of every defense.

This isolates the Table I timing column: one epoch of each method on an
identical loader.  The structural expectation is

    vanilla < fgsm_adv ~ proposed < atda < bim10_adv < bim30_adv

with BIM(k)-Adv scaling roughly as ``(k + 2) / 3`` over the single-step
methods.

A second axis compares runtime precision policies: the proposed defense is
timed under float64 and float32 and the speedup written to
``benchmarks/results/dtype_speedup.txt`` — float32 should cut epoch time to
well under 0.8x of float64 on a BLAS-backed numpy.
"""

import time

import numpy as np
import pytest

from conftest import save_artifact, save_bench
from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.models import mnist_cnn, mnist_mlp
from repro.runtime import hotpaths, precision

DTYPES = ["float64", "float32"]


def _make_loader(dtype="float64"):
    with precision(dtype):
        train, _ = load_dataset(
            "digits", train_per_class=50, test_per_class=1, seed=0
        )
        return DataLoader(train, batch_size=128, rng=0)


@pytest.fixture(scope="module")
def loader():
    return _make_loader()


@pytest.fixture(scope="module")
def loaders():
    """One loader per precision policy (batches pre-cast, no per-batch
    conversion inside the timed region)."""
    return {dtype: _make_loader(dtype) for dtype in DTYPES}


def one_epoch(name, loader, dtype="float64"):
    with precision(dtype):
        model = mnist_mlp(seed=0)
        trainer = build_trainer(name, model, epsilon=0.25, lr=1e-3)
        trainer.train_epoch(loader)


@pytest.mark.benchmark(group="epoch-cost")
@pytest.mark.parametrize(
    "name",
    ["vanilla", "fgsm_adv", "atda", "proposed", "bim10_adv", "bim30_adv"],
)
def test_epoch_cost(benchmark, name, loader):
    benchmark.pedantic(
        one_epoch, args=(name, loader), rounds=2, iterations=1
    )


@pytest.mark.benchmark(group="epoch-cost-dtype")
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", ["proposed", "bim10_adv"])
def test_epoch_cost_dtype(benchmark, name, dtype, loaders):
    benchmark.pedantic(
        one_epoch, args=(name, loaders[dtype], dtype), rounds=2, iterations=1
    )


def _cnn_epoch(loader):
    """One epochwise-adv (proposed) epoch of the CNN — the hot-path workload:
    every batch funnels through conv/pool im2col, the softmax-CE loss and a
    full backward three times (attack step + clean + adversarial pass)."""
    with precision("float64"):
        model = mnist_cnn(seed=0)
        trainer = build_trainer("proposed", model, epsilon=0.25, lr=1e-3)
        trainer.train_epoch(loader)


def test_hotpath_epoch_speedup():
    """The fused/workspace kernels must beat the pre-overhaul baseline.

    Times one float64 epochwise-adv training epoch of the CNN with the
    hot-path kernels enabled (fused softmax-CE, sliding_window_view im2col
    with the workspace pool, in-place backward accumulation) against the
    same epoch with the legacy reference kernels (``hotpaths(False)`` —
    exactly the pre-overhaul implementations), and asserts the overhauled
    stack is at least 1.25x faster.  Best-of-three per configuration; the
    rendered before/after comparison is saved as a results artifact.
    """
    with precision("float64"):
        train, _ = load_dataset(
            "digits", train_per_class=20, test_per_class=1, seed=0
        )
        loader = DataLoader(train, batch_size=64, rng=0)

    def best_of(enabled, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            with hotpaths(enabled):
                start = time.perf_counter()
                _cnn_epoch(loader)
                best = min(best, time.perf_counter() - start)
        return best

    # Warm both paths (BLAS threads, workspace pool, dataset cache).
    for enabled in (True, False):
        with hotpaths(enabled):
            _cnn_epoch(loader)
    t_base = best_of(False)
    t_fast = best_of(True)
    speedup = t_base / t_fast
    lines = [
        "hot-path kernel overhaul: epochwise-adv CNN epoch, float64",
        f"before (reference kernels): {t_base * 1000:8.2f} ms/epoch",
        f"after  (hot-path kernels):  {t_fast * 1000:8.2f} ms/epoch",
        f"speedup (before/after): {speedup:.3f}x  (gate >= 1.25x)",
    ]
    text = "\n".join(lines)
    path = save_artifact("hotpath_speedup.txt", text)
    save_bench(
        "hotpath_speedup",
        {
            "speedup": (speedup, "x", "higher"),
            "before_ms": (t_base * 1000.0, "ms", None),
            "after_ms": (t_fast * 1000.0, "ms", None),
        },
        context={"workload": "epochwise-adv CNN epoch, float64"},
    )
    print(f"\n{text}\nsaved: {path}")
    assert np.isfinite(speedup)
    assert speedup >= 1.25, (
        f"hot-path kernels only {speedup:.2f}x faster than the reference "
        "baseline (expected >= 1.25x)"
    )


def test_float32_epoch_speedup(loaders):
    """float32 must deliver a real speedup, not just smaller arrays.

    Times one epoch of the proposed defense under each policy (best of
    three, same loader contents) and asserts the float32 epoch costs at
    most 0.8x the float64 one.  The rendered comparison is saved as a
    results artifact.
    """

    def best_of(dtype, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            one_epoch("proposed", loaders[dtype], dtype)
            best = min(best, time.perf_counter() - start)
        return best

    # Warm both paths once so neither dtype pays first-call setup costs.
    for dtype in DTYPES:
        one_epoch("proposed", loaders[dtype], dtype)
    t64 = best_of("float64")
    t32 = best_of("float32")
    ratio = t32 / t64
    lines = [
        "epoch cost by precision policy (proposed defense, digits)",
        f"float64: {t64 * 1000:8.2f} ms/epoch",
        f"float32: {t32 * 1000:8.2f} ms/epoch",
        f"ratio (float32/float64): {ratio:.3f}  (target <= 0.8)",
    ]
    text = "\n".join(lines)
    path = save_artifact("dtype_speedup.txt", text)
    save_bench(
        "dtype_speedup",
        {
            "ratio": (ratio, "x", "lower"),
            "float64_ms": (t64 * 1000.0, "ms", None),
            "float32_ms": (t32 * 1000.0, "ms", None),
        },
        context={"workload": "proposed defense epoch, digits"},
    )
    print(f"\n{text}\nsaved: {path}")
    assert np.isfinite(ratio)
    assert ratio <= 0.8, (
        f"float32 epoch took {ratio:.2f}x float64 (expected <= 0.8x)"
    )
