"""Benchmark: multi-seed variance of the headline Table I comparison.

Repeats proposed-vs-ATDA (plus the BIM(10)-Adv reference) across seeds and
reports mean ± std — quantifying whether the paper's headline gap survives
run-to-run noise on this substrate.
"""

import os

import pytest

from repro.experiments import run_variance_study

from conftest import bench_config, save_artifact

SHAPE_CHECKS = os.environ.get("REPRO_BENCH_SCALE", "medium") != "smoke"


@pytest.mark.benchmark(group="variance")
def test_variance_study(benchmark):
    config = bench_config("digits")
    result = benchmark.pedantic(
        run_variance_study,
        args=(config,),
        kwargs={"seeds": (0, 1, 2)},
        rounds=1,
        iterations=1,
    )
    text = result.render()
    mean_gap = result.mean("proposed", "bim10") - result.mean("atda", "bim10")
    text += (
        f"\n\nproposed - atda on bim10: {100 * mean_gap:+.2f} pts (mean), "
        f"significant at 1 sigma: "
        f"{result.gap_significant('proposed', 'atda', 'bim10')}"
    )
    print("\n" + text)
    path = save_artifact("variance_digits.txt", text)
    result.save(path.replace(".txt", ".json"))

    if not SHAPE_CHECKS:
        return
    # The paper's headline ordering should hold in the mean.
    assert result.mean("proposed", "bim10") > result.mean("atda", "bim10")
