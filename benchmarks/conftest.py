"""Shared fixtures for the benchmark harness.

Scale control
-------------
``REPRO_BENCH_SCALE`` selects the fidelity of the paper-artefact benches:

* ``smoke``  — seconds per bench; shapes not meaningful (CI sanity).
* ``medium`` — default; minutes per bench; paper shapes reproduce.
* ``paper``  — full fidelity (200/class, 80 epochs).

The expensive part — training the defended classifiers — is shared through
session-scoped :class:`~repro.experiments.ClassifierPool` fixtures, so the
figure and table benches reuse the same trained models.

Rendered artefacts (tables, curves) are written to ``benchmarks/results/``
and printed, so a benchmark run regenerates every row/series the paper
reports.
"""

import os

import pytest

from repro.experiments import ClassifierPool, paper_scale, smoke_scale

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_config(dataset: str):
    """Resolve the benchmark ExperimentConfig from REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "medium")
    if scale == "paper":
        return paper_scale(dataset)
    if scale == "medium":
        return paper_scale(
            dataset, train_per_class=150, test_per_class=40, epochs=60
        )
    if scale == "smoke":
        return smoke_scale(dataset)
    raise ValueError(
        f"REPRO_BENCH_SCALE must be smoke|medium|paper, got {scale!r}"
    )


def save_artifact(name: str, text: str) -> str:
    """Write a rendered artefact under benchmarks/results/ and return path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


def save_bench(name: str, metrics: dict, context: dict = None) -> str:
    """Write a structured ``<name>.bench.json`` record beside the ``.txt``.

    ``metrics`` maps metric name to ``(value, unit, direction)`` where
    direction is ``"higher"``/``"lower"``/``None`` (see
    :mod:`repro.telemetry.bench`).  ``REPRO_BENCH_RESULTS`` redirects the
    record to another directory — CI writes fresh records to a scratch
    dir and diffs them against the committed baselines here via
    ``repro bench diff`` instead of overwriting them.
    """
    from repro.telemetry.bench import BenchRecord

    record = BenchRecord(name, context=context)
    for metric, (value, unit, direction) in metrics.items():
        record.add(metric, value, unit=unit, direction=direction)
    directory = os.environ.get("REPRO_BENCH_RESULTS", "").strip()
    return record.save(directory or RESULTS_DIR)


@pytest.fixture(scope="session")
def digits_pool():
    """Trained-classifier pool for the digit dataset (shared by benches)."""
    return ClassifierPool(bench_config("digits"))


@pytest.fixture(scope="session")
def fashion_pool():
    """Trained-classifier pool for the fashion dataset."""
    return ClassifierPool(bench_config("fashion"))
