"""Ablation study over the proposed method's design choices.

Sweeps (a) the per-epoch step size and (b) the cache reset interval of the
epoch-wise adversarial trainer, quantifying both Section IV design choices
on this substrate.

Run:
    python examples/ablation_study.py
    python examples/ablation_study.py --scale paper --dataset fashion
"""

import argparse

from repro.experiments import (
    paper_scale,
    run_reset_interval_ablation,
    run_step_size_ablation,
    smoke_scale,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=("smoke", "medium", "paper"), default="medium"
    )
    parser.add_argument(
        "--dataset", choices=("digits", "fashion"), default="digits"
    )
    args = parser.parse_args()

    if args.scale == "paper":
        config = paper_scale(args.dataset)
    elif args.scale == "medium":
        config = paper_scale(
            args.dataset, train_per_class=100, test_per_class=30, epochs=40
        )
    else:
        config = smoke_scale(args.dataset)

    steps = run_step_size_ablation(config, verbose=True)
    print()
    print(steps.render())
    print()
    resets = run_reset_interval_ablation(config, verbose=True)
    print(resets.render())


if __name__ == "__main__":
    main()
