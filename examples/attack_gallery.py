"""Attack gallery: compare FGSM / BIM / PGD / MIM / random noise.

Trains a vanilla classifier and runs every attack in the library against
it at the same budget, reporting accuracy, the actual l_inf perturbation
used, and an ASCII rendering of one clean/adversarial pair.

Run:
    python examples/attack_gallery.py
"""

import argparse

import numpy as np

from repro.attacks import BIM, FGSM, MIM, PGD, RandomNoise
from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.eval import clean_accuracy, format_percent, format_table, robust_accuracy
from repro.models import mnist_mlp


def ascii_image(image: np.ndarray, width: int = 28) -> str:
    """Render a [0, 1] grayscale image with ASCII shades."""
    shades = " .:-=+*#%@"
    rows = []
    for row in np.asarray(image).reshape(width, width):
        rows.append(
            "".join(shades[min(int(v * (len(shades) - 1)), 9)] for v in row)
        )
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epsilon", type=float, default=0.25)
    parser.add_argument("--epochs", type=int, default=15)
    args = parser.parse_args()

    train, test = load_dataset(
        "digits", train_per_class=100, test_per_class=30, seed=0
    )
    test_x, test_y = test.arrays()

    print("training a vanilla classifier ...")
    model = mnist_mlp(seed=0)
    build_trainer("vanilla", model, epsilon=args.epsilon).fit(
        DataLoader(train, batch_size=128, rng=0), epochs=args.epochs
    )
    print(
        "clean accuracy:",
        format_percent(clean_accuracy(model, test_x, test_y)),
    )

    eps = args.epsilon
    attacks = [
        RandomNoise(model, eps, rng=0),
        FGSM(model, eps),
        BIM(model, eps, num_steps=10),
        PGD(model, eps, num_steps=10, rng=0),
        MIM(model, eps, num_steps=10),
    ]
    rows = []
    for attack in attacks:
        x_adv = attack.generate(test_x, test_y)
        acc = robust_accuracy(model, attack, test_x, test_y)
        linf = float(np.abs(x_adv - test_x).max())
        rows.append([attack.name, format_percent(acc), f"{linf:.3f}"])
    print()
    print(
        format_table(
            ["attack", "accuracy", "max |perturbation|"],
            rows,
            title=f"attack comparison at eps={eps}",
        )
    )

    # Show one clean/adversarial pair.
    bim = BIM(model, eps, num_steps=10)
    x_adv = bim.generate(test_x[:1], test_y[:1])
    clean_pred = model.predict(test_x[:1])[0]
    adv_pred = model.predict(x_adv)[0]
    print(f"\nclean example (predicted {clean_pred}, true {test_y[0]}):")
    print(ascii_image(test_x[0]))
    print(f"\nBIM adversarial example (predicted {adv_pred}):")
    print(ascii_image(x_adv[0]))


if __name__ == "__main__":
    main()
