"""Corruption robustness: does adversarial training help benign noise?

Trains a vanilla and a defended (proposed-method) classifier and compares
their accuracy under the common-corruption suite (noise, blur, contrast,
pixelation, ...) at increasing severity — the non-adversarial companion to
the paper's evaluation.

Run:
    python examples/corruption_robustness.py
"""

import argparse

import numpy as np

from repro.data import DataLoader, corruption_sweep, load_dataset
from repro.defenses import build_trainer
from repro.eval import format_percent, format_table
from repro.models import mnist_mlp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=40)
    args = parser.parse_args()

    train, test = load_dataset(
        "digits", train_per_class=100, test_per_class=30, seed=0
    )
    x, y = test.arrays()
    loader = DataLoader(train, batch_size=128, rng=0)

    models = {}
    for name in ("vanilla", "proposed"):
        print(f"training {name} ...")
        model = mnist_mlp(seed=0)
        kwargs = {} if name == "vanilla" else {"warmup_epochs": 5}
        build_trainer(name, model, epsilon=0.25, **kwargs).fit(
            loader, epochs=args.epochs
        )
        models[name] = model

    severities = (1, 3, 5)
    sweeps = {
        name: corruption_sweep(model, x, y, severities=severities, rng=0)
        for name, model in models.items()
    }

    corruption_names = sorted(next(iter(sweeps.values())))
    headers = ["corruption"] + [
        f"{model}@s{severity}"
        for model in sweeps
        for severity in severities
    ]
    rows = []
    for corruption in corruption_names:
        row = [corruption]
        for model in sweeps:
            for severity in severities:
                row.append(
                    format_percent(sweeps[model][corruption][severity])
                )
        rows.append(row)
    print()
    print(format_table(headers, rows, title="corruption robustness"))

    for name, sweep in sweeps.items():
        mean = np.mean(
            [sweep[c][s] for c in corruption_names for s in severities]
        )
        print(f"mean corrupted accuracy [{name}]: {format_percent(mean)}")


if __name__ == "__main__":
    main()
