"""Reproduce Figure 1: attack strength vs BIM iteration count.

For each of the four classifiers (Vanilla, FGSM-Adv, BIM(10)-Adv,
BIM(30)-Adv) the script sweeps the BIM iteration count ``N`` at fixed total
budget with per-step size ``eps / N``, printing accuracy curves.  The
paper's empirical property 1 — diminishing returns from smaller per-step
perturbations — appears as the quick flattening of every curve.

Run:
    python examples/figure1_attack_convergence.py
    python examples/figure1_attack_convergence.py --dataset fashion --scale paper
"""

import argparse

from repro.experiments import paper_scale, run_figure1, smoke_scale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=("smoke", "medium", "paper"), default="medium"
    )
    parser.add_argument(
        "--dataset", choices=("digits", "fashion"), default="digits"
    )
    parser.add_argument("--save", default="", help="optional JSON output path")
    args = parser.parse_args()

    if args.scale == "paper":
        config = paper_scale(args.dataset)
    elif args.scale == "medium":
        config = paper_scale(
            args.dataset, train_per_class=100, test_per_class=30, epochs=40
        )
    else:
        config = smoke_scale(args.dataset)

    result = run_figure1(config, verbose=True)
    print()
    print(result.render())
    if args.save:
        result.save(args.save)
        print(f"saved {args.save}")


if __name__ == "__main__":
    main()
