"""Reproduce Figure 2: accuracy on the intermediate iterates of BIM(10).

Generates BIM with a fixed 10 iterations and measures each classifier's
accuracy after every iteration.  The paper's empirical property 2 — most
blind spots are revealed by the early intermediate iterates — appears as
the bulk of the accuracy drop happening in the first handful of steps.

Run:
    python examples/figure2_intermediate_iterates.py
    python examples/figure2_intermediate_iterates.py --dataset fashion
"""

import argparse

from repro.experiments import paper_scale, run_figure2, smoke_scale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=("smoke", "medium", "paper"), default="medium"
    )
    parser.add_argument(
        "--dataset", choices=("digits", "fashion"), default="digits"
    )
    parser.add_argument("--save", default="", help="optional JSON output path")
    args = parser.parse_args()

    if args.scale == "paper":
        config = paper_scale(args.dataset)
    elif args.scale == "medium":
        config = paper_scale(
            args.dataset, train_per_class=100, test_per_class=30, epochs=40
        )
    else:
        config = smoke_scale(args.dataset)

    result = run_figure2(config, verbose=True)
    print()
    print(result.render())
    if args.save:
        result.save(args.save)
        print(f"saved {args.save}")


if __name__ == "__main__":
    main()
