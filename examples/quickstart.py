"""Quickstart: train, attack, defend.

Trains an undefended classifier on the synthetic digit dataset, shows how
BIM destroys it, then trains the paper's proposed epoch-wise defense and
shows the recovered robustness — the smallest end-to-end tour of the
library's public API.

Run:
    python examples/quickstart.py            # quick (~1 minute)
    python examples/quickstart.py --full     # closer to paper scale
"""

import argparse

from repro.attacks import BIM, FGSM
from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.eval import clean_accuracy, format_percent, robust_accuracy
from repro.models import mnist_mlp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="train at closer-to-paper scale"
    )
    args = parser.parse_args()

    per_class, epochs = (200, 80) if args.full else (100, 30)
    epsilon = 0.25

    print("1. Generating the synthetic digit dataset ...")
    train, test = load_dataset(
        "digits", train_per_class=per_class, test_per_class=40, seed=0
    )
    test_x, test_y = test.arrays()

    print("2. Training an undefended classifier ...")
    vanilla = mnist_mlp(seed=0)
    build_trainer("vanilla", vanilla, epsilon=epsilon).fit(
        DataLoader(train, batch_size=128, rng=0), epochs=max(epochs // 4, 5)
    )
    print(f"   clean accuracy: "
          f"{format_percent(clean_accuracy(vanilla, test_x, test_y))}")

    print("3. Attacking it with FGSM and BIM(10) ...")
    for attack in (FGSM(vanilla, epsilon), BIM(vanilla, epsilon, num_steps=10)):
        acc = robust_accuracy(vanilla, attack, test_x, test_y)
        print(f"   accuracy under {attack.name}: {format_percent(acc)}")

    print("4. Training the paper's proposed defense (epoch-wise Single-Adv) ...")
    defended = mnist_mlp(seed=0)
    trainer = build_trainer(
        "proposed", defended, epsilon=epsilon, warmup_epochs=5
    )
    history = trainer.fit(DataLoader(train, batch_size=128, rng=0), epochs=epochs)
    print(f"   mean training time per epoch: {history.time_per_epoch:.2f}s")

    print("5. Re-attacking the defended classifier ...")
    print(f"   clean accuracy: "
          f"{format_percent(clean_accuracy(defended, test_x, test_y))}")
    for attack in (
        FGSM(defended, epsilon),
        BIM(defended, epsilon, num_steps=10),
    ):
        acc = robust_accuracy(defended, attack, test_x, test_y)
        print(f"   accuracy under {attack.name}: {format_percent(acc)}")


if __name__ == "__main__":
    main()
