"""Robustness audit: transfer attacks + gradient-masking diagnostics.

Trains two defenses (the proposed method and FGSM-Adv), then:

1. runs the Athalye-style gradient-masking checks on each;
2. builds a transfer matrix — adversarial examples generated against one
   model evaluated on the other — the standard black-box cross-check that
   white-box robustness is not an artefact of masked gradients.

Run:
    python examples/robustness_audit.py
"""

import argparse

from repro.attacks import BIM
from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.eval import (
    format_percent,
    format_table,
    gradient_masking_report,
    transfer_matrix,
)
from repro.models import mnist_mlp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--epsilon", type=float, default=0.25)
    args = parser.parse_args()

    train, test = load_dataset(
        "digits", train_per_class=100, test_per_class=30, seed=0
    )
    x, y = test.arrays()
    loader = DataLoader(train, batch_size=128, rng=0)

    models = {}
    for name in ("proposed", "fgsm_adv"):
        print(f"training {name} ...")
        model = mnist_mlp(seed=0)
        trainer = build_trainer(
            name, model, epsilon=args.epsilon, warmup_epochs=5
        )
        trainer.fit(loader, epochs=args.epochs)
        models[name] = model

    print("\n--- gradient-masking diagnostics ---")
    for name, model in models.items():
        report = gradient_masking_report(model, x, y, epsilon=args.epsilon)
        print(f"\n[{name}]")
        print(report.render())

    print("\n--- transfer matrix (BIM(10), rows = source) ---")
    grid = transfer_matrix(
        models, lambda m: BIM(m, args.epsilon, num_steps=10), x, y
    )
    names = list(grid)
    rows = [
        [source] + [format_percent(grid[source][target]) for target in names]
        for source in names
    ]
    print(format_table(["source \\ target"] + names, rows))
    print(
        "\nDiagonal = white-box robustness; off-diagonal = black-box "
        "transfer. Transfer accuracy above the diagonal confirms the "
        "white-box numbers are not gradient-masking artefacts."
    )


if __name__ == "__main__":
    main()
