"""Security curves: robust accuracy as a function of the attack budget.

Trains an undefended and a defended (proposed-method) classifier, then
sweeps the BIM(10) budget from small to large and prints both accuracy
curves — the standard whole-range comparison of defenses, and another view
of the crossover the paper's Table I captures at a single budget.

Run:
    python examples/security_curves.py
    python examples/security_curves.py --dataset fashion --epochs 60
"""

import argparse

from repro.attacks import BIM
from repro.data import DataLoader, load_dataset, dataset_epsilon
from repro.defenses import build_trainer
from repro.eval import format_curve, security_curves
from repro.models import mnist_mlp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dataset", choices=("digits", "fashion"), default="digits"
    )
    parser.add_argument("--epochs", type=int, default=40)
    args = parser.parse_args()

    eps = dataset_epsilon(args.dataset)
    train, test = load_dataset(
        args.dataset, train_per_class=100, test_per_class=30, seed=0
    )
    x, y = test.arrays()
    loader = DataLoader(train, batch_size=128, rng=0)

    models = {}
    for name in ("vanilla", "proposed"):
        print(f"training {name} ...")
        model = mnist_mlp(seed=0)
        kwargs = {} if name == "vanilla" else {"warmup_epochs": 5}
        build_trainer(name, model, epsilon=eps, **kwargs).fit(
            loader, epochs=args.epochs
        )
        models[name] = model

    epsilons = [eps * f for f in (0.2, 0.4, 0.6, 0.8, 1.0, 1.2)]
    curves = security_curves(
        models,
        lambda m, e: BIM(m, e, num_steps=10),
        x,
        y,
        epsilons,
    )
    for name, ys in curves.items():
        print()
        print(
            format_curve(
                [f"{e:.3f}" for e in epsilons],
                ys,
                x_label="epsilon",
                y_label="accuracy",
                title=f"-- {name} vs BIM(10) --",
            )
        )


if __name__ == "__main__":
    main()
