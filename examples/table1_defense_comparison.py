"""Reproduce Table I: defense comparison on both datasets.

Trains FGSM-Adv, ATDA, the proposed method, BIM(10)-Adv and BIM(30)-Adv on
the synthetic digit and fashion datasets and prints the paper's table:
accuracy against {clean, FGSM, BIM(10), BIM(30)} plus training time per
epoch.

Run:
    python examples/table1_defense_comparison.py                 # quick
    python examples/table1_defense_comparison.py --scale paper   # full
    python examples/table1_defense_comparison.py --dataset digits
"""

import argparse

from repro.experiments import paper_scale, run_table1, smoke_scale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("smoke", "medium", "paper"),
        default="medium",
        help="smoke: seconds; medium: a few minutes; paper: full fidelity",
    )
    parser.add_argument(
        "--dataset",
        choices=("digits", "fashion", "both"),
        default="both",
    )
    parser.add_argument(
        "--save", default="", help="optional JSON output path prefix"
    )
    args = parser.parse_args()

    datasets = (
        ("digits", "fashion") if args.dataset == "both" else (args.dataset,)
    )
    for dataset in datasets:
        if args.scale == "paper":
            config = paper_scale(dataset)
        elif args.scale == "medium":
            config = paper_scale(
                dataset, train_per_class=100, test_per_class=30, epochs=40
            )
        else:
            config = smoke_scale(dataset)
        result = run_table1(config, verbose=True)
        print()
        print(result.render())
        print(
            "proposed vs atda on bim10: "
            f"{100 * result.improvement_over('proposed', 'atda', 'bim10'):+.2f} "
            "points accuracy, "
            f"{100 * result.speedup_over('proposed', 'atda'):.1f}% less "
            "time per epoch"
        )
        print()
        if args.save:
            path = f"{args.save}_table1_{dataset}.json"
            result.save(path)
            print(f"saved {path}")


if __name__ == "__main__":
    main()
