#!/usr/bin/env python
"""Fail if the docs reference a benchmark snapshot that does not exist.

The README and the docs/ pages cite committed artefacts under
``benchmarks/results/`` (speedup gates, rendered tables).  A renamed or
deleted snapshot silently turns those citations into dead links; the CI
lint job runs this script to catch that at review time.

Beyond resolving every citation, the gate snapshots listed in
``REQUIRED_SNAPSHOTS`` must both exist *and* be cited from at least one
doc page — they are the committed evidence for the performance claims
the docs make, so dropping the citation (not just the file) is a
failure too.

Usage: ``python scripts/check_snapshots.py`` (from anywhere; paths resolve
relative to the repository root).  Exit code 0 when every referenced
snapshot exists, 1 otherwise (missing paths are listed).
"""

from __future__ import annotations

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# benchmarks/results/<file> with a real extension; tolerates the reference
# being wrapped in backticks, parentheses or markdown links.
_REFERENCE = re.compile(r"benchmarks/results/[\w.\-]+\.\w+")

# Speedup/overhead gate snapshots: each must exist and be cited by a doc.
REQUIRED_SNAPSHOTS = (
    "benchmarks/results/hotpath_speedup.txt",
    "benchmarks/results/tape_speedup_float64.txt",
    "benchmarks/results/telemetry_overhead.txt",
    "benchmarks/results/profiler_overhead.txt",
    "benchmarks/results/serving_throughput.txt",
    "benchmarks/results/streaming_throughput.txt",
)


def _doc_files() -> list:
    files = [os.path.join(REPO_ROOT, "README.md")]
    files.extend(
        sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))
    )
    return [path for path in files if os.path.isfile(path)]


def main() -> int:
    missing = []
    checked = 0
    cited = set()
    for doc in _doc_files():
        with open(doc, encoding="utf-8") as handle:
            text = handle.read()
        for reference in sorted(set(_REFERENCE.findall(text))):
            checked += 1
            cited.add(reference)
            if not os.path.isfile(os.path.join(REPO_ROOT, reference)):
                missing.append(
                    f"{os.path.relpath(doc, REPO_ROOT)} -> {reference}"
                )
    for required in REQUIRED_SNAPSHOTS:
        if not os.path.isfile(os.path.join(REPO_ROOT, required)):
            missing.append(f"required gate snapshot absent: {required}")
        elif required not in cited:
            missing.append(f"required gate snapshot uncited: {required}")
    if missing:
        print("missing benchmark snapshots referenced by the docs:")
        for line in missing:
            print(f"  {line}")
        return 1
    print(
        f"ok: {checked} snapshot reference(s) all resolve, "
        f"{len(REQUIRED_SNAPSHOTS)} required gate snapshot(s) cited"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
