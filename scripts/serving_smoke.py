#!/usr/bin/env python
"""Boot the serving layer and drive its whole HTTP surface once.

The CI ``tests-serving`` lane runs this after the unit suite: it starts
an in-process server on an ephemeral port with a small untrained CNN,
exercises every endpoint over real HTTP — healthz, single and batched
classify, a cache hit, a robustness audit, an induced 400 — then
scrapes ``/metrics`` and writes a latency snapshot (request/batch
percentiles, cache and batcher counters) to a JSON file that the lane
uploads as a build artifact.

Usage::

    PYTHONPATH=src python scripts/serving_smoke.py [--out serving_smoke.json]

Exit code 0 when every probe behaved; any unexpected response raises.
"""

import argparse
import json
import sys
import urllib.error
import urllib.request

import numpy as np

from repro.models import build_model
from repro.serving import InferenceService, start_server


def _call(method, url, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method=method,
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="serving_smoke.json")
    parser.add_argument("--examples", type=int, default=32)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    service = InferenceService(
        build_model("small_cnn", seed=0),
        max_batch_size=8, max_wait_us=1000, cache_size=256,
        use_tape=False, name="small_cnn",
    )
    server = start_server(service, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"serving smoke against {base}")
    try:
        health = _call("GET", f"{base}/healthz")
        assert health["status"] == "ok", health

        one = rng.random(784).tolist()
        cold = _call("POST", f"{base}/classify", {"input": one})
        assert cold["prediction"]["cached"] is False, cold
        hot = _call("POST", f"{base}/classify", {"input": one})
        assert hot["prediction"]["cached"] is True, hot
        assert hot["prediction"]["probs"] == cold["prediction"]["probs"]

        batch = rng.random((args.examples, 784)).tolist()
        many = _call("POST", f"{base}/classify", {"inputs": batch})
        assert len(many["predictions"]) == args.examples, many

        audit = _call(
            "POST", f"{base}/audit",
            {"attacks": ["clean", "fgsm"],
             "inputs": rng.random((8, 784)).tolist(),
             "labels": [int(i % 10) for i in range(8)],
             "epsilon": 0.1},
        )
        assert set(audit["robust_accuracy"]) == {"clean", "fgsm"}, audit

        try:
            _call("POST", f"{base}/classify", {"input": [1.0, 2.0]})
        except urllib.error.HTTPError as error:
            assert error.code == 400, error.code
        else:
            raise AssertionError("malformed classify did not 400")

        metrics = _call("GET", f"{base}/metrics")
    finally:
        server.shutdown_gracefully()

    histograms = metrics["metrics"]["histograms"]
    snapshot = {
        "endpoint_probes": ["healthz", "classify", "classify_many",
                            "cache_hit", "audit", "bad_request",
                            "metrics"],
        "examples": args.examples,
        "request_latency_ms": histograms.get("serving.request_latency_ms"),
        "batch_latency_ms": histograms.get(
            "serving.classify.batch_latency_ms"
        ),
        "batch_size": histograms.get("serving.classify.batch_size"),
        "audit_latency_ms": histograms.get("serving.audit_latency_ms"),
        "batcher": metrics["batcher"],
        "cache": metrics["cache"],
    }
    assert snapshot["batch_latency_ms"]["count"] >= 1, snapshot
    assert snapshot["cache"]["hits"] >= 1, snapshot
    with open(args.out, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    batch_ms = snapshot["batch_latency_ms"]
    print(
        f"ok: {snapshot['batcher']['requests']} requests in "
        f"{snapshot['batcher']['batches']} batches, batch p50 "
        f"{batch_ms['p50']:.2f} ms p99 {batch_ms['p99']:.2f} ms; "
        f"snapshot -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
