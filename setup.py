"""Setup shim enabling legacy editable installs in offline environments.

The canonical project metadata lives in pyproject.toml; this file only
exists so that ``pip install -e . --no-use-pep517`` (or ``python setup.py
develop``) works where the ``wheel`` package is unavailable.
"""
from setuptools import setup

setup()
