"""repro — reproduction of Liu, Khalil & Khreishah (DSN-W 2019):
"Using Intuition from Empirical Properties to Simplify Adversarial
Training Defense".

The package is organised bottom-up:

* :mod:`repro.autograd` — numpy reverse-mode automatic differentiation.
* :mod:`repro.nn` — neural-network layers, losses, module system.
* :mod:`repro.optim` — optimizers and LR schedulers.
* :mod:`repro.data` — datasets, loaders, synthetic MNIST/Fashion stand-ins.
* :mod:`repro.models` — classifier architectures used in the experiments.
* :mod:`repro.attacks` — FGSM / BIM / PGD / MIM white-box attacks.
* :mod:`repro.defenses` — vanilla, FGSM-Adv, Iter-Adv, ATDA, and the
  paper's proposed epoch-wise trainer.
* :mod:`repro.eval` — robustness metrics and measurement protocols.
* :mod:`repro.experiments` — runners for Figure 1, Figure 2, Table I and
  the design-choice ablations.
* :mod:`repro.telemetry` — zero-dependency observability: tracing spans,
  counters/gauges/histograms, JSONL run records and the ``repro report``
  per-epoch timing breakdown.

Quickstart::

    from repro.data import load_dataset, DataLoader
    from repro.models import mnist_mlp
    from repro.defenses import build_trainer
    from repro.eval import RobustnessEvaluator

    train, test = load_dataset("digits")
    model = mnist_mlp(seed=0)
    trainer = build_trainer("proposed", model, epsilon=0.25, warmup_epochs=5)
    trainer.fit(DataLoader(train, rng=0), epochs=80)
    x, y = test.arrays()
    print(RobustnessEvaluator.paper_suite(0.25).evaluate(model, x, y))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
