"""White-box evasion attacks (l_inf family).

* :class:`FGSM` — single-step sign attack (Goodfellow et al., 2015).
* :class:`BIM` — iterative FGSM (Kurakin et al., 2016); central to the
  paper's Figures 1-2 and Table I.  Exposes intermediate iterates.
* :class:`PGD` — BIM with random start (Madry et al., 2017).
* :class:`MIM` — momentum iterative method (Dong et al., 2018).
* :class:`RandomNoise` — gradient-free noise baseline.
"""

from .base import Attack, clip_to_box, project_linf
from .bim import BIM
from .deepfool import DeepFool
from .fgsm import FGSM
from .losses import margin_loss
from .mim import MIM
from .noise import RandomNoise
from .pgd import PGD
from .pgd_l2 import PGDL2, project_l2
from .spsa import SPSA

__all__ = [
    "Attack",
    "clip_to_box",
    "project_linf",
    "project_l2",
    "FGSM",
    "BIM",
    "PGD",
    "PGDL2",
    "MIM",
    "DeepFool",
    "SPSA",
    "RandomNoise",
    "margin_loss",
]
