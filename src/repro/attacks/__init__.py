"""Evasion attacks, the attack-iteration engine and the attack registry.

* :class:`AttackLoop` — the composable iteration engine every attack here
  is built on (initializer / gradient estimator / step rule / projection /
  stop condition), with batched per-example early stopping and
  multi-restart.
* :class:`FGSM` — single-step sign attack (Goodfellow et al., 2015).
* :class:`BIM` — iterative FGSM (Kurakin et al., 2016); central to the
  paper's Figures 1-2 and Table I.  Exposes intermediate iterates.
* :class:`PGD` — BIM with random start (Madry et al., 2017).
* :class:`MIM` — momentum iterative method (Dong et al., 2018).
* :class:`RandomNoise` — gradient-free noise baseline.
* :func:`build_attack` / :func:`parse_attack_spec` — the single canonical
  registry (``"bim:num_steps=30"`` spec strings) consumed by defenses,
  evaluators, experiments, benchmarks and the CLI.
"""

from .base import Attack, clip_to_box, project, project_linf
from .bim import BIM
from .deepfool import DeepFool
from .fgsm import FGSM
from .loop import (
    AttackLoop,
    BackpropGradient,
    BoxProjection,
    ClassGradients,
    GradientEstimator,
    GradientStep,
    L2BoxProjection,
    L2NormalizedStep,
    LinfBoxProjection,
    LoopState,
    Misclassified,
    MomentumSignStep,
    SignStep,
    SpsaGradient,
    UniformL2Init,
    UniformLinfInit,
    zero_init,
)
from .losses import margin_loss
from .mim import MIM
from .noise import RandomNoise
from .pgd import PGD
from .pgd_l2 import PGDL2, project_l2
from .registry import (
    AttackSpec,
    attack_names,
    build_attack,
    canonical_attack_name,
    parse_attack_spec,
    register_attack,
)
from .spsa import SPSA

__all__ = [
    "Attack",
    "clip_to_box",
    "project",
    "project_linf",
    "project_l2",
    "FGSM",
    "BIM",
    "PGD",
    "PGDL2",
    "MIM",
    "DeepFool",
    "SPSA",
    "RandomNoise",
    "margin_loss",
    # engine
    "AttackLoop",
    "LoopState",
    "GradientStep",
    "GradientEstimator",
    "BackpropGradient",
    "SpsaGradient",
    "ClassGradients",
    "SignStep",
    "L2NormalizedStep",
    "MomentumSignStep",
    "LinfBoxProjection",
    "L2BoxProjection",
    "BoxProjection",
    "Misclassified",
    "UniformLinfInit",
    "UniformL2Init",
    "zero_init",
    # registry
    "AttackSpec",
    "register_attack",
    "attack_names",
    "canonical_attack_name",
    "parse_attack_spec",
    "build_attack",
]
