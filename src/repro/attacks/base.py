"""Attack base class and shared gradient machinery.

All attacks operate on numpy image batches in the unit box ``[0, 1]`` and
return perturbed numpy batches.  White-box gradients are obtained through
the autograd engine by marking the input tensor as requiring grad —
exactly the mechanism the paper's equations describe::

    delta_i = sign( d L(C(x_{i-1}), y) / d x_{i-1} ) * eps_i
    x_i     = clip(x_{i-1} + delta_i)
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..autograd import Tensor
from ..nn import Module, cross_entropy
from ..runtime import ensure_float_array
from ..utils.validation import check_image_batch

__all__ = ["Attack", "project", "project_linf", "clip_to_box"]


def clip_to_box(x: np.ndarray, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Clamp pixel values into the valid image box."""
    return np.clip(x, low, high)


def project_linf(
    x_adv: np.ndarray, x_orig: np.ndarray, epsilon: float
) -> np.ndarray:
    """Project ``x_adv`` onto the l_inf ball of radius ``epsilon`` around
    ``x_orig`` (elementwise clamp of the perturbation)."""
    return x_orig + np.clip(x_adv - x_orig, -epsilon, epsilon)


def project(
    x_adv: np.ndarray,
    x_orig: np.ndarray,
    epsilon: float,
    clip_min: float = 0.0,
    clip_max: float = 1.0,
    out: np.ndarray = None,
) -> np.ndarray:
    """Fused l_inf-ball + image-box projection.

    Replaces the old two-call ``clip_to_box(project_linf(...))`` pattern
    with a single pass that reuses one buffer for every intermediate (pass
    ``out=x_adv`` to project fully in place).  The ball projection stays in
    delta form — ``x + clip(x' - x, -eps, eps)`` — because the one-clip
    array-bounds formulation ``clip(x', x - eps, x + eps)`` is not
    bit-identical in floating point, and iterate-for-iterate equivalence
    with the legacy attacks is a hard guarantee of the attack engine.
    """
    out = np.subtract(x_adv, x_orig, out=out)
    np.clip(out, -epsilon, epsilon, out=out)
    np.add(out, x_orig, out=out)
    np.clip(out, clip_min, clip_max, out=out)
    return out


class Attack:
    """Base class for white-box evasion attacks.

    Parameters
    ----------
    model:
        The victim classifier (any callable module producing logits).
    loss_fn:
        Loss whose input-gradient drives the attack; defaults to softmax
        cross-entropy as in the paper.
    clip_min, clip_max:
        Valid pixel range.
    targeted:
        If ``True``, labels passed to :meth:`generate` are *target* classes
        and the attack descends the loss instead of ascending it.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Callable = cross_entropy,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
        targeted: bool = False,
    ) -> None:
        if clip_min >= clip_max:
            raise ValueError(
                f"clip_min must be below clip_max, got [{clip_min}, {clip_max}]"
            )
        self.model = model
        self.loss_fn = loss_fn
        self.clip_min = clip_min
        self.clip_max = clip_max
        self.targeted = targeted

    # ------------------------------------------------------------------
    def input_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Gradient of the loss w.r.t. the input batch.

        The model is evaluated in its current training mode; callers should
        normally put the model in eval mode first (attacks against dropout
        noise are not what the paper studies).
        """
        # No dtype cast: perturbation math runs in the input's own floating
        # dtype (the policy decides it upstream, when the batch is created).
        x_tensor = Tensor(ensure_float_array(x), requires_grad=True)
        logits = self.model(x_tensor)
        loss = self.loss_fn(logits, y)
        loss.backward()
        grad = x_tensor.grad
        if grad is None:
            raise RuntimeError(
                "input received no gradient; is the model differentiable?"
            )
        return grad

    def loss_direction(self) -> float:
        """+1 for untargeted ascent, -1 for targeted descent."""
        return -1.0 if self.targeted else 1.0

    # ------------------------------------------------------------------
    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for batch ``(x, y)``."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.generate(x, y)

    # ------------------------------------------------------------------
    def _validate(self, x: np.ndarray, y: np.ndarray):
        """Canonicalize an ``(x, y)`` batch; returns the coerced pair.

        ``x`` becomes a floating array in the runtime policy dtype; ``y``
        becomes a 1-D integer array (lists and integral float arrays are
        coerced, so un-canonicalized labels can never reach the loss).
        """
        check_image_batch(x)
        x = ensure_float_array(x)
        y = np.asarray(y)
        if y.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {y.shape}")
        if len(y) != len(x):
            raise ValueError(
                f"labels ({len(y)}) and examples ({len(x)}) disagree"
            )
        if not np.issubdtype(y.dtype, np.integer):
            coerced = y.astype(np.int64)
            if np.any(coerced != y):
                raise ValueError(
                    f"labels must be integers, got dtype {y.dtype}"
                )
            y = coerced
        return x, y

    @property
    def name(self) -> str:
        """Short attack name used in reports."""
        return type(self).__name__
