"""Basic Iterative Method (Kurakin et al., 2016) — iterative FGSM.

This is the attack at the centre of the paper:

* **Figure 1** sweeps the iteration count ``N`` with ``eps_step = eps / N``.
* **Figure 2** fixes ``N = 10`` and inspects the *intermediate* iterates —
  :meth:`BIM.generate_with_intermediates` exposes exactly those.
* **Table I** evaluates defenses against BIM(10) and BIM(30).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..runtime import ensure_float_array
from ..utils.validation import check_positive
from .base import Attack, clip_to_box, project_linf

__all__ = ["BIM"]


class BIM(Attack):
    """Iterative l_inf attack with per-step budget and total projection.

    Parameters
    ----------
    model:
        Victim classifier.
    epsilon:
        Total l_inf budget.
    num_steps:
        Number of gradient steps (the paper's ``N``).
    step_size:
        Per-step perturbation (the paper's ``eps_s``).  Defaults to
        ``epsilon / num_steps`` — the schedule Figure 1 uses — so the total
        perturbation after ``N`` steps exactly reaches the budget.
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        **kwargs,
    ) -> None:
        super().__init__(model, **kwargs)
        check_positive("epsilon", epsilon)
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        self.epsilon = float(epsilon)
        self.num_steps = int(num_steps)
        self.step_size = (
            float(step_size) if step_size is not None
            else self.epsilon / self.num_steps
        )
        check_positive("step_size", self.step_size)

    # ------------------------------------------------------------------
    def step(
        self, x_adv: np.ndarray, x_orig: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """One BIM iteration from ``x_adv``, projected around ``x_orig``."""
        grad = self.input_gradient(x_adv, y)
        moved = x_adv + self.loss_direction() * self.step_size * np.sign(grad)
        projected = project_linf(moved, x_orig, self.epsilon)
        return clip_to_box(projected, self.clip_min, self.clip_max)

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``."""
        self._validate(x, y)
        x = ensure_float_array(x)
        x_adv = x.copy()
        for _ in range(self.num_steps):
            x_adv = self.step(x_adv, x, y)
        return x_adv

    def generate_with_intermediates(
        self, x: np.ndarray, y: np.ndarray
    ) -> List[np.ndarray]:
        """Return the iterate after *every* step (Figure 2's x-axis).

        ``result[i]`` is the adversarial batch after ``i + 1`` iterations;
        ``result[-1]`` equals :meth:`generate`'s output.
        """
        self._validate(x, y)
        x = ensure_float_array(x)
        iterates: List[np.ndarray] = []
        x_adv = x.copy()
        for _ in range(self.num_steps):
            x_adv = self.step(x_adv, x, y)
            iterates.append(x_adv.copy())
        return iterates
