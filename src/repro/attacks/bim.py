"""Basic Iterative Method (Kurakin et al., 2016) — iterative FGSM.

This is the attack at the centre of the paper:

* **Figure 1** sweeps the iteration count ``N`` with ``eps_step = eps / N``.
* **Figure 2** fixes ``N = 10`` and inspects the *intermediate* iterates —
  :meth:`BIM.generate_with_intermediates` exposes exactly those.
* **Table I** evaluates defenses against BIM(10) and BIM(30).

The class is a declarative composition over the attack engine: zero
initialisation, backprop gradients, sign steps, and the fused
l_inf-ball + box projection.  Subclasses (PGD, MIM) swap individual
pieces by overriding the ``_make_*`` factories.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..utils.validation import check_positive
from .base import Attack
from .loop import (
    AttackLoop,
    BackpropGradient,
    GradientStep,
    LinfBoxProjection,
    Misclassified,
    SignStep,
    zero_init,
)

__all__ = ["BIM"]


class BIM(Attack):
    """Iterative l_inf attack with per-step budget and total projection.

    Parameters
    ----------
    model:
        Victim classifier.
    epsilon:
        Total l_inf budget.
    num_steps:
        Number of gradient steps (the paper's ``N``).
    step_size:
        Per-step perturbation (the paper's ``eps_s``).  Defaults to
        ``epsilon / num_steps`` — the schedule Figure 1 uses — so the total
        perturbation after ``N`` steps exactly reaches the budget.
    early_stop:
        Mask examples the model already misclassifies out of subsequent
        forward/backward passes (batched per-example early stopping).
        Off by default, which keeps the attack bit-for-bit identical to
        the classic run-every-step loop.
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        early_stop: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(model, **kwargs)
        check_positive("epsilon", epsilon)
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        self.epsilon = float(epsilon)
        self.num_steps = int(num_steps)
        self.step_size = (
            float(step_size) if step_size is not None
            else self.epsilon / self.num_steps
        )
        check_positive("step_size", self.step_size)
        self.early_stop = bool(early_stop)
        self._loop: Optional[AttackLoop] = None

    # ------------------------------------------------------------------
    # Engine composition (overridden by subclasses to swap pieces).
    # ------------------------------------------------------------------
    def _make_estimator(self):
        return BackpropGradient(self.model, self.loss_fn)

    def _make_rule(self):
        return SignStep(self.step_size)

    def _make_projection(self):
        return LinfBoxProjection(self.epsilon, self.clip_min, self.clip_max)

    def _make_initializer(self):
        return zero_init

    def _restarts(self) -> int:
        return 1

    @property
    def loop(self) -> AttackLoop:
        """The underlying :class:`AttackLoop` (built on first use)."""
        if self._loop is None:
            self._loop = AttackLoop(
                self.model,
                GradientStep(
                    self._make_estimator(),
                    self._make_rule(),
                    self._make_projection(),
                    direction=self.loss_direction(),
                ),
                num_steps=self.num_steps,
                initializer=self._make_initializer(),
                stop=Misclassified(self.targeted),
                early_stop=self.early_stop,
                restarts=self._restarts(),
            )
        return self._loop

    # ------------------------------------------------------------------
    def step(
        self, x_adv: np.ndarray, x_orig: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """One BIM iteration from ``x_adv``, projected around ``x_orig``."""
        return self.loop.step(x_adv, x_orig, y)

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``."""
        x, y = self._validate(x, y)
        return self.loop.run(x, y)

    def generate_with_intermediates(
        self, x: np.ndarray, y: np.ndarray
    ) -> List[np.ndarray]:
        """Return the iterate after *every* step (Figure 2's x-axis).

        ``result[i]`` is the adversarial batch after ``i + 1`` iterations;
        ``result[-1]`` equals :meth:`generate`'s output.
        """
        x, y = self._validate(x, y)
        return self.loop.run(x, y, record_intermediates=True)
