"""DeepFool (Moosavi-Dezfooli et al., 2016) — minimal-perturbation attack.

Unlike the budgeted attacks (FGSM/BIM/PGD), DeepFool searches for the
*smallest* perturbation that crosses a decision boundary, by iteratively
linearising the classifier around the current iterate and stepping to the
nearest linearised boundary.  Useful for measuring a model's empirical
margin; included as an extension attack.

The implementation evaluates per-class input gradients, so its cost per
iteration is ``num_classes`` backward passes — use small batches.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..runtime import ensure_float_array
from .base import Attack, clip_to_box

__all__ = ["DeepFool"]


class DeepFool(Attack):
    """l2 DeepFool with an optional overshoot and final budget clamp.

    Parameters
    ----------
    max_steps:
        Maximum linearisation iterations per example.
    overshoot:
        Multiplicative boundary overshoot (default 0.02 as in the paper).
    overshoot_growth:
        Escalation factor applied each iteration an example stays correct.
        Images in this repo are near-binary, so the box clip truncates many
        linearised steps; growing the overshoot lets stuck examples cross
        the boundary while early-exiting examples keep minimal
        perturbations.
    """

    def __init__(
        self,
        model,
        max_steps: int = 20,
        overshoot: float = 0.02,
        overshoot_growth: float = 1.3,
        **kwargs,
    ) -> None:
        kwargs.pop("targeted", None)  # DeepFool is inherently untargeted
        super().__init__(model, **kwargs)
        if max_steps <= 0:
            raise ValueError(f"max_steps must be positive, got {max_steps}")
        if overshoot < 0:
            raise ValueError(
                f"overshoot must be non-negative, got {overshoot}"
            )
        if overshoot_growth < 1.0:
            raise ValueError(
                f"overshoot_growth must be >= 1, got {overshoot_growth}"
            )
        self.max_steps = int(max_steps)
        self.overshoot = float(overshoot)
        self.overshoot_growth = float(overshoot_growth)

    # ------------------------------------------------------------------
    def _logits_and_grads(self, x: np.ndarray):
        """Return logits plus the input gradient of every class logit."""
        grads = []
        x_tensor = Tensor(x, requires_grad=True)
        logits = self.model(x_tensor)
        num_classes = logits.shape[1]
        logits_data = logits.data
        for cls in range(num_classes):
            x_t = Tensor(x, requires_grad=True)
            out = self.model(x_t)
            out[np.arange(len(x)), np.full(len(x), cls)].sum().backward()
            grads.append(x_t.grad)
        return logits_data, np.stack(grads, axis=1)  # (N, C, ...)

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return minimally perturbed misclassified examples."""
        self._validate(x, y)
        x = ensure_float_array(x)
        y = np.asarray(y)
        x_adv = x.copy()
        active = np.ones(len(x), dtype=bool)
        for step in range(self.max_steps):
            if not active.any():
                break
            overshoot = self.overshoot * self.overshoot_growth ** step
            logits, grads = self._logits_and_grads(x_adv[active])
            labels = y[active]
            rows = np.arange(len(labels))
            still_correct = logits.argmax(axis=1) == labels
            # Find, per example, the closest linearised boundary.
            perturbations = np.zeros_like(x_adv[active])
            for i in range(len(labels)):
                if not still_correct[i]:
                    continue
                true = labels[i]
                best_ratio = np.inf
                best_delta = None
                for cls in range(logits.shape[1]):
                    if cls == true:
                        continue
                    w = grads[i, cls] - grads[i, true]
                    f = logits[i, cls] - logits[i, true]
                    w_norm = max(np.linalg.norm(w), 1e-12)
                    ratio = abs(f) / w_norm
                    if ratio < best_ratio:
                        best_ratio = ratio
                        best_delta = (abs(f) / (w_norm ** 2)) * w
                if best_delta is not None:
                    perturbations[i] = (1.0 + overshoot) * best_delta
            chunk = clip_to_box(
                x_adv[active] + perturbations, self.clip_min, self.clip_max
            )
            x_adv[active] = chunk
            # Deactivate fooled examples.
            fooled = self.model.predict(x_adv[active]) != labels
            indices = np.flatnonzero(active)
            active[indices[fooled]] = False
        return x_adv

    def perturbation_norms(
        self, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Per-example l2 size of the found minimal perturbations."""
        x_adv = self.generate(x, y)
        delta = (x_adv - np.asarray(x)).reshape(len(x), -1)
        return np.linalg.norm(delta, axis=1)
