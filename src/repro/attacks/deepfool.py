"""DeepFool (Moosavi-Dezfooli et al., 2016) — minimal-perturbation attack.

Unlike the budgeted attacks (FGSM/BIM/PGD), DeepFool searches for the
*smallest* perturbation that crosses a decision boundary, by iteratively
linearising the classifier around the current iterate and stepping to the
nearest linearised boundary.  Useful for measuring a model's empirical
margin; included as an extension attack.

The implementation evaluates per-class input gradients, so its cost per
iteration is ``num_classes`` backward passes — use small batches.

DeepFool is the attack the engine's batched early stopping was *made*
for: it runs on the :class:`~repro.attacks.loop.AttackLoop` with
``early_stop`` always on, so fooled examples drop out of the expensive
per-class gradient passes the moment the forward pass shows they crossed
the boundary.
"""

from __future__ import annotations

import numpy as np

from .base import Attack
from .loop import (
    AttackLoop,
    BoxProjection,
    ClassGradients,
    LoopState,
    Misclassified,
    zero_init,
)

__all__ = ["DeepFool"]


class DeepFoolStep:
    """Linearisation step: move to the nearest linearised class boundary.

    Implements the engine's step protocol (``gradient``/``apply``): the
    "gradient" phase computes the full per-example perturbation from the
    per-class input gradients (zero for rows the model already
    misclassifies — the loop retires those before the update lands), and
    the apply phase adds it under a box-only projection.
    """

    def __init__(
        self, model, overshoot, overshoot_growth, clip_min, clip_max
    ) -> None:
        self.class_grads = ClassGradients(model)
        self.overshoot = float(overshoot)
        self.overshoot_growth = float(overshoot_growth)
        self.projection = BoxProjection(clip_min, clip_max)

    def gradient(self, x_adv, y, state: LoopState) -> np.ndarray:
        logits, grads = self.class_grads(x_adv, state)
        overshoot = self.overshoot * self.overshoot_growth ** state.step
        still_correct = logits.argmax(axis=1) == y
        perturbations = np.zeros_like(x_adv)
        for i in range(len(y)):
            if not still_correct[i]:
                continue
            true = y[i]
            best_ratio = np.inf
            best_delta = None
            for cls in range(logits.shape[1]):
                if cls == true:
                    continue
                w = grads[i, cls] - grads[i, true]
                f = logits[i, cls] - logits[i, true]
                w_norm = max(np.linalg.norm(w), 1e-12)
                ratio = abs(f) / w_norm
                if ratio < best_ratio:
                    best_ratio = ratio
                    best_delta = (abs(f) / (w_norm ** 2)) * w
            if best_delta is not None:
                perturbations[i] = (1.0 + overshoot) * best_delta
        return perturbations

    def apply(self, x_adv, x_orig, y, perturbations, state) -> np.ndarray:
        moved = x_adv + perturbations
        return self.projection(moved, x_orig)

    def __call__(self, x_adv, x_orig, y, state) -> np.ndarray:
        return self.apply(
            x_adv, x_orig, y, self.gradient(x_adv, y, state), state
        )


class DeepFool(Attack):
    """l2 DeepFool with an optional overshoot and final budget clamp.

    Parameters
    ----------
    max_steps:
        Maximum linearisation iterations per example.
    overshoot:
        Multiplicative boundary overshoot (default 0.02 as in the paper).
    overshoot_growth:
        Escalation factor applied each iteration an example stays correct.
        Images in this repo are near-binary, so the box clip truncates many
        linearised steps; growing the overshoot lets stuck examples cross
        the boundary while early-exiting examples keep minimal
        perturbations.
    """

    def __init__(
        self,
        model,
        max_steps: int = 20,
        overshoot: float = 0.02,
        overshoot_growth: float = 1.3,
        **kwargs,
    ) -> None:
        kwargs.pop("targeted", None)  # DeepFool is inherently untargeted
        super().__init__(model, **kwargs)
        if max_steps <= 0:
            raise ValueError(f"max_steps must be positive, got {max_steps}")
        if overshoot < 0:
            raise ValueError(
                f"overshoot must be non-negative, got {overshoot}"
            )
        if overshoot_growth < 1.0:
            raise ValueError(
                f"overshoot_growth must be >= 1, got {overshoot_growth}"
            )
        self.max_steps = int(max_steps)
        self.overshoot = float(overshoot)
        self.overshoot_growth = float(overshoot_growth)
        self._loop = AttackLoop(
            model,
            DeepFoolStep(
                model,
                self.overshoot,
                self.overshoot_growth,
                self.clip_min,
                self.clip_max,
            ),
            num_steps=self.max_steps,
            initializer=zero_init,
            stop=Misclassified(targeted=False),
            early_stop=True,
        )

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return minimally perturbed misclassified examples."""
        x, y = self._validate(x, y)
        return self._loop.run(x, y)

    def perturbation_norms(
        self, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Per-example l2 size of the found minimal perturbations."""
        x_adv = self.generate(x, y)
        delta = (x_adv - np.asarray(x)).reshape(len(x), -1)
        return np.linalg.norm(delta, axis=1)
