"""Fast Gradient Sign Method (Goodfellow et al., 2015)."""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_positive
from .base import Attack
from .loop import (
    AttackLoop,
    BackpropGradient,
    BoxProjection,
    GradientStep,
    SignStep,
    zero_init,
)

__all__ = ["FGSM"]


class FGSM(Attack):
    """Single-step l_inf attack: ``x' = clip(x + eps * sign(grad))``.

    Composed on the attack engine as one sign step of size ``epsilon``
    from a zero initialisation with a box-only projection (a single
    full-budget sign step cannot leave the l_inf ball, so no ball
    projection is needed).

    Parameters
    ----------
    model, loss_fn, clip_min, clip_max, targeted:
        See :class:`~repro.attacks.base.Attack`.
    epsilon:
        Perturbation budget (l_inf radius).
    """

    def __init__(self, model, epsilon: float, **kwargs) -> None:
        super().__init__(model, **kwargs)
        check_positive("epsilon", epsilon)
        self.epsilon = float(epsilon)
        self._loop = AttackLoop(
            model,
            GradientStep(
                BackpropGradient(model, self.loss_fn),
                SignStep(self.epsilon),
                BoxProjection(self.clip_min, self.clip_max),
                direction=self.loss_direction(),
            ),
            num_steps=1,
            initializer=zero_init,
        )

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``."""
        x, y = self._validate(x, y)
        return self._loop.run(x, y)
