"""Fast Gradient Sign Method (Goodfellow et al., 2015)."""

from __future__ import annotations

import numpy as np

from ..runtime import ensure_float_array
from ..utils.validation import check_positive
from .base import Attack, clip_to_box

__all__ = ["FGSM"]


class FGSM(Attack):
    """Single-step l_inf attack: ``x' = clip(x + eps * sign(grad))``.

    Parameters
    ----------
    model, loss_fn, clip_min, clip_max, targeted:
        See :class:`~repro.attacks.base.Attack`.
    epsilon:
        Perturbation budget (l_inf radius).
    """

    def __init__(self, model, epsilon: float, **kwargs) -> None:
        super().__init__(model, **kwargs)
        check_positive("epsilon", epsilon)
        self.epsilon = float(epsilon)

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``."""
        self._validate(x, y)
        x = ensure_float_array(x)
        grad = self.input_gradient(x, y)
        step = self.loss_direction() * self.epsilon * np.sign(grad)
        return clip_to_box(x + step, self.clip_min, self.clip_max)
