"""Composable attack-iteration engine.

Every iterative evasion attack in this library is the same loop wearing a
different hat::

    x_0 = initializer(x)
    for i in 0..N-1:
        g   = gradient(x_i, y)          # backprop, SPSA, per-class, ...
        d   = step_rule(g)              # sign, l2-normalised, momentum, ...
        x'  = x_i + direction * d
        x_{i+1} = projection(x', x)     # fused norm-ball + box clip
        [stop examples the attack already fooled]

:class:`AttackLoop` factors that loop out once, so the concrete attacks in
this package are thin declarative compositions of four pluggable pieces:

* **initializers** — where the iterate starts (:func:`zero_init`,
  :class:`UniformLinfInit`, :class:`UniformL2Init`, or a carried iterate
  passed via ``start=`` for the epoch-wise defense);
* **gradient estimators** — :class:`BackpropGradient` (white-box),
  :class:`SpsaGradient` (finite differences, no backprop) and
  :class:`ClassGradients` (per-class linearisation for DeepFool), all
  behind the same :class:`GradientEstimator` interface;
* **step rules** — :class:`SignStep`, :class:`L2NormalizedStep`,
  :class:`MomentumSignStep`;
* **projections** — :class:`LinfBoxProjection`, :class:`L2BoxProjection`,
  :class:`BoxProjection`, each fusing the norm-ball projection and the
  image-box clip into one in-place pass over the moved iterate.

The loop also owns two batching features the hand-rolled attacks never had:

* **batched early stopping** (``early_stop=True``): per-example stop
  conditions mask already-fooled examples out of *subsequent*
  forward/backward passes.  Survivors are compacted into scratch buffers
  drawn from :mod:`repro.runtime.workspace`, so the model only ever sees
  the shrinking active set — on an undefended model a BIM(10) sweep
  typically collapses to a handful of active examples after two or three
  iterations (see ``benchmarks/bench_attacks.py``).
* **multi-restart** (``restarts=N``): reruns the loop from fresh random
  initialisations, but only for the examples the previous restarts failed
  to fool.

With ``early_stop=False`` and ``restarts=1`` (the defaults) the loop is
numerically *identical* — bit-for-bit, not merely close — to the
pre-engine hand-rolled attack loops; the equivalence suite in
``tests/attacks/test_equivalence.py`` pins exactly that.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from .. import telemetry as tel
from ..autograd import Tensor, no_grad
from ..nn import cross_entropy
from ..runtime import ensure_float_array
from ..runtime.compiled import compiled_enabled
from ..runtime.workspace import get_workspace
from .base import project

__all__ = [
    "LoopState",
    "zero_init",
    "UniformLinfInit",
    "UniformL2Init",
    "GradientEstimator",
    "BackpropGradient",
    "SpsaGradient",
    "ClassGradients",
    "SignStep",
    "L2NormalizedStep",
    "MomentumSignStep",
    "LinfBoxProjection",
    "L2BoxProjection",
    "BoxProjection",
    "Misclassified",
    "GradientStep",
    "AttackLoop",
    "normalize_l2",
]


def normalize_l2(grad: np.ndarray) -> np.ndarray:
    """Scale each example's gradient to unit l2 norm."""
    flat = grad.reshape(len(grad), -1)
    norms = np.maximum(np.linalg.norm(flat, axis=1), 1e-12)
    return (flat / norms[:, None]).reshape(grad.shape)


class LoopState:
    """Mutable per-run state threaded through every loop component.

    Attributes
    ----------
    step:
        Global iteration index (0-based); rules that escalate over time
        (DeepFool's overshoot growth) key off it.
    indices:
        Dataset-row indices of the currently active examples, or ``None``
        when the whole batch is active (the no-masking fast path).  Step
        rules with per-example state (momentum) use it to address their
        full-batch buffers.
    logits:
        Forward logits of the *current* iterate for the active rows, set
        by gradient estimators that compute them anyway; the stop
        condition reads them so early stopping costs no extra forward.
    batch_shape / dtype:
        Shape/dtype of the full batch, for lazily allocated rule state.
    extra:
        Scratch dict for step-rule state (e.g. the momentum buffer).
    """

    __slots__ = ("step", "indices", "logits", "batch_shape", "dtype", "extra")

    def __init__(self, batch_shape=None, dtype=None) -> None:
        self.step = 0
        self.indices: Optional[np.ndarray] = None
        self.logits: Optional[np.ndarray] = None
        self.batch_shape = batch_shape
        self.dtype = dtype
        self.extra: dict = {}


# ----------------------------------------------------------------------
# Initializers: (x_orig) -> starting iterate (always a fresh array).
# ----------------------------------------------------------------------

def zero_init(x: np.ndarray) -> np.ndarray:
    """Start from the clean example (BIM, FGSM, SPSA, MIM)."""
    return x.copy()


class UniformLinfInit:
    """Uniform random start inside the l_inf ball (PGD), box-clipped."""

    def __init__(self, epsilon, rng, clip_min=0.0, clip_max=1.0) -> None:
        self.epsilon = float(epsilon)
        self.rng = rng
        self.clip_min = float(clip_min)
        self.clip_max = float(clip_max)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        noise = self.rng.uniform(
            -self.epsilon, self.epsilon, size=x.shape
        ).astype(x.dtype, copy=False)
        return np.clip(x + noise, self.clip_min, self.clip_max)


class UniformL2Init:
    """Uniform random start inside the l2 ball (PGD-L2), box-clipped.

    Draws a Gaussian direction, normalises it, and scales by a radius with
    the density of a uniform draw from the ball interior.
    """

    def __init__(self, epsilon, rng, clip_min=0.0, clip_max=1.0) -> None:
        self.epsilon = float(epsilon)
        self.rng = rng
        self.clip_min = float(clip_min)
        self.clip_max = float(clip_max)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        direction = self.rng.normal(size=x.shape).astype(x.dtype, copy=False)
        direction = normalize_l2(direction)
        radii = (
            self.epsilon
            * self.rng.uniform(0, 1, size=(len(x),) + (1,) * (x.ndim - 1))
            ** (1.0 / x[0].size)
        ).astype(x.dtype, copy=False)
        return np.clip(
            x + direction * radii, self.clip_min, self.clip_max
        )


# ----------------------------------------------------------------------
# Gradient estimators.
# ----------------------------------------------------------------------

class GradientEstimator:
    """Interface: estimate the input-gradient of the attack objective.

    ``__call__(x, y, state)`` returns an array shaped like ``x``.
    Estimators that obtain the forward logits as a by-product publish them
    on ``state.logits`` so the early-stop condition can reuse them.
    """

    def __call__(
        self, x: np.ndarray, y: np.ndarray, state: LoopState
    ) -> np.ndarray:
        raise NotImplementedError


class BackpropGradient(GradientEstimator):
    """White-box gradient through the autograd engine (one fwd + bwd).

    When the runtime ``compiled`` toggle is on, the forward/backward pair
    runs through a :class:`~repro.autograd.tape.CompiledStep` keyed on the
    iterate's shape/dtype, so repeated attack iterations replay a traced
    tape instead of rebuilding the graph (bit-for-bit identical grads).
    """

    def __init__(self, model, loss_fn: Callable = cross_entropy) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self._compiled = None

    def _compiled_step(self):
        if self._compiled is None:
            from ..autograd.tape import CompiledStep

            model, loss_fn = self.model, self.loss_fn

            def objective(x, y):
                logits = model(x)
                return loss_fn(logits, y), logits

            # consume="all" (the default) keeps the parameter-gradient
            # accumulation the eager backward performs as a side effect;
            # trainers that run attacks mid-batch rely on it bit-for-bit.
            self._compiled = CompiledStep(
                objective,
                grad_inputs=(0,),
                name="attack.backprop",
            )
        return self._compiled

    def __call__(self, x, y, state: LoopState) -> np.ndarray:
        if compiled_enabled():
            result = self._compiled_step()(ensure_float_array(x), y)
            grad = result.input_grads[0]
            if grad is None:
                raise RuntimeError(
                    "input received no gradient; is the model differentiable?"
                )
            state.logits = np.asarray(result.outputs[1])
            return grad
        x_tensor = Tensor(ensure_float_array(x), requires_grad=True)
        logits = self.model(x_tensor)
        loss = self.loss_fn(logits, y)
        loss.backward()
        grad = x_tensor.grad
        if grad is None:
            raise RuntimeError(
                "input received no gradient; is the model differentiable?"
            )
        state.logits = logits.data
        return grad


class SpsaGradient(GradientEstimator):
    """SPSA finite-difference estimate: Rademacher probes, no backprop.

    Each of the ``samples`` probe pairs costs two forward passes; the
    estimate averages the directional finite differences.  Never touches
    model gradients, so it penetrates gradient masking.
    """

    def __init__(
        self,
        model,
        loss_fn: Callable = cross_entropy,
        samples: int = 16,
        delta: float = 0.01,
        rng=None,
    ) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.samples = int(samples)
        self.delta = float(delta)
        self.rng = rng

    def _loss_values(self, x, y) -> np.ndarray:
        with no_grad():
            logits = self.model(Tensor(x))
            per_example = self.loss_fn(logits, y, reduction="none")
        return per_example.data

    def __call__(self, x, y, state: LoopState) -> np.ndarray:
        estimate = np.zeros_like(x)
        for _ in range(self.samples):
            direction = self.rng.choice([-1.0, 1.0], size=x.shape).astype(
                x.dtype, copy=False
            )
            plus = self._loss_values(x + self.delta * direction, y)
            minus = self._loss_values(x - self.delta * direction, y)
            diff = (plus - minus) / (2.0 * self.delta)
            estimate += diff.reshape((-1,) + (1,) * (x.ndim - 1)) * direction
        return estimate / self.samples


class ClassGradients:
    """Per-class input gradients (DeepFool's linearisation inputs).

    ``__call__`` returns ``(logits, grads)`` with ``grads`` shaped
    ``(N, C, *x.shape[1:])``; cost is one forward plus ``C``
    forward/backward passes.
    """

    def __init__(self, model) -> None:
        self.model = model

    def __call__(self, x: np.ndarray, state: LoopState):
        x_tensor = Tensor(x, requires_grad=True)
        logits = self.model(x_tensor)
        num_classes = logits.shape[1]
        logits_data = logits.data
        grads = []
        for cls in range(num_classes):
            x_t = Tensor(x, requires_grad=True)
            out = self.model(x_t)
            out[np.arange(len(x)), np.full(len(x), cls)].sum().backward()
            grads.append(x_t.grad)
        state.logits = logits_data
        return logits_data, np.stack(grads, axis=1)


# ----------------------------------------------------------------------
# Step rules: gradient -> un-directed update vector.
# ----------------------------------------------------------------------

class SignStep:
    """l_inf steepest descent: ``step_size * sign(grad)``."""

    def __init__(self, step_size: float) -> None:
        self.step_size = float(step_size)

    def __call__(self, grad: np.ndarray, state: LoopState) -> np.ndarray:
        return self.step_size * np.sign(grad)


class L2NormalizedStep:
    """l2 steepest descent: a ``step_size``-long step along the gradient."""

    def __init__(self, step_size: float) -> None:
        self.step_size = float(step_size)

    def __call__(self, grad: np.ndarray, state: LoopState) -> np.ndarray:
        return self.step_size * normalize_l2(grad)


class MomentumSignStep:
    """MIM update: decayed running average of l1-normalised gradients.

    The momentum buffer spans the full batch and is addressed through
    ``state.indices`` so early-stop compaction keeps each example's
    momentum aligned with its iterate.
    """

    def __init__(self, step_size: float, decay: float = 1.0) -> None:
        self.step_size = float(step_size)
        self.decay = float(decay)

    def __call__(self, grad: np.ndarray, state: LoopState) -> np.ndarray:
        momentum = state.extra.get("momentum")
        if momentum is None:
            momentum = np.zeros(state.batch_shape, dtype=state.dtype)
            state.extra["momentum"] = momentum
        # l1-normalise per example (mean absolute value).
        flat = np.abs(grad).reshape(len(grad), -1).mean(axis=1)
        flat = np.maximum(flat, 1e-12).reshape(
            (-1,) + (1,) * (grad.ndim - 1)
        )
        if state.indices is None:
            momentum *= self.decay
            momentum += grad / flat
            current = momentum
        else:
            current = self.decay * momentum[state.indices] + grad / flat
            momentum[state.indices] = current
        return self.step_size * np.sign(current)


# ----------------------------------------------------------------------
# Projections: fused norm-ball + box clip, in place on the moved iterate.
# ----------------------------------------------------------------------

class LinfBoxProjection:
    """Project onto the l_inf ball around ``x_orig``, then the image box.

    Both clips run in one fused pass over the (freshly allocated) moved
    iterate; the ball projection stays in delta form — ``x + clip(x' - x)``
    — because the single-``np.clip``-with-array-bounds formulation is *not*
    bit-identical in floating point (``x + (x' - x) != x'``), and the
    engine guarantees exact equivalence with the legacy two-call pattern.
    """

    def __init__(self, epsilon, clip_min=0.0, clip_max=1.0) -> None:
        self.epsilon = float(epsilon)
        self.clip_min = float(clip_min)
        self.clip_max = float(clip_max)

    def __call__(self, moved: np.ndarray, x_orig: np.ndarray) -> np.ndarray:
        return project(
            moved, x_orig, self.epsilon, self.clip_min, self.clip_max,
            out=moved,
        )


class L2BoxProjection:
    """Project onto the l2 ball around ``x_orig``, then the image box."""

    def __init__(self, epsilon, clip_min=0.0, clip_max=1.0) -> None:
        self.epsilon = float(epsilon)
        self.clip_min = float(clip_min)
        self.clip_max = float(clip_max)

    def __call__(self, moved: np.ndarray, x_orig: np.ndarray) -> np.ndarray:
        delta = np.subtract(moved, x_orig, out=moved)
        flat = delta.reshape(len(delta), -1)
        norms = np.linalg.norm(flat, axis=1)
        factors = np.ones_like(norms)
        over = norms > self.epsilon
        factors[over] = self.epsilon / norms[over]
        flat *= factors[:, None]
        np.add(delta, x_orig, out=delta)
        np.clip(delta, self.clip_min, self.clip_max, out=delta)
        return delta


class BoxProjection:
    """Image-box clip only (FGSM's single step, DeepFool, noise)."""

    def __init__(self, clip_min=0.0, clip_max=1.0) -> None:
        self.clip_min = float(clip_min)
        self.clip_max = float(clip_max)

    def __call__(self, moved: np.ndarray, x_orig: np.ndarray) -> np.ndarray:
        np.clip(moved, self.clip_min, self.clip_max, out=moved)
        return moved


# ----------------------------------------------------------------------
# Stop conditions.
# ----------------------------------------------------------------------

class Misclassified:
    """Per-example success test: the model no longer predicts the label.

    For targeted attacks success is predicting the *target* label instead.
    Reads ``state.logits`` when the gradient estimator published them
    (free); falls back to one extra forward pass otherwise (SPSA).
    """

    def __init__(self, targeted: bool = False) -> None:
        self.targeted = targeted

    def __call__(self, model, x, y, state: LoopState) -> np.ndarray:
        if state.logits is not None:
            predictions = state.logits.argmax(axis=1)
        else:
            predictions = model.predict(x)
        if self.targeted:
            return predictions == y
        return predictions != y


# ----------------------------------------------------------------------
# The standard gradient step and the loop driver.
# ----------------------------------------------------------------------

class GradientStep:
    """The canonical iteration: estimate, step, project.

    Split into :meth:`gradient` and :meth:`apply` so the early-stop driver
    can interleave the stop check between the forward pass (which yields
    the logits the check needs) and the update.
    """

    def __init__(self, estimator, rule, projection, direction=1.0) -> None:
        self.estimator = estimator
        self.rule = rule
        self.projection = projection
        self.direction = float(direction)

    def gradient(self, x_adv, y, state: LoopState):
        return self.estimator(x_adv, y, state)

    def apply(self, x_adv, x_orig, y, grad, state: LoopState) -> np.ndarray:
        update = self.rule(grad, state)
        moved = x_adv + self.direction * update
        return self.projection(moved, x_orig)

    def __call__(self, x_adv, x_orig, y, state: LoopState) -> np.ndarray:
        grad = self.gradient(x_adv, y, state)
        return self.apply(x_adv, x_orig, y, grad, state)


class AttackLoop:
    """Drive a step function for ``num_steps`` iterations over a batch.

    Parameters
    ----------
    model:
        Victim classifier (used by stop conditions and restarts).
    step_fn:
        A :class:`GradientStep` (or anything implementing its
        ``gradient``/``apply``/``__call__`` protocol, e.g. DeepFool's
        linearisation step).
    num_steps:
        Iteration budget.
    initializer:
        Callable ``x -> x_0``; ignored when ``run`` receives ``start=``
        (the epoch-wise defense's carried iterate).
    stop:
        Optional per-example stop condition (:class:`Misclassified`).
    early_stop:
        Mask examples that satisfy ``stop`` out of subsequent
        forward/backward passes, compacting survivors through the
        workspace pool.  Off by default: the unmasked path is bit-exact
        with the legacy attack loops.
    restarts:
        Number of runs from fresh initialisations; restarts after the
        first only re-attack examples that are still correctly classified
        (requires ``stop``).
    """

    def __init__(
        self,
        model,
        step_fn,
        *,
        num_steps: int,
        initializer: Callable = zero_init,
        stop=None,
        early_stop: bool = False,
        restarts: int = 1,
    ) -> None:
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        if restarts < 1:
            raise ValueError(f"restarts must be at least 1, got {restarts}")
        if restarts > 1 and stop is None:
            raise ValueError("multi-restart needs a stop condition")
        if early_stop and stop is None:
            raise ValueError("early_stop needs a stop condition")
        self.model = model
        self.step_fn = step_fn
        self.num_steps = int(num_steps)
        self.initializer = initializer
        self.stop = stop
        self.early_stop = bool(early_stop)
        self.restarts = int(restarts)

    # ------------------------------------------------------------------
    def step(self, x_adv, x_orig, y, state: Optional[LoopState] = None):
        """One stateless iteration (the epoch-wise defense's primitive)."""
        if state is None:
            state = LoopState(batch_shape=x_orig.shape, dtype=x_orig.dtype)
        return self.step_fn(x_adv, x_orig, y, state)

    def run(
        self,
        x_orig: np.ndarray,
        y: np.ndarray,
        *,
        start: Optional[np.ndarray] = None,
        record_intermediates: bool = False,
    ):
        """Attack the batch; returns the final iterate.

        With ``record_intermediates=True`` returns the list of iterates
        after every step instead (``result[-1]`` is the final iterate).
        """
        intermediates: Optional[List[np.ndarray]] = (
            [] if record_intermediates else None
        )
        x_adv = self._run_once(x_orig, y, start, intermediates)
        if self.restarts > 1 and not record_intermediates:
            x_adv = self._merge_restarts(x_orig, y, x_adv)
        return intermediates if record_intermediates else x_adv

    # ------------------------------------------------------------------
    def _merge_restarts(self, x_orig, y, x_adv):
        state = LoopState(batch_shape=x_orig.shape, dtype=x_orig.dtype)
        for _restart in range(1, self.restarts):
            state.logits = None
            fooled = self.stop(self.model, x_adv, y, state)
            if fooled.all():
                break
            remaining = np.flatnonzero(~fooled)
            if tel.enabled():
                tel.counter("attack.loop.restarts")
                tel.counter("attack.restart.rows", int(remaining.size))
            redo = self._run_once(
                np.ascontiguousarray(x_orig[remaining]), y[remaining],
                None, None,
            )
            x_adv[remaining] = redo
        return x_adv

    def _run_once(self, x_orig, y, start, intermediates):
        x_adv = start if start is not None else self.initializer(x_orig)
        state = LoopState(batch_shape=x_orig.shape, dtype=x_orig.dtype)
        if self.early_stop and self.stop is not None:
            return self._run_masked(x_orig, y, x_adv, state, intermediates)
        for step in range(self.num_steps):
            state.step = step
            state.logits = None
            x_adv = self.step_fn(x_adv, x_orig, y, state)
            if intermediates is not None:
                intermediates.append(x_adv.copy())
        if tel.enabled():
            tel.counter("attack.loop.runs")
            tel.counter("attack.loop.iterations", self.num_steps)
        return x_adv

    def _run_masked(self, x_orig, y, x_adv, state, intermediates):
        """Early-stop driver: shrink the batch as examples get fooled.

        Per iteration: compact the active rows into pooled scratch
        buffers, run the (single) forward/backward over that compact
        batch, retire rows the forward shows are already fooled — they
        never see another pass — and step-and-scatter the survivors.
        """
        workspace = get_workspace()
        n = len(x_orig)
        active = np.arange(n)
        iterations = 0
        retired_total = 0
        for step in range(self.num_steps):
            if active.size == 0:
                break
            iterations += 1
            state.step = step
            state.logits = None
            full = active.size == n
            if full:
                x_active, orig_active, y_active = x_adv, x_orig, y
                scratch = ()
            else:
                x_active = workspace.acquire(
                    (active.size,) + x_adv.shape[1:], x_adv.dtype
                )
                np.take(x_adv, active, axis=0, out=x_active)
                orig_active = workspace.acquire(
                    (active.size,) + x_orig.shape[1:], x_orig.dtype
                )
                np.take(x_orig, active, axis=0, out=orig_active)
                y_active = y[active]
                scratch = (x_active, orig_active)
            state.indices = active
            grad = self.step_fn.gradient(x_active, y_active, state)
            done = self.stop(self.model, x_active, y_active, state)
            stepped = self.step_fn.apply(
                x_active, orig_active, y_active, grad, state
            )
            if done.any():
                keep = ~done
                x_adv[active[keep]] = stepped[keep]
                before = active.size
                active = active[keep]
                if tel.enabled():
                    retired = int(before - active.size)
                    retired_total += retired
                    tel.observe("attack.early_stop.retired_per_step", retired)
            else:
                x_adv[active] = stepped
            for buffer in scratch:
                workspace.release(buffer)
            if intermediates is not None:
                intermediates.append(x_adv.copy())
        state.indices = None
        if tel.enabled():
            tel.counter("attack.loop.runs")
            tel.counter("attack.loop.iterations", iterations)
            tel.counter("attack.early_stop.retired", retired_total)
            tel.counter("attack.early_stop.survivors", int(active.size))
        return x_adv
