"""Alternative attack objectives.

The default attack objective is softmax cross-entropy (the paper's choice).
This module adds the Carlini–Wagner-style *logit margin*, which avoids
cross-entropy's gradient saturation on highly confident predictions and is
a common drop-in strengthening of FGSM/BIM/PGD (pass ``loss_fn=margin_loss``
to any attack).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, as_tensor
from ..nn.losses import one_hot

__all__ = ["margin_loss"]


def margin_loss(logits: Tensor, labels, reduction: str = "mean") -> Tensor:
    """Carlini–Wagner margin: ``max_other_logit - true_logit``.

    Ascending this objective directly grows the gap between the best wrong
    class and the true class; its gradient does not vanish when the model
    is confidently correct, unlike cross-entropy's.

    Parameters
    ----------
    logits:
        ``(N, C)`` raw scores.
    labels:
        ``(N,)`` integer true classes (or targets, for targeted attacks —
        descending the margin of the target class is then the objective).
    """
    logits = as_tensor(logits)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
    labels = np.asarray(
        labels.data if isinstance(labels, Tensor) else labels
    ).astype(np.int64)
    n, c = logits.shape
    target_mask = one_hot(labels, c)
    true_logit = (logits * Tensor(target_mask)).sum(axis=1)
    # Exclude the true class from the max by pushing it to -inf-ish.
    penalty = Tensor(target_mask * 1e9)
    best_other = (logits - penalty).max(axis=1)
    margin = best_other - true_logit
    if reduction == "mean":
        return margin.mean()
    if reduction == "sum":
        return margin.sum()
    if reduction == "none":
        return margin
    raise ValueError(
        f"unknown reduction {reduction!r}; choose 'mean', 'sum' or 'none'"
    )
