"""Momentum Iterative Method (Dong et al., 2018).

Accumulates a decayed running average of normalized gradients, stabilising
the update direction across iterations.  On the attack engine this is BIM
with the step rule swapped for
:class:`~repro.attacks.loop.MomentumSignStep`.
"""

from __future__ import annotations

from typing import Optional

from .bim import BIM
from .loop import MomentumSignStep

__all__ = ["MIM"]


class MIM(BIM):
    """BIM with gradient momentum.

    Parameters
    ----------
    decay:
        Momentum decay factor (``mu`` in the paper; 1.0 is standard).
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        decay: float = 1.0,
        **kwargs,
    ) -> None:
        if decay < 0:
            raise ValueError(f"decay must be non-negative, got {decay}")
        super().__init__(
            model, epsilon, num_steps=num_steps, step_size=step_size, **kwargs
        )
        self.decay = float(decay)

    def _make_rule(self):
        return MomentumSignStep(self.step_size, self.decay)
