"""Momentum Iterative Method (Dong et al., 2018).

Accumulates a decayed running average of normalized gradients, stabilising
the update direction across iterations.  Included as an additional
iterative attack for evaluating transfer/robustness beyond BIM.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..runtime import ensure_float_array
from .base import clip_to_box, project_linf
from .bim import BIM

__all__ = ["MIM"]


class MIM(BIM):
    """BIM with gradient momentum.

    Parameters
    ----------
    decay:
        Momentum decay factor (``mu`` in the paper; 1.0 is standard).
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        decay: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(
            model, epsilon, num_steps=num_steps, step_size=step_size, **kwargs
        )
        if decay < 0:
            raise ValueError(f"decay must be non-negative, got {decay}")
        self.decay = float(decay)

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``."""
        self._validate(x, y)
        x = ensure_float_array(x)
        x_adv = x.copy()
        momentum = np.zeros_like(x)
        for _ in range(self.num_steps):
            grad = self.input_gradient(x_adv, y)
            # Normalise by mean absolute value per example (l1 normalisation).
            flat = np.abs(grad).reshape(len(grad), -1).mean(axis=1)
            flat = np.maximum(flat, 1e-12).reshape(
                (-1,) + (1,) * (grad.ndim - 1)
            )
            momentum = self.decay * momentum + grad / flat
            moved = (
                x_adv
                + self.loss_direction() * self.step_size * np.sign(momentum)
            )
            x_adv = clip_to_box(
                project_linf(moved, x, self.epsilon),
                self.clip_min,
                self.clip_max,
            )
        return x_adv
