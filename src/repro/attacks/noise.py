"""Random-noise baseline "attack".

Uniform noise at the same l_inf budget as the gradient attacks.  Useful as
a sanity baseline: a robust model should lose almost no accuracy to noise,
and any gradient attack should be strictly stronger.
"""

from __future__ import annotations

import numpy as np

from ..runtime import ensure_float_array
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import check_positive
from .base import Attack, clip_to_box

__all__ = ["RandomNoise"]


class RandomNoise(Attack):
    """Uniform l_inf noise of radius ``epsilon`` (no gradients used)."""

    def __init__(
        self, model, epsilon: float, rng: RngLike = None, **kwargs
    ) -> None:
        super().__init__(model, **kwargs)
        check_positive("epsilon", epsilon)
        self.epsilon = float(epsilon)
        self._rng = ensure_rng(rng)

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``."""
        self._validate(x, y)
        x = ensure_float_array(x)
        noise = self._rng.uniform(
            -self.epsilon, self.epsilon, size=x.shape
        ).astype(x.dtype, copy=False)
        return clip_to_box(x + noise, self.clip_min, self.clip_max)
