"""Random-noise baseline "attack".

Uniform noise at the same l_inf budget as the gradient attacks.  Useful as
a sanity baseline: a robust model should lose almost no accuracy to noise,
and any gradient attack should be strictly stronger.  On the attack engine
this is the degenerate composition: a random initializer and zero steps.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import check_positive
from .base import Attack
from .loop import AttackLoop, UniformLinfInit

__all__ = ["RandomNoise"]


class RandomNoise(Attack):
    """Uniform l_inf noise of radius ``epsilon`` (no gradients used)."""

    def __init__(
        self, model, epsilon: float, rng: RngLike = None, **kwargs
    ) -> None:
        super().__init__(model, **kwargs)
        check_positive("epsilon", epsilon)
        self.epsilon = float(epsilon)
        self._rng = ensure_rng(rng)
        self._loop = AttackLoop(
            model,
            step_fn=None,
            num_steps=0,
            initializer=UniformLinfInit(
                self.epsilon, self._rng, self.clip_min, self.clip_max
            ),
        )

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``."""
        x, y = self._validate(x, y)
        return self._loop.run(x, y)
