"""Projected Gradient Descent (Madry et al., 2017): BIM + random start."""

from __future__ import annotations

from typing import Optional

from ..utils.rng import RngLike, ensure_rng
from .bim import BIM
from .loop import UniformLinfInit, zero_init

__all__ = ["PGD"]


class PGD(BIM):
    """BIM with a uniform random start inside the l_inf ball.

    The random start makes PGD a slightly stronger attack than BIM at
    identical step counts; it is included as the standard extension the
    paper's future-work section points toward ("more experiments to get
    deeper understanding of Single-Adv and Iter-Adv").

    On the attack engine this is BIM with the initializer swapped for
    :class:`~repro.attacks.loop.UniformLinfInit`, plus optional
    multi-restart (each extra restart re-attacks only the examples the
    previous runs failed to fool, from a fresh random start).

    Parameters
    ----------
    rng:
        Seed or generator for the random start.
    random_start:
        Disable to recover plain BIM behaviour.
    restarts:
        Number of random restarts (1 = classic PGD).
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        rng: RngLike = None,
        random_start: bool = True,
        restarts: int = 1,
        **kwargs,
    ) -> None:
        if restarts < 1:
            raise ValueError(f"restarts must be at least 1, got {restarts}")
        super().__init__(
            model, epsilon, num_steps=num_steps, step_size=step_size, **kwargs
        )
        self.random_start = random_start
        self.restarts = int(restarts)
        self._rng = ensure_rng(rng)

    def _make_initializer(self):
        if not self.random_start:
            return zero_init
        return UniformLinfInit(
            self.epsilon, self._rng, self.clip_min, self.clip_max
        )

    def _restarts(self) -> int:
        return self.restarts
