"""Projected Gradient Descent (Madry et al., 2017): BIM + random start."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..runtime import ensure_float_array
from ..utils.rng import RngLike, ensure_rng
from .base import clip_to_box
from .bim import BIM

__all__ = ["PGD"]


class PGD(BIM):
    """BIM with a uniform random start inside the l_inf ball.

    The random start makes PGD a slightly stronger attack than BIM at
    identical step counts; it is included as the standard extension the
    paper's future-work section points toward ("more experiments to get
    deeper understanding of Single-Adv and Iter-Adv").

    Parameters
    ----------
    rng:
        Seed or generator for the random start.
    random_start:
        Disable to recover plain BIM behaviour.
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        rng: RngLike = None,
        random_start: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(
            model, epsilon, num_steps=num_steps, step_size=step_size, **kwargs
        )
        self.random_start = random_start
        self._rng = ensure_rng(rng)

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``. Starts from a random point in the ball."""
        self._validate(x, y)
        x = ensure_float_array(x)
        if self.random_start:
            noise = self._rng.uniform(
                -self.epsilon, self.epsilon, size=x.shape
            ).astype(x.dtype, copy=False)
            x_adv = clip_to_box(x + noise, self.clip_min, self.clip_max)
        else:
            x_adv = x.copy()
        for _ in range(self.num_steps):
            x_adv = self.step(x_adv, x, y)
        return x_adv
