"""PGD under the l2 norm — extension beyond the paper's l_inf threat model.

The paper's attacks are all l_inf; an l2 variant is the standard companion
threat model and exercises a different projection geometry (hypersphere
instead of hypercube).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..runtime import ensure_float_array
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import check_positive
from .base import Attack, clip_to_box

__all__ = ["PGDL2", "project_l2"]


def project_l2(
    x_adv: np.ndarray, x_orig: np.ndarray, epsilon: float
) -> np.ndarray:
    """Project per-example perturbations onto the l2 ball of radius eps."""
    delta = x_adv - x_orig
    flat = delta.reshape(len(delta), -1)
    norms = np.linalg.norm(flat, axis=1)
    factors = np.ones_like(norms)
    over = norms > epsilon
    factors[over] = epsilon / norms[over]
    flat = flat * factors[:, None]
    return x_orig + flat.reshape(delta.shape)


def _normalize_l2(grad: np.ndarray) -> np.ndarray:
    """Scale each example's gradient to unit l2 norm."""
    flat = grad.reshape(len(grad), -1)
    norms = np.maximum(np.linalg.norm(flat, axis=1), 1e-12)
    return (flat / norms[:, None]).reshape(grad.shape)


class PGDL2(Attack):
    """Projected gradient descent on the l2 ball.

    Parameters
    ----------
    epsilon:
        l2 radius of the perturbation ball.
    num_steps:
        Gradient steps.
    step_size:
        l2 length of each step; defaults to ``2.5 * epsilon / num_steps``
        (the standard heuristic that lets the iterate traverse the ball).
    rng, random_start:
        Uniform random start inside the ball (Gaussian direction, scaled).
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        rng: RngLike = None,
        random_start: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(model, **kwargs)
        check_positive("epsilon", epsilon)
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        self.epsilon = float(epsilon)
        self.num_steps = int(num_steps)
        self.step_size = (
            float(step_size)
            if step_size is not None
            else 2.5 * self.epsilon / self.num_steps
        )
        check_positive("step_size", self.step_size)
        self.random_start = random_start
        self._rng = ensure_rng(rng)

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``."""
        self._validate(x, y)
        x = ensure_float_array(x)
        if self.random_start:
            direction = self._rng.normal(size=x.shape).astype(
                x.dtype, copy=False
            )
            direction = _normalize_l2(direction)
            radii = (
                self.epsilon
                * self._rng.uniform(
                    0, 1, size=(len(x),) + (1,) * (x.ndim - 1)
                )
                ** (1.0 / x[0].size)
            ).astype(x.dtype, copy=False)
            x_adv = clip_to_box(
                x + direction * radii, self.clip_min, self.clip_max
            )
        else:
            x_adv = x.copy()
        for _ in range(self.num_steps):
            grad = self.input_gradient(x_adv, y)
            step = (
                self.loss_direction()
                * self.step_size
                * _normalize_l2(grad)
            )
            x_adv = project_l2(x_adv + step, x, self.epsilon)
            x_adv = clip_to_box(x_adv, self.clip_min, self.clip_max)
        return x_adv
