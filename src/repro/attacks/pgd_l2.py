"""PGD under the l2 norm — extension beyond the paper's l_inf threat model.

The paper's attacks are all l_inf; an l2 variant is the standard companion
threat model and exercises a different projection geometry (hypersphere
instead of hypercube).  On the attack engine the whole difference is three
swapped pieces: the :class:`~repro.attacks.loop.UniformL2Init`
initializer, the :class:`~repro.attacks.loop.L2NormalizedStep` rule and
the :class:`~repro.attacks.loop.L2BoxProjection`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import check_positive
from .bim import BIM
from .loop import (
    L2BoxProjection,
    L2NormalizedStep,
    UniformL2Init,
    zero_init,
)

__all__ = ["PGDL2", "project_l2"]


def project_l2(
    x_adv: np.ndarray, x_orig: np.ndarray, epsilon: float
) -> np.ndarray:
    """Project per-example perturbations onto the l2 ball of radius eps."""
    delta = x_adv - x_orig
    flat = delta.reshape(len(delta), -1)
    norms = np.linalg.norm(flat, axis=1)
    factors = np.ones_like(norms)
    over = norms > epsilon
    factors[over] = epsilon / norms[over]
    flat = flat * factors[:, None]
    return x_orig + flat.reshape(delta.shape)


class PGDL2(BIM):
    """Projected gradient descent on the l2 ball.

    Parameters
    ----------
    epsilon:
        l2 radius of the perturbation ball.
    num_steps:
        Gradient steps.
    step_size:
        l2 length of each step; defaults to ``2.5 * epsilon / num_steps``
        (the standard heuristic that lets the iterate traverse the ball).
    rng, random_start:
        Uniform random start inside the ball (Gaussian direction, scaled).
    restarts:
        Number of random restarts (1 = classic behaviour).
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        rng: RngLike = None,
        random_start: bool = True,
        restarts: int = 1,
        **kwargs,
    ) -> None:
        check_positive("epsilon", epsilon)
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if restarts < 1:
            raise ValueError(f"restarts must be at least 1, got {restarts}")
        super().__init__(
            model,
            epsilon,
            num_steps=num_steps,
            step_size=(
                float(step_size)
                if step_size is not None
                else 2.5 * float(epsilon) / int(num_steps)
            ),
            **kwargs,
        )
        self.random_start = random_start
        self.restarts = int(restarts)
        self._rng = ensure_rng(rng)

    def _make_rule(self):
        return L2NormalizedStep(self.step_size)

    def _make_projection(self):
        return L2BoxProjection(self.epsilon, self.clip_min, self.clip_max)

    def _make_initializer(self):
        if not self.random_start:
            return zero_init
        return UniformL2Init(
            self.epsilon, self._rng, self.clip_min, self.clip_max
        )

    def _restarts(self) -> int:
        return self.restarts
