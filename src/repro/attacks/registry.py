"""Canonical attack registry and ``name:param=value`` spec grammar.

Every layer that names attacks — the defense trainers, the robustness and
transfer evaluators, the experiment runners, the benchmarks and the CLI —
resolves them here, through one table.  Before this registry existed the
same names were spelled three slightly different ways (``attacks/__init__``
exports, ``defenses/registry`` row names, ad-hoc constructor calls); now a
single spec string builds any attack against any model:

* ``"fgsm"`` — canonical name, library defaults;
* ``"bim:num_steps=30"`` — parameters after a colon, comma-separated;
* ``"pgd:num_steps=10,restarts=3,rng=0"`` — ints, floats and booleans are
  coerced automatically;
* ``"bim10"`` / ``"bim30"`` — paper-style aliases (Table I columns);
* ``"clean"`` / ``"none"`` — the no-attack baseline (resolves to ``None``,
  which evaluators treat as clean accuracy).

``epsilon`` deserves a note: most attacks require a budget, but the right
value is experiment-wide (0.25 digits / 0.2 fashion), so ``build_attack``
accepts it as a keyword default that a spec's explicit ``epsilon=...``
overrides.  Attacks that take no budget (DeepFool) simply never receive
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .base import Attack
from .bim import BIM
from .deepfool import DeepFool
from .fgsm import FGSM
from .mim import MIM
from .noise import RandomNoise
from .pgd import PGD
from .pgd_l2 import PGDL2
from .spsa import SPSA

__all__ = [
    "AttackSpec",
    "register_attack",
    "attack_names",
    "canonical_attack_name",
    "parse_attack_spec",
    "build_attack",
]

# Spec names that mean "no attack" (clean evaluation).
_CLEAN_NAMES = ("clean", "none", "original")


@dataclass(frozen=True)
class AttackSpec:
    """A parsed ``name:param=value,...`` attack specification."""

    name: str
    params: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Back to spec-string form (canonical name, sorted params)."""
        if not self.params:
            return self.name
        body = ",".join(
            f"{key}={value}" for key, value in sorted(self.params.items())
        )
        return f"{self.name}:{body}"


@dataclass(frozen=True)
class _Entry:
    cls: type
    needs_epsilon: bool = True
    defaults: Tuple[Tuple[str, object], ...] = ()


_REGISTRY: Dict[str, _Entry] = {}
_ALIASES: Dict[str, AttackSpec] = {}


def register_attack(
    name: str,
    cls: type,
    *,
    needs_epsilon: bool = True,
    **defaults,
) -> type:
    """Register an attack class under a canonical name.

    ``defaults`` are constructor keywords applied before any spec params;
    use :func:`register_alias` for parameterised shorthands instead.
    """
    key = name.strip().lower()
    _REGISTRY[key] = _Entry(
        cls, needs_epsilon=needs_epsilon, defaults=tuple(defaults.items())
    )
    return cls


def register_alias(alias: str, spec: str) -> None:
    """Register a shorthand that expands to a full spec string."""
    _ALIASES[alias.strip().lower()] = parse_attack_spec(spec)


def attack_names() -> Tuple[str, ...]:
    """Canonical attack names, sorted (aliases not included)."""
    return tuple(sorted(_REGISTRY))


def canonical_attack_name(name: str) -> str:
    """Resolve a name or alias to its canonical registry name."""
    key = name.strip().lower()
    if key in _CLEAN_NAMES:
        return "clean"
    if key in _ALIASES:
        return _ALIASES[key].name
    if key in _REGISTRY:
        return key
    raise KeyError(
        f"unknown attack {name!r}; choose from "
        f"{attack_names() + tuple(sorted(_ALIASES)) + ('clean',)}"
    )


def _coerce(value: str):
    """Coerce a spec-string value: int, float, bool, None or str."""
    text = value.strip()
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_attack_spec(spec) -> AttackSpec:
    """Parse ``"name"`` or ``"name:key=value,key=value"`` into a spec.

    Already-parsed :class:`AttackSpec` instances pass through unchanged.
    """
    if isinstance(spec, AttackSpec):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"attack spec must be a non-empty string, got {spec!r}")
    name, _, body = spec.partition(":")
    name = name.strip().lower()
    params: Dict[str, object] = {}
    if body.strip():
        for item in body.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"malformed attack spec {spec!r}: expected "
                    f"'key=value', got {item!r}"
                )
            params[key] = _coerce(value)
    # Expand aliases, with spec params overriding alias params.
    if name in _ALIASES:
        alias = _ALIASES[name]
        merged = dict(alias.params)
        merged.update(params)
        return AttackSpec(alias.name, merged)
    return AttackSpec(name, params)


def build_attack(
    spec,
    model,
    *,
    epsilon: Optional[float] = None,
    **overrides,
) -> Optional[Attack]:
    """Construct the attack a spec describes, bound to ``model``.

    Parameters
    ----------
    spec:
        Spec string, alias, or :class:`AttackSpec`.
    model:
        Victim classifier the attack is bound to.
    epsilon:
        Experiment-wide budget, used when the attack needs one and the
        spec does not name it explicitly.
    overrides:
        Extra constructor keywords (e.g. ``loss_fn=margin_loss``); spec
        params take precedence over these.

    Returns ``None`` for the clean/no-attack spec, matching the evaluator
    convention that a ``None`` attack means clean accuracy.
    """
    parsed = parse_attack_spec(spec)
    if parsed.name in _CLEAN_NAMES:
        return None
    try:
        entry = _REGISTRY[parsed.name]
    except KeyError:
        raise KeyError(
            f"unknown attack {parsed.name!r}; choose from "
            f"{attack_names() + tuple(sorted(_ALIASES)) + ('clean',)}"
        ) from None
    kwargs: Dict[str, object] = dict(entry.defaults)
    kwargs.update(overrides)
    kwargs.update(parsed.params)
    if entry.needs_epsilon:
        budget = kwargs.pop("epsilon", None)
        if budget is None:
            budget = epsilon
        if budget is None:
            raise ValueError(
                f"attack {parsed.name!r} needs an epsilon; pass it in the "
                f"spec ('{parsed.name}:epsilon=0.25') or as a keyword"
            )
        return entry.cls(model, budget, **kwargs)
    kwargs.pop("epsilon", None)
    return entry.cls(model, **kwargs)


# ----------------------------------------------------------------------
# The canonical table.
# ----------------------------------------------------------------------
register_attack("fgsm", FGSM)
register_attack("bim", BIM)
register_attack("pgd", PGD)
register_attack("pgd_l2", PGDL2)
register_attack("mim", MIM)
register_attack("spsa", SPSA)
register_attack("deepfool", DeepFool, needs_epsilon=False)
register_attack("noise", RandomNoise)

register_alias("pgdl2", "pgd_l2")
register_alias("random_noise", "noise")
register_alias("bim10", "bim:num_steps=10")
register_alias("bim30", "bim:num_steps=30")
