"""SPSA attack (Uesato et al., 2018) — gradient-free l_inf attack.

Estimates the loss gradient with Simultaneous Perturbation Stochastic
Approximation: random Rademacher directions and finite differences of the
loss, no backpropagation.  Because it never touches the model's gradients,
SPSA penetrates gradient masking — it is the standard "is your white-box
robustness real?" cross-check and complements the diagnostics in
:mod:`repro.eval.diagnostics`.

On the attack engine this is simply BIM's composition with the backprop
estimator swapped for :class:`~repro.attacks.loop.SpsaGradient` — the
``GradientEstimator`` seam is exactly where white-box and black-box
attacks diverge.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import check_positive
from .bim import BIM
from .loop import LoopState, SpsaGradient

__all__ = ["SPSA"]


class SPSA(BIM):
    """Gradient-free l_inf attack via SPSA gradient estimation.

    Parameters
    ----------
    epsilon:
        l_inf budget.
    num_steps:
        Ascent steps.
    step_size:
        Per-step l_inf movement; defaults to ``epsilon / num_steps * 2``.
    samples:
        Rademacher direction pairs per gradient estimate (more = less
        noise = stronger attack, linearly more forward passes).
    delta:
        Finite-difference probe radius.
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: float = None,
        samples: int = 16,
        delta: float = 0.01,
        rng: RngLike = None,
        **kwargs,
    ) -> None:
        check_positive("epsilon", epsilon)
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        check_positive("delta", delta)
        super().__init__(
            model,
            epsilon,
            num_steps=num_steps,
            step_size=(
                float(step_size)
                if step_size is not None
                else 2.0 * float(epsilon) / int(num_steps)
            ),
            **kwargs,
        )
        self.samples = int(samples)
        self.delta = float(delta)
        self._rng = ensure_rng(rng)

    def _make_estimator(self):
        return SpsaGradient(
            self.model,
            self.loss_fn,
            samples=self.samples,
            delta=self.delta,
            rng=self._rng,
        )

    # ------------------------------------------------------------------
    # Thin delegates kept for diagnostics and backwards compatibility.
    # ------------------------------------------------------------------
    def _loss_values(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-example loss, computed without building a graph."""
        with no_grad():
            logits = self.model(Tensor(x))
            per_example = self.loss_fn(logits, y, reduction="none")
        return per_example.data

    def _estimate_gradient(
        self, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        return self._make_estimator()(x, y, LoopState())
