"""SPSA attack (Uesato et al., 2018) — gradient-free l_inf attack.

Estimates the loss gradient with Simultaneous Perturbation Stochastic
Approximation: random Rademacher directions and finite differences of the
loss, no backpropagation.  Because it never touches the model's gradients,
SPSA penetrates gradient masking — it is the standard "is your white-box
robustness real?" cross-check and complements the diagnostics in
:mod:`repro.eval.diagnostics`.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import cross_entropy
from ..runtime import ensure_float_array
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import check_positive
from .base import Attack, clip_to_box, project_linf

__all__ = ["SPSA"]


class SPSA(Attack):
    """Gradient-free l_inf attack via SPSA gradient estimation.

    Parameters
    ----------
    epsilon:
        l_inf budget.
    num_steps:
        Ascent steps.
    step_size:
        Per-step l_inf movement; defaults to ``epsilon / num_steps * 2``.
    samples:
        Rademacher direction pairs per gradient estimate (more = less
        noise = stronger attack, linearly more forward passes).
    delta:
        Finite-difference probe radius.
    """

    def __init__(
        self,
        model,
        epsilon: float,
        num_steps: int = 10,
        step_size: float = None,
        samples: int = 16,
        delta: float = 0.01,
        rng: RngLike = None,
        **kwargs,
    ) -> None:
        super().__init__(model, **kwargs)
        check_positive("epsilon", epsilon)
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        check_positive("delta", delta)
        self.epsilon = float(epsilon)
        self.num_steps = int(num_steps)
        self.step_size = (
            float(step_size)
            if step_size is not None
            else 2.0 * self.epsilon / self.num_steps
        )
        self.samples = int(samples)
        self.delta = float(delta)
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _loss_values(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-example loss, computed without building a graph."""
        with no_grad():
            logits = self.model(Tensor(x))
            per_example = cross_entropy(logits, y, reduction="none")
        return per_example.data

    def _estimate_gradient(
        self, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        estimate = np.zeros_like(x)
        for _ in range(self.samples):
            direction = self._rng.choice([-1.0, 1.0], size=x.shape).astype(
                x.dtype, copy=False
            )
            plus = self._loss_values(x + self.delta * direction, y)
            minus = self._loss_values(x - self.delta * direction, y)
            diff = (plus - minus) / (2.0 * self.delta)
            estimate += diff.reshape((-1,) + (1,) * (x.ndim - 1)) * direction
        return estimate / self.samples

    def generate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial examples for the batch ``(x, y)``. Uses only forward passes."""
        self._validate(x, y)
        x = ensure_float_array(x)
        x_adv = x.copy()
        for _ in range(self.num_steps):
            grad = self._estimate_gradient(x_adv, y)
            moved = (
                x_adv
                + self.loss_direction() * self.step_size * np.sign(grad)
            )
            x_adv = clip_to_box(
                project_linf(moved, x, self.epsilon),
                self.clip_min,
                self.clip_max,
            )
        return x_adv
