"""Reverse-mode automatic differentiation over numpy arrays.

The engine is the substrate everything else in :mod:`repro` builds on: the
NN library (:mod:`repro.nn`) uses it for parameter gradients, and the attacks
(:mod:`repro.attacks`) use it for input gradients — the key requirement of
FGSM/BIM-style adversarial example generation.

Public surface::

    from repro.autograd import Tensor, no_grad
    from repro import autograd as ag

    x = Tensor([[1.0, 2.0]], requires_grad=True)
    y = (x @ Tensor([[1.0], [3.0]])).relu().sum()
    y.backward()
    x.grad  # -> array([[1., 3.]])
"""

from .engine import (
    Function,
    Tensor,
    as_tensor,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from .grad_check import check_gradients, numerical_gradient
from .ops_basic import (
    abs_,
    add,
    clip,
    div,
    exp,
    log,
    maximum,
    minimum,
    mul,
    neg,
    pow_,
    sign,
    sqrt,
    sub,
    where,
)
from .ops_loss import softmax_cross_entropy
from .ops_nn import (
    avg_pool2d,
    conv2d,
    dropout_mask,
    leaky_relu,
    log_softmax,
    matmul,
    max_pool2d,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from .ops_reduce import logsumexp, max_, mean, min_, std, sum_, var
from .ops_shape import (
    broadcast_to,
    concat,
    flatten,
    getitem,
    pad,
    reshape,
    stack,
    transpose,
)
from .tape import CompiledStep, StepResult, TapeUnsupported

__all__ = [
    "Tensor",
    "Function",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "check_gradients",
    "numerical_gradient",
    # compiled tape
    "CompiledStep",
    "StepResult",
    "TapeUnsupported",
    # basic
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow_",
    "exp",
    "log",
    "sqrt",
    "abs_",
    "clip",
    "sign",
    "maximum",
    "minimum",
    "where",
    # nn
    "matmul",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "dropout_mask",
    # loss
    "softmax_cross_entropy",
    # reduce
    "sum_",
    "mean",
    "max_",
    "min_",
    "var",
    "std",
    "logsumexp",
    # shape
    "reshape",
    "transpose",
    "getitem",
    "concat",
    "stack",
    "pad",
    "broadcast_to",
    "flatten",
]
