"""im2col / col2im helpers used by the convolution and pooling kernels.

These are plain numpy routines (no autograd involvement).  Layout convention
throughout the project is NCHW: ``(batch, channels, height, width)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"window (kernel={kernel}, stride={stride}, padding={padding}) "
            f"does not fit input of size {size}"
        )
    return out


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)`` where each
    row is one receptive field.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        n * out_h * out_w, c * kernel_h * kernel_w
    )


def col2im(
    cols: np.ndarray,
    input_shape: tuple,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros(
        (n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype
    )
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
