"""im2col / col2im helpers used by the convolution and pooling kernels.

These are plain numpy routines (no autograd involvement).  Layout convention
throughout the project is NCHW: ``(batch, channels, height, width)``.

Two implementations live side by side, dispatched on the runtime hot-path
flag (:func:`repro.runtime.hotpaths_enabled`):

* the **fast** kernels gather patches through
  ``np.lib.stride_tricks.sliding_window_view`` (a zero-copy strided view;
  the only copy is the single C-level write into the column matrix) and
  draw the column/padded scratch buffers from the per-thread
  :class:`~repro.runtime.Workspace` pool so the identically-shaped
  per-batch buffers are reused across training steps;
* the **reference** kernels are the original kernel-position loops, kept
  both as the ground truth the fast path is tested against and as the
  pre-overhaul baseline the benchmark speedup gate times.

Buffer ownership: ``im2col`` returns a workspace-acquired buffer the
*caller* owns and should release once the columns are dead (see
:mod:`repro.runtime.workspace`).  ``col2im``'s result escapes into the
autograd engine as a gradient, so it is allocated normally; only its
internal padded scratch buffer is pooled.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..runtime import get_workspace, hotpaths_enabled

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "im2col_reference",
    "col2im_reference",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"window (kernel={kernel}, stride={stride}, padding={padding}) "
            f"does not fit input of size {size}"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    pad_value: float = 0.0,
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    pad_value:
        Fill value for the padded border (``0`` for convolution and average
        pooling; ``-inf`` for max pooling so padding can never win argmax).

    Returns
    -------
    Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)`` where each
    row is one receptive field.  On the hot path this is a workspace buffer
    owned by the caller.
    """
    if not hotpaths_enabled():
        return im2col_reference(x, kernel_h, kernel_w, stride, padding, pad_value)
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    ws = get_workspace()
    pad_buf = None
    if padding > 0:
        pad_buf = ws.acquire(
            (n, c, h + 2 * padding, w + 2 * padding), x.dtype
        )
        pad_buf.fill(pad_value)
        pad_buf[:, :, padding : padding + h, padding : padding + w] = x
        x = pad_buf
    # (N, C, H', W', kh, kw) strided view over every window start, then
    # subsampled to the stride grid — no data is copied until the final
    # gather below.
    windows = sliding_window_view(x, (kernel_h, kernel_w), axis=(2, 3))
    windows = windows[
        :,
        :,
        : (out_h - 1) * stride + 1 : stride,
        : (out_w - 1) * stride + 1 : stride,
    ]
    cols = ws.acquire((n * out_h * out_w, c * kernel_h * kernel_w), x.dtype)
    cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)[...] = (
        windows.transpose(0, 2, 3, 1, 4, 5)
    )
    if pad_buf is not None:
        ws.release(pad_buf)
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: tuple,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image."""
    if not hotpaths_enabled():
        return col2im_reference(
            cols, input_shape, kernel_h, kernel_w, stride, padding
        )
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
    ws = get_workspace()
    padded_h, padded_w = h + 2 * padding, w + 2 * padding
    if (
        stride == kernel_h == kernel_w
        and padded_h == out_h * stride
        and padded_w == out_w * stride
    ):
        # Non-overlapping windows that tile the (padded) image exactly —
        # the pooling layout.  The scatter-add degenerates to a pure
        # permutation, served by one strided assignment with no zero fill.
        if padding > 0:
            padded = ws.acquire((n, c, padded_h, padded_w), cols.dtype)
        else:
            # The accumulator itself escapes as the gradient, so it must
            # not come from (or return to) the pool.
            padded = np.empty((n, c, h, w), dtype=cols.dtype)
        padded.reshape(n, c, out_h, kernel_h, out_w, kernel_w)[...] = (
            cols.transpose(0, 3, 1, 4, 2, 5)
        )
        if padding > 0:
            out = np.empty((n, c, h, w), dtype=padded.dtype)
            out[...] = padded[:, :, padding:-padding, padding:-padding]
            ws.release(padded)
            return out
        return padded
    # General case: scatter-add in NHWC layout.  With channels innermost
    # both the (strided) destination window and the column slice touch
    # memory in near-contiguous runs, which is markedly faster than the
    # channels-first scatter the reference kernel uses.
    padded = ws.acquire((n, padded_h, padded_w, c), cols.dtype)
    padded.fill(0.0)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, i:i_max:stride, j:j_max:stride, :] += cols[:, :, :, :, i, j]
    if padding > 0:
        core = padded[:, padding:-padding, padding:-padding, :]
    else:
        core = padded
    out = np.empty((n, c, h, w), dtype=padded.dtype)
    out[...] = core.transpose(0, 3, 1, 2)
    ws.release(padded)
    return out


# ----------------------------------------------------------------------
# reference implementations (pre-overhaul kernels)
# ----------------------------------------------------------------------
def im2col_reference(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    pad_value: float = 0.0,
) -> np.ndarray:
    """Kernel-position-loop :func:`im2col` (ground truth / baseline)."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
            constant_values=pad_value,
        )
    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        n * out_h * out_w, c * kernel_h * kernel_w
    )


def col2im_reference(
    cols: np.ndarray,
    input_shape: tuple,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Kernel-position-loop :func:`col2im` (ground truth / baseline)."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros(
        (n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype
    )
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
