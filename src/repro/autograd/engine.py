"""Core reverse-mode automatic differentiation engine.

This module defines the two central abstractions of the autograd system:

``Tensor``
    A wrapper around a ``numpy.ndarray`` that records the operations applied
    to it so that gradients can later be propagated backwards through the
    resulting computation graph.

``Function``
    The base class for differentiable operations.  Each operation implements
    a static ``forward`` (computing the output value) and ``backward``
    (computing input gradients given the output gradient).

The design mirrors the tape-based approach used by mainstream deep-learning
frameworks: the graph is built dynamically while the forward computation
runs, and :meth:`Tensor.backward` performs a topological traversal of that
graph accumulating gradients.

Only ``Tensor`` and bookkeeping live here; the concrete differentiable
operations are defined in the ``ops_*`` modules of this package, which attach
operator overloads and methods onto ``Tensor`` at import time.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Optional, Sequence, Union

import numpy as np

from ..runtime import (
    accum_dtype,
    compute_dtype,
    get_workspace,
    hotpaths_enabled,
)

__all__ = [
    "Tensor",
    "Function",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "as_tensor",
    "active_tracer",
    "set_tracer",
]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


class _GradMode(threading.local):
    """Thread-local flag controlling whether operations are recorded."""

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


class _TracerState(threading.local):
    """Thread-local hook point for the compiled tape's tracer.

    While a tracer is installed, :meth:`Function.apply` reports every op it
    executes (``record_apply``) and :meth:`Tensor.backward` reports each ctx
    in the exact order the engine processes it (``record_backward``).  The
    eager computation itself is unchanged — tracing *is* an eager run plus
    observation, which is what makes the first compiled call bit-identical
    to eager by construction.  See :mod:`repro.autograd.tape`.
    """

    def __init__(self) -> None:
        self.active = None


_tracer_state = _TracerState()


def active_tracer():
    """The tracer currently observing this thread, or ``None``."""
    return _tracer_state.active


def set_tracer(tracer):
    """Install (or clear, with ``None``) the thread's tracer; returns previous."""
    previous = _tracer_state.active
    _tracer_state.active = tracer
    return previous


def is_grad_enabled() -> bool:
    """Return ``True`` when operations are currently being recorded."""
    return _grad_mode.enabled


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable gradient recording for this thread."""
    _grad_mode.enabled = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used for evaluation loops and for the non-differentiable bookkeeping
    inside attacks (e.g. applying the sign of a gradient), where building a
    graph would only waste memory.
    """
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


class Function:
    """Base class for differentiable operations.

    Subclasses implement::

        @staticmethod
        def forward(ctx, *array_args, **kwargs) -> np.ndarray

        @staticmethod
        def backward(ctx, grad_output) -> tuple[np.ndarray | None, ...]

    ``forward`` receives raw numpy arrays (positional tensor inputs are
    unwrapped) and may stash values needed for the backward pass via
    ``ctx.save_for_backward``/attributes on ``ctx``.  ``backward`` must
    return one gradient (or ``None``) per positional input of ``forward``.
    """

    def __init__(self) -> None:
        self.saved: tuple = ()
        self.inputs: tuple = ()
        self.needs_input_grad: tuple = ()

    def save_for_backward(self, *values) -> None:
        """Stash arbitrary values for use in :meth:`backward`."""
        self.saved = values

    def needs(self, position: int) -> bool:
        """Whether the input at ``position`` needs its gradient computed.

        Backwards use this to skip dead gradients (frozen parameters,
        constant operands, tape-DCE'd edges).  Defaults to ``True`` when
        the mask is unset — e.g. a backward invoked directly in a test —
        so skipping is only ever an optimisation, never a behaviour
        change.
        """
        mask = self.needs_input_grad
        return mask[position] if position < len(mask) else True

    @staticmethod
    def forward(ctx: "Function", *args, **kwargs) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def backward(ctx: "Function", grad_output: np.ndarray):
        raise NotImplementedError

    @classmethod
    def apply(cls, *args, **kwargs) -> "Tensor":
        """Run ``forward`` and, when recording, hook the result into the graph.

        Positional arguments that are :class:`Tensor` instances participate in
        differentiation; everything else (ints, tuples, ...) is passed
        through untouched and receives no gradient.
        """
        ctx = cls()
        tensor_inputs = [a for a in args if isinstance(a, Tensor)]
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = cls.forward(ctx, *raw_args, **kwargs)
        requires = is_grad_enabled() and any(
            t.requires_grad for t in tensor_inputs
        )
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            ctx.inputs = tuple(args)
            ctx.needs_input_grad = tuple(
                isinstance(a, Tensor) and a.requires_grad for a in args
            )
            out._ctx = ctx
        tracer = _tracer_state.active
        if tracer is not None:
            if not requires:
                # The tape replays non-recorded ops too (e.g. under no_grad
                # sections of the step); give their ctx the same metadata a
                # recorded ctx would carry so replay can re-run forward.
                ctx.inputs = tuple(args)
                ctx.needs_input_grad = tuple(
                    isinstance(a, Tensor) and a.requires_grad for a in args
                )
            tracer.record_apply(cls, ctx, args, kwargs, out, requires)
        return out


class Tensor:
    """A numpy-backed array that supports reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray``.  Floating point data is
        kept at its own precision; integer input used in differentiable
        contexts is promoted by ``as_tensor`` to the compute dtype of the
        active :mod:`repro.runtime` precision policy.
    requires_grad:
        When ``True``, operations involving this tensor are recorded and
        :meth:`backward` will populate :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_ctx")

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if requires_grad and not np.issubdtype(arr.dtype, np.floating):
            raise TypeError(
                "only floating point tensors can require gradients, "
                f"got dtype {arr.dtype}"
            )
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._ctx: Optional[Function] = None

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        """Numpy dtype of the underlying array."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transposed view (reversed axes)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python scalar."""
        return self.data.item()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a graph-detached deep copy of this tensor."""
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Return a graph-detached cast of this tensor."""
        return Tensor(self.data.astype(dtype), requires_grad=False)

    # ------------------------------------------------------------------
    # gradient machinery
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate through the graph rooted at this tensor.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            Defaults to ``1`` which is only valid for scalar tensors (the
            common "loss.backward()" case).
        """
        if not self.requires_grad:
            raise RuntimeError(
                "backward() called on a tensor that does not require grad"
            )
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "grad must be provided for non-scalar tensors"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad.data if isinstance(grad, Tensor) else grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor "
                    f"shape {self.data.shape}"
                )

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        # Ids of accumulation buffers this traversal allocated itself.  Only
        # those may be mutated in place or recycled through the workspace:
        # arrays returned by a Function.backward may alias its saved state
        # or be shared between several of its inputs.
        owned: set[int] = set()
        hot = hotpaths_enabled()
        workspace = get_workspace()
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node_owned = id(node_grad) in owned
            owned.discard(id(node_grad))
            if node.requires_grad and node._ctx is None:
                # Leaf: accumulate into .grad in the policy's accum dtype.
                if node.grad is None:
                    acc = accum_dtype()
                    if node_owned and node_grad.dtype == acc:
                        # Donate the engine-owned buffer instead of copying.
                        node.grad = node_grad
                    else:
                        node.grad = node_grad.astype(acc, copy=True)
                        if node_owned:
                            workspace.release(node_grad)
                else:
                    existing = node.grad
                    if (
                        hot
                        and np.result_type(existing.dtype, node_grad.dtype)
                        == existing.dtype
                    ):
                        np.add(existing, node_grad, out=existing)
                    else:
                        node.grad = existing + node_grad
                    if node_owned:
                        workspace.release(node_grad)
                continue
            ctx = node._ctx
            if ctx is None:
                continue
            tracer = _tracer_state.active
            if tracer is not None:
                tracer.record_backward(ctx)
            input_grads = ctx.backward(ctx, node_grad)
            if not isinstance(input_grads, tuple):
                input_grads = (input_grads,)
            if len(input_grads) != len(ctx.inputs):
                raise RuntimeError(
                    f"{type(ctx).__name__}.backward returned "
                    f"{len(input_grads)} gradients for {len(ctx.inputs)} "
                    "inputs"
                )
            stored: list[np.ndarray] = []
            for inp, g in zip(ctx.inputs, input_grads):
                if g is None or not isinstance(inp, Tensor):
                    continue
                if not inp.requires_grad:
                    continue
                g = np.asarray(g)
                if g.shape != inp.data.shape:
                    raise RuntimeError(
                        f"{type(ctx).__name__}.backward produced gradient "
                        f"of shape {g.shape} for input of shape "
                        f"{inp.data.shape}"
                    )
                key = id(inp)
                current = grads.get(key)
                if current is None:
                    grads[key] = g
                    stored.append(g)
                elif not hot:
                    grads[key] = current + g
                elif (
                    id(current) in owned
                    and np.result_type(current.dtype, g.dtype)
                    == current.dtype
                ):
                    np.add(current, g, out=current)
                elif current.dtype == g.dtype:
                    total = workspace.acquire(current.shape, current.dtype)
                    np.add(current, g, out=total)
                    grads[key] = total
                    owned.add(id(total))
                    stored.append(total)
                else:
                    total = current + g
                    grads[key] = total
                    owned.add(id(total))
                    stored.append(total)
            if node_owned and not any(
                s is node_grad or getattr(s, "base", None) is node_grad
                for s in stored
            ):
                # The consumed gradient buffer was engine-allocated and did
                # not leak into any downstream gradient: recycle it.
                workspace.release(node_grad)

    # Operator overloads and math methods (add, matmul, sum, ...) are
    # attached by the ops modules; see ``repro.autograd.ops_basic`` etc.


def _topological_order(root: Tensor) -> list:
    """Return graph nodes reachable from ``root`` in reverse-topological order.

    Iterative (stack-based) depth-first search so that very deep graphs —
    e.g. many BIM iterations recorded in one graph — do not hit Python's
    recursion limit.
    """
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        if node._ctx is not None:
            for inp in node._ctx.inputs:
                if isinstance(inp, Tensor) and id(inp) not in visited:
                    stack.append((inp, False))
    order.reverse()
    return order


def as_tensor(value: ArrayLike, dtype=None) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor`.

    Existing tensors are returned as-is (unless a dtype cast is requested).
    Plain Python numbers and integer/bool arrays are promoted to the active
    policy's compute dtype so they can take part in differentiable
    arithmetic; floating arrays keep their own precision.  Converting
    scalars to the compute dtype (rather than numpy's float64 default) is
    what keeps expressions like ``x * 0.5`` from silently upcasting a
    float32 graph.
    """
    if isinstance(value, Tensor):
        if dtype is not None and value.dtype != np.dtype(dtype):
            return value.astype(dtype)
        return value
    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtype)
    elif not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(compute_dtype())
    elif arr.ndim == 0 and isinstance(value, float):
        # Python floats arrive as 0-d float64 arrays; treat them as "weak"
        # scalars that adopt the policy dtype instead of forcing promotion.
        arr = arr.astype(compute_dtype())
    return Tensor(arr)
