"""Numerical gradient checking for autograd functions.

Used heavily by the test-suite to validate every differentiable operation
against central finite differences.

Precision: central differences with ``eps ~ 1e-6`` are numerically
meaningless below float64, so checking is **pinned** to the active
policy's ``grad_check_dtype`` (float64 by default) regardless of the
compute dtype in effect — a float32 session still grad-checks in float64.
The pin is implemented by entering a nested :func:`repro.runtime.precision`
region and casting every input up front, so all intermediate tensors,
scalar promotions and gradient accumulations inside the check run at the
checking precision.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..runtime import Policy, active_policy, precision
from .engine import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def _check_policy() -> Policy:
    """The pinned-precision policy used for the duration of a check."""
    dtype = active_policy().grad_check_dtype
    return Policy(compute_dtype=dtype, accum_dtype=dtype, grad_check_dtype=dtype)


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping tensors to a tensor.
    inputs:
        All tensor inputs of ``fn``.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step.
    """
    policy = _check_policy()
    with precision(policy):
        target = inputs[index]
        grad = np.zeros_like(target.data, dtype=policy.compute_dtype)
        flat = target.data.reshape(-1)
        grad_flat = grad.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = float(fn(*inputs).data.sum())
            flat[i] = original - eps
            minus = float(fn(*inputs).data.sum())
            flat[i] = original
            grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-6,
) -> None:
    """Assert that autograd gradients of ``fn`` match finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    policy = _check_policy()
    with precision(policy):
        inputs = [
            t if isinstance(t, Tensor) else Tensor(np.asarray(t))
            for t in inputs
        ]
        # Cast up-front so perturbing single elements (numerical_gradient
        # writes through .reshape(-1)) happens at checking precision.
        inputs = [
            t if t.dtype == policy.compute_dtype
            else Tensor(t.data.astype(policy.compute_dtype))
            for t in inputs
        ]
        for t in inputs:
            t.requires_grad = True
            t.zero_grad()
        out = fn(*inputs)
        out.sum().backward()
        for i, t in enumerate(inputs):
            expected = numerical_gradient(fn, inputs, i, eps=eps)
            actual = t.grad if t.grad is not None else np.zeros_like(t.data)
            if not np.allclose(actual, expected, atol=atol, rtol=rtol):
                worst = np.max(np.abs(actual - expected))
                raise AssertionError(
                    f"gradient mismatch for input {i}: "
                    f"max abs error {worst:.3e}\n"
                    f"analytic:\n{actual}\nnumeric:\n{expected}"
                )
