"""Numerical gradient checking for autograd functions.

Used heavily by the test-suite to validate every differentiable operation
against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .engine import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping tensors to a tensor.
    inputs:
        All tensor inputs of ``fn``.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-6,
) -> None:
    """Assert that autograd gradients of ``fn`` match finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    inputs = [
        t if isinstance(t, Tensor) else Tensor(np.asarray(t, dtype=np.float64))
        for t in inputs
    ]
    for t in inputs:
        t.requires_grad = True
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, t in enumerate(inputs):
        expected = numerical_gradient(fn, inputs, i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.max(np.abs(actual - expected))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{actual}\nnumeric:\n{expected}"
            )
