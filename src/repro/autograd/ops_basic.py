"""Elementwise arithmetic operations with broadcasting-aware gradients.

Importing this module attaches the standard Python operator overloads
(``+``, ``-``, ``*``, ``/``, ``**``, unary ``-``) and elementwise math
methods (``exp``, ``log``, ``sqrt``, ...) onto :class:`~repro.autograd.Tensor`.
"""

from __future__ import annotations

import numpy as np

from .engine import Function, Tensor, as_tensor

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow_",
    "exp",
    "log",
    "sqrt",
    "abs_",
    "clip",
    "sign",
    "maximum",
    "minimum",
    "where",
]


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting in the forward pass implicitly replicates values; the
    corresponding adjoint operation is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(
        i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Add(Function):
    """Elementwise addition with broadcasting."""
    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a.shape, b.shape)
        return a + b

    @staticmethod
    def backward(ctx, grad_output):
        a_shape, b_shape = ctx.saved
        return (
            unbroadcast(grad_output, a_shape) if ctx.needs(0) else None,
            unbroadcast(grad_output, b_shape) if ctx.needs(1) else None,
        )


class Sub(Function):
    """Elementwise subtraction with broadcasting."""
    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a.shape, b.shape)
        return a - b

    @staticmethod
    def backward(ctx, grad_output):
        a_shape, b_shape = ctx.saved
        return (
            unbroadcast(grad_output, a_shape) if ctx.needs(0) else None,
            unbroadcast(-grad_output, b_shape) if ctx.needs(1) else None,
        )


class Mul(Function):
    """Elementwise multiplication with broadcasting."""
    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a, b)
        return a * b

    @staticmethod
    def backward(ctx, grad_output):
        a, b = ctx.saved
        return (
            unbroadcast(grad_output * b, a.shape) if ctx.needs(0) else None,
            unbroadcast(grad_output * a, b.shape) if ctx.needs(1) else None,
        )


class Div(Function):
    """Elementwise division with broadcasting."""
    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a, b)
        return a / b

    @staticmethod
    def backward(ctx, grad_output):
        a, b = ctx.saved
        return (
            unbroadcast(grad_output / b, a.shape) if ctx.needs(0) else None,
            unbroadcast(-grad_output * a / (b * b), b.shape)
            if ctx.needs(1) else None,
        )


class Neg(Function):
    """Elementwise negation."""
    @staticmethod
    def forward(ctx, a):
        return -a

    @staticmethod
    def backward(ctx, grad_output):
        return (-grad_output,)


class Pow(Function):
    """Elementwise power with a constant exponent."""
    @staticmethod
    def forward(ctx, a, exponent):
        ctx.save_for_backward(a, exponent)
        return a ** exponent

    @staticmethod
    def backward(ctx, grad_output):
        a, exponent = ctx.saved
        if not ctx.needs(0):
            return (None, None)
        return (grad_output * exponent * a ** (exponent - 1), None)


class Exp(Function):
    """Elementwise exponential."""
    @staticmethod
    def forward(ctx, a):
        out = np.exp(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        (out,) = ctx.saved
        return (grad_output * out,)


class Log(Function):
    """Elementwise natural logarithm."""
    @staticmethod
    def forward(ctx, a):
        ctx.save_for_backward(a)
        return np.log(a)

    @staticmethod
    def backward(ctx, grad_output):
        (a,) = ctx.saved
        return (grad_output / a,)


class Sqrt(Function):
    """Elementwise square root."""
    @staticmethod
    def forward(ctx, a):
        out = np.sqrt(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        (out,) = ctx.saved
        return (grad_output / (2.0 * out),)


class Abs(Function):
    """Elementwise absolute value (sign subgradient at 0)."""
    @staticmethod
    def forward(ctx, a):
        ctx.save_for_backward(np.sign(a))
        return np.abs(a)

    @staticmethod
    def backward(ctx, grad_output):
        (sgn,) = ctx.saved
        return (grad_output * sgn,)


class Clip(Function):
    """Elementwise clamp; gradient flows only through the interior."""

    @staticmethod
    def forward(ctx, a, low, high):
        mask = (a >= low) & (a <= high)
        ctx.save_for_backward(mask)
        return np.clip(a, low, high)

    @staticmethod
    def backward(ctx, grad_output):
        (mask,) = ctx.saved
        return (grad_output * mask, None, None)


class Maximum(Function):
    """Elementwise maximum; ties route gradient to the first arg."""
    @staticmethod
    def forward(ctx, a, b):
        mask = a >= b
        ctx.save_for_backward(mask, a.shape, b.shape)
        return np.maximum(a, b)

    @staticmethod
    def backward(ctx, grad_output):
        mask, a_shape, b_shape = ctx.saved
        return (
            unbroadcast(grad_output * mask, a_shape) if ctx.needs(0) else None,
            unbroadcast(grad_output * ~mask, b_shape)
            if ctx.needs(1) else None,
        )


class Minimum(Function):
    """Elementwise minimum; ties route gradient to the first arg."""
    @staticmethod
    def forward(ctx, a, b):
        mask = a <= b
        ctx.save_for_backward(mask, a.shape, b.shape)
        return np.minimum(a, b)

    @staticmethod
    def backward(ctx, grad_output):
        mask, a_shape, b_shape = ctx.saved
        return (
            unbroadcast(grad_output * mask, a_shape) if ctx.needs(0) else None,
            unbroadcast(grad_output * ~mask, b_shape)
            if ctx.needs(1) else None,
        )


class Where(Function):
    """``where(condition, a, b)``; the condition is non-differentiable."""

    @staticmethod
    def forward(ctx, condition, a, b):
        cond = condition.astype(bool)
        ctx.save_for_backward(cond, a.shape, b.shape)
        return np.where(cond, a, b)

    @staticmethod
    def backward(ctx, grad_output):
        cond, a_shape, b_shape = ctx.saved
        return (
            None,
            unbroadcast(grad_output * cond, a_shape) if ctx.needs(1) else None,
            unbroadcast(grad_output * ~cond, b_shape)
            if ctx.needs(2) else None,
        )


# ----------------------------------------------------------------------
# public functional API
# ----------------------------------------------------------------------
def add(a, b):
    """Elementwise ``a + b`` with broadcasting."""
    return Add.apply(as_tensor(a), as_tensor(b))


def sub(a, b):
    """Elementwise ``a - b`` with broadcasting."""
    return Sub.apply(as_tensor(a), as_tensor(b))


def mul(a, b):
    """Elementwise ``a * b`` with broadcasting."""
    return Mul.apply(as_tensor(a), as_tensor(b))


def div(a, b):
    """Elementwise ``a / b`` with broadcasting."""
    return Div.apply(as_tensor(a), as_tensor(b))


def neg(a):
    """Elementwise ``-a``."""
    return Neg.apply(as_tensor(a))


def pow_(a, exponent):
    """Elementwise ``a ** exponent`` for a constant exponent."""
    if isinstance(exponent, Tensor):
        raise TypeError("tensor exponents are not supported; use exp/log")
    return Pow.apply(as_tensor(a), exponent)


def exp(a):
    """Elementwise ``exp(a)``."""
    return Exp.apply(as_tensor(a))


def log(a):
    """Elementwise natural log of ``a``."""
    return Log.apply(as_tensor(a))


def sqrt(a):
    """Elementwise square root of ``a``."""
    return Sqrt.apply(as_tensor(a))


def abs_(a):
    """Elementwise absolute value of ``a``."""
    return Abs.apply(as_tensor(a))


def clip(a, low, high):
    """Differentiable clamp of ``a`` into ``[low, high]``."""
    return Clip.apply(as_tensor(a), float(low), float(high))


def sign(a) -> Tensor:
    """Elementwise sign.  Non-differentiable: the result is detached."""
    a = as_tensor(a)
    return Tensor(np.sign(a.data))


def maximum(a, b):
    """Elementwise maximum of two tensors."""
    return Maximum.apply(as_tensor(a), as_tensor(b))


def minimum(a, b):
    """Elementwise minimum of two tensors."""
    return Minimum.apply(as_tensor(a), as_tensor(b))


def where(condition, a, b):
    """Elementwise select: ``a`` where condition else ``b``."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    # The condition is a non-differentiable mask; keep it boolean so the
    # backward multiply never promotes the value operands' dtype.
    return Where.apply(Tensor(cond.astype(bool)), as_tensor(a), as_tensor(b))


# ----------------------------------------------------------------------
# operator overloads on Tensor
# ----------------------------------------------------------------------
Tensor.__add__ = add
Tensor.__radd__ = lambda self, other: add(other, self)
Tensor.__sub__ = sub
Tensor.__rsub__ = lambda self, other: sub(other, self)
Tensor.__mul__ = mul
Tensor.__rmul__ = lambda self, other: mul(other, self)
Tensor.__truediv__ = div
Tensor.__rtruediv__ = lambda self, other: div(other, self)
Tensor.__neg__ = neg
Tensor.__pow__ = pow_

Tensor.exp = exp
Tensor.log = log
Tensor.sqrt = sqrt
Tensor.abs = abs_
Tensor.clip = clip
Tensor.sign = sign

# Comparison operators produce detached boolean tensors; they are used for
# masking, never differentiated through.
Tensor.__gt__ = lambda self, other: Tensor(self.data > as_tensor(other).data)
Tensor.__lt__ = lambda self, other: Tensor(self.data < as_tensor(other).data)
Tensor.__ge__ = lambda self, other: Tensor(self.data >= as_tensor(other).data)
Tensor.__le__ = lambda self, other: Tensor(self.data <= as_tensor(other).data)
