"""Fused loss operations.

The softmax-cross-entropy below is the single hottest graph node in the
repository: every trainer *and* every white-box attack differentiates it,
either with respect to parameters or with respect to the input image.  The
composed formulation (``log_softmax`` → one-hot multiply → ``sum`` →
``mean``) builds five graph nodes and materialises a one-hot target plus
several ``(N, C)`` temporaries per call; this `Function` computes the loss
directly from the logits in one node.

Forward (stable logsumexp form, per example ``i`` with target ``y_i`` and
smoothing ``s``)::

    loss_i = logsumexp(z_i) - (1 - s) * z_{i,y_i} - s * mean_j(z_{i,j})

Backward is the closed form ``(softmax(z) - target) * scale`` where
``target = (1 - s) * onehot + s / C`` and ``scale`` folds in the reduction;
the softmax saved by the forward is updated in place, so the backward pass
allocates nothing beyond numpy scalar temporaries.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_in_unit_interval
from .engine import Function, Tensor, as_tensor

__all__ = ["SoftmaxCrossEntropy", "softmax_cross_entropy"]

_REDUCTIONS = ("mean", "sum", "none")


class SoftmaxCrossEntropy(Function):
    """Fused softmax cross-entropy over ``(N, C)`` logits."""

    @staticmethod
    def forward(ctx, logits, labels, reduction="mean", label_smoothing=0.0):
        n, num_classes = logits.shape
        rows = np.arange(n)
        peak = logits.max(axis=1, keepdims=True)
        shifted = logits - peak
        np.exp(shifted, out=shifted)
        total = shifted.sum(axis=1, keepdims=True)
        softmax = shifted
        softmax /= total
        picked = logits[rows, labels]
        loss = peak[:, 0] + np.log(total[:, 0])  # logsumexp per example
        loss -= picked
        if label_smoothing > 0.0:
            # s/C * sum_j z_j == s * mean_j z_j, so the smoothed target dot
            # product needs only the per-example mean, not the full one-hot.
            loss += label_smoothing * (picked - logits.mean(axis=1))
        ctx.save_for_backward(
            softmax, labels, reduction, label_smoothing, n, num_classes
        )
        if reduction == "mean":
            return np.asarray(loss.mean())
        if reduction == "sum":
            return np.asarray(loss.sum())
        return loss

    @staticmethod
    def backward(ctx, grad_output):
        softmax, labels, reduction, smoothing, n, num_classes = ctx.saved
        # The saved softmax is private to this node, so the gradient is
        # formed in place: grad = (softmax - target) * scale.
        grad = softmax
        if smoothing > 0.0:
            grad -= smoothing / num_classes
        grad[np.arange(n), labels] -= 1.0 - smoothing
        if reduction == "mean":
            grad *= grad_output / n
        elif reduction == "sum":
            grad *= grad_output
        else:
            grad *= grad_output.reshape(n, 1)
        return grad, None


def softmax_cross_entropy(
    logits,
    labels,
    reduction: str = "mean",
    label_smoothing: float = 0.0,
) -> Tensor:
    """Fused softmax cross-entropy between ``logits`` and integer ``labels``.

    Parameters
    ----------
    logits:
        ``(N, C)`` raw scores.
    labels:
        ``(N,)`` integer class indices.
    reduction:
        ``"mean"`` (default), ``"sum"`` or ``"none"``.
    label_smoothing:
        Mixes the one-hot target with the uniform distribution; ``0``
        recovers plain cross-entropy.
    """
    logits = as_tensor(logits)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
    if reduction not in _REDUCTIONS:
        raise ValueError(
            f"unknown reduction {reduction!r}; choose 'mean', 'sum' or 'none'"
        )
    check_in_unit_interval("label_smoothing", label_smoothing)
    # copy=False keeps already-int64 label arrays identity-stable, which the
    # compiled tape relies on to recognise them as step inputs.
    labels = np.asarray(
        labels.data if isinstance(labels, Tensor) else labels
    ).astype(np.int64, copy=False)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    n, num_classes = logits.shape
    if labels.shape[0] != n:
        raise ValueError(
            f"expected {n} labels for {n} logit rows, got {labels.shape[0]}"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range for {num_classes} classes: "
            f"[{labels.min()}, {labels.max()}]"
        )
    return SoftmaxCrossEntropy.apply(
        logits, labels, reduction=reduction, label_smoothing=label_smoothing
    )
