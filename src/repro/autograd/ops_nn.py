"""Neural-network operations: matmul, activations, softmax, conv, pooling.

Importing this module attaches ``matmul``/``@`` and activation methods onto
:class:`~repro.autograd.Tensor`.
"""

from __future__ import annotations

import numpy as np

from ._im2col import col2im, conv_output_size, im2col
from .engine import Function, Tensor, as_tensor
from .ops_reduce import logsumexp

__all__ = [
    "matmul",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "dropout_mask",
]


class MatMul(Function):
    """Matrix multiplication (supports batched operands)."""
    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a, b)
        return a @ b

    @staticmethod
    def backward(ctx, grad_output):
        a, b = ctx.saved
        grad_a = grad_output @ np.swapaxes(b, -1, -2)
        grad_b = np.swapaxes(a, -1, -2) @ grad_output
        # Batched matmul may broadcast leading dims; sum them back.
        from .ops_basic import unbroadcast

        return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)


class ReLU(Function):
    """Rectified linear unit."""
    @staticmethod
    def forward(ctx, a):
        mask = a > 0
        ctx.save_for_backward(mask)
        return a * mask

    @staticmethod
    def backward(ctx, grad_output):
        (mask,) = ctx.saved
        return (grad_output * mask,)


class LeakyReLU(Function):
    """Leaky ReLU with configurable negative slope."""
    @staticmethod
    def forward(ctx, a, negative_slope=0.01):
        mask = a > 0
        ctx.save_for_backward(mask, negative_slope)
        return np.where(mask, a, negative_slope * a)

    @staticmethod
    def backward(ctx, grad_output):
        mask, slope = ctx.saved
        return (np.where(mask, grad_output, slope * grad_output),)


class Sigmoid(Function):
    """Logistic sigmoid."""
    @staticmethod
    def forward(ctx, a):
        out = 1.0 / (1.0 + np.exp(-a))
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        (out,) = ctx.saved
        return (grad_output * out * (1.0 - out),)


class Tanh(Function):
    """Hyperbolic tangent."""
    @staticmethod
    def forward(ctx, a):
        out = np.tanh(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        (out,) = ctx.saved
        return (grad_output * (1.0 - out * out),)


class Softmax(Function):
    """Softmax along an axis (stable shift-by-max form)."""
    @staticmethod
    def forward(ctx, a, axis=-1):
        shifted = a - a.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)
        ctx.save_for_backward(out, axis)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        out, axis = ctx.saved
        dot = (grad_output * out).sum(axis=axis, keepdims=True)
        return (out * (grad_output - dot),)


class Conv2d(Function):
    """2-D cross-correlation over NCHW inputs via im2col + GEMM."""

    @staticmethod
    def forward(ctx, x, weight, bias=None, stride=1, padding=0):
        n, c_in, h, w = x.shape
        c_out, c_in_w, kh, kw = weight.shape
        if c_in != c_in_w:
            raise ValueError(
                f"input has {c_in} channels but weight expects {c_in_w}"
            )
        out_h = conv_output_size(h, kh, stride, padding)
        out_w = conv_output_size(w, kw, stride, padding)
        cols = im2col(x, kh, kw, stride, padding)
        w_mat = weight.reshape(c_out, -1)
        out = cols @ w_mat.T
        if bias is not None:
            out = out + bias
        out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
        ctx.save_for_backward(
            cols, weight, x.shape, stride, padding, bias is not None
        )
        return out

    @staticmethod
    def backward(ctx, grad_output):
        cols, weight, x_shape, stride, padding, has_bias = ctx.saved
        c_out, c_in, kh, kw = weight.shape
        # grad_output: (N, C_out, out_h, out_w) -> (N*out_h*out_w, C_out)
        grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(-1, c_out)
        grad_weight = (grad_mat.T @ cols).reshape(weight.shape)
        grad_bias = grad_mat.sum(axis=0) if has_bias else None
        grad_cols = grad_mat @ weight.reshape(c_out, -1)
        grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
        return grad_x, grad_weight, grad_bias


class MaxPool2d(Function):
    """Max pooling over square windows (argmax gradient routing)."""
    @staticmethod
    def forward(ctx, x, kernel_size=2, stride=None, padding=0):
        stride = stride or kernel_size
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kernel_size, stride, padding)
        out_w = conv_output_size(w, kernel_size, stride, padding)
        cols = im2col(x, kernel_size, kernel_size, stride, padding)
        cols = cols.reshape(-1, c, kernel_size * kernel_size)
        # rows of `cols` are (N*out_h*out_w, C, K*K)
        argmax = cols.argmax(axis=2)
        out = np.take_along_axis(cols, argmax[..., None], axis=2)[..., 0]
        out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        ctx.save_for_backward(
            argmax, x.shape, kernel_size, stride, padding, cols.shape
        )
        return out

    @staticmethod
    def backward(ctx, grad_output):
        argmax, x_shape, kernel_size, stride, padding, cols_shape = ctx.saved
        n, c, h, w = x_shape
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, c)
        grad_cols = np.zeros(cols_shape, dtype=grad_output.dtype)
        np.put_along_axis(grad_cols, argmax[..., None], grad_flat[..., None], axis=2)
        grad_cols = grad_cols.reshape(grad_cols.shape[0], -1)
        grad_x = col2im(
            grad_cols, x_shape, kernel_size, kernel_size, stride, padding
        )
        return (grad_x,)


class AvgPool2d(Function):
    """Average pooling over square windows."""
    @staticmethod
    def forward(ctx, x, kernel_size=2, stride=None, padding=0):
        stride = stride or kernel_size
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kernel_size, stride, padding)
        out_w = conv_output_size(w, kernel_size, stride, padding)
        cols = im2col(x, kernel_size, kernel_size, stride, padding)
        cols = cols.reshape(-1, c, kernel_size * kernel_size)
        out = cols.mean(axis=2).reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        ctx.save_for_backward(x.shape, kernel_size, stride, padding)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        x_shape, kernel_size, stride, padding = ctx.saved
        n, c, h, w = x_shape
        k2 = kernel_size * kernel_size
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, c)
        grad_cols = np.repeat(grad_flat[..., None] / k2, k2, axis=2)
        grad_cols = grad_cols.reshape(grad_cols.shape[0], -1)
        grad_x = col2im(
            grad_cols, x_shape, kernel_size, kernel_size, stride, padding
        )
        return (grad_x,)


class DropoutMask(Function):
    """Multiply by a fixed (pre-drawn) mask; used by the Dropout layer."""

    @staticmethod
    def forward(ctx, a, mask):
        ctx.save_for_backward(mask)
        return a * mask

    @staticmethod
    def backward(ctx, grad_output):
        (mask,) = ctx.saved
        return (grad_output * mask, None)


# ----------------------------------------------------------------------
# public functional API
# ----------------------------------------------------------------------
def matmul(a, b):
    """Matrix product ``a @ b``."""
    return MatMul.apply(as_tensor(a), as_tensor(b))


def relu(a):
    """Elementwise ``max(a, 0)``."""
    return ReLU.apply(as_tensor(a))


def leaky_relu(a, negative_slope: float = 0.01):
    """Leaky ReLU of ``a``."""
    return LeakyReLU.apply(as_tensor(a), negative_slope=negative_slope)


def sigmoid(a):
    """Elementwise logistic sigmoid of ``a``."""
    return Sigmoid.apply(as_tensor(a))


def tanh(a):
    """Elementwise tanh of ``a``."""
    return Tanh.apply(as_tensor(a))


def softmax(a, axis: int = -1):
    """Softmax of ``a`` along ``axis``."""
    return Softmax.apply(as_tensor(a), axis=axis)


def log_softmax(a, axis: int = -1):
    """Numerically stable ``log(softmax(a))`` built on logsumexp."""
    a = as_tensor(a)
    return a - logsumexp(a, axis=axis, keepdims=True)


def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0):
    """2-D convolution (cross-correlation) over an NCHW batch."""
    args = [as_tensor(x), as_tensor(weight)]
    if bias is not None:
        args.append(as_tensor(bias))
        return Conv2d.apply(*args, stride=stride, padding=padding)
    return Conv2d.apply(args[0], args[1], None, stride=stride, padding=padding)


def max_pool2d(x, kernel_size: int = 2, stride=None, padding: int = 0):
    """Max pooling over square windows of an NCHW batch."""
    return MaxPool2d.apply(
        as_tensor(x), kernel_size=kernel_size, stride=stride, padding=padding
    )


def avg_pool2d(x, kernel_size: int = 2, stride=None, padding: int = 0):
    """Average pooling over square windows of an NCHW batch."""
    return AvgPool2d.apply(
        as_tensor(x), kernel_size=kernel_size, stride=stride, padding=padding
    )


def dropout_mask(a, mask):
    """Apply a precomputed dropout mask (already scaled by 1/keep_prob)."""
    return DropoutMask.apply(as_tensor(a), np.asarray(mask))


Tensor.__matmul__ = matmul
Tensor.relu = relu
Tensor.sigmoid = sigmoid
Tensor.tanh = tanh
Tensor.softmax = softmax
Tensor.log_softmax = log_softmax
