"""Neural-network operations: matmul, activations, softmax, conv, pooling.

Importing this module attaches ``matmul``/``@`` and activation methods onto
:class:`~repro.autograd.Tensor`.
"""

from __future__ import annotations

import numpy as np

from ..runtime import get_workspace, hotpaths_enabled
from ._im2col import col2im, conv_output_size, im2col
from .engine import Function, Tensor, as_tensor, is_grad_enabled
from .ops_reduce import logsumexp

_UNBROADCAST = None


def _unbroadcast():
    """Lazy module-level handle on ops_basic.unbroadcast (circular import)."""
    global _UNBROADCAST
    if _UNBROADCAST is None:
        from .ops_basic import unbroadcast

        _UNBROADCAST = unbroadcast
    return _UNBROADCAST


__all__ = [
    "matmul",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "dropout_mask",
]


class MatMul(Function):
    """Matrix multiplication (supports batched operands)."""
    @staticmethod
    def forward(ctx, a, b):
        ctx.save_for_backward(a, b)
        return a @ b

    @staticmethod
    def backward(ctx, grad_output):
        a, b = ctx.saved
        # Batched matmul may broadcast leading dims; sum them back.
        unbroadcast = _unbroadcast()
        grad_a = grad_b = None
        # A length-1 contraction axis makes the GEMM an outer product: a
        # broadcast multiply computes the identical single products (no
        # accumulation, so bitwise equal) without BLAS packing overhead —
        # the batch-size-1 dense backward hits this on every step.
        if ctx.needs(0):
            bt = np.swapaxes(b, -1, -2)
            if b.shape[-1] == 1:
                grad_a = unbroadcast(grad_output * bt, a.shape)
            else:
                grad_a = unbroadcast(grad_output @ bt, a.shape)
        if ctx.needs(1):
            at = np.swapaxes(a, -1, -2)
            if a.shape[-2] == 1:
                grad_b = unbroadcast(at * grad_output, b.shape)
            else:
                grad_b = unbroadcast(at @ grad_output, b.shape)
        return grad_a, grad_b


class ReLU(Function):
    """Rectified linear unit."""
    @staticmethod
    def forward(ctx, a):
        mask = a > 0
        ctx.save_for_backward(mask)
        return a * mask

    @staticmethod
    def backward(ctx, grad_output):
        (mask,) = ctx.saved
        return (grad_output * mask,)


class LeakyReLU(Function):
    """Leaky ReLU with configurable negative slope."""
    @staticmethod
    def forward(ctx, a, negative_slope=0.01):
        mask = a > 0
        ctx.save_for_backward(mask, negative_slope)
        return np.where(mask, a, negative_slope * a)

    @staticmethod
    def backward(ctx, grad_output):
        mask, slope = ctx.saved
        return (np.where(mask, grad_output, slope * grad_output),)


class Sigmoid(Function):
    """Logistic sigmoid."""
    @staticmethod
    def forward(ctx, a):
        out = 1.0 / (1.0 + np.exp(-a))
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        (out,) = ctx.saved
        return (grad_output * out * (1.0 - out),)


class Tanh(Function):
    """Hyperbolic tangent."""
    @staticmethod
    def forward(ctx, a):
        out = np.tanh(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        (out,) = ctx.saved
        return (grad_output * (1.0 - out * out),)


class Softmax(Function):
    """Softmax along an axis (stable shift-by-max form)."""
    @staticmethod
    def forward(ctx, a, axis=-1):
        shifted = a - a.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)
        ctx.save_for_backward(out, axis)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        out, axis = ctx.saved
        dot = (grad_output * out).sum(axis=axis, keepdims=True)
        return (out * (grad_output - dot),)


class Conv2d(Function):
    """2-D cross-correlation over NCHW inputs via im2col + GEMM."""

    @staticmethod
    def forward(ctx, x, weight, bias=None, stride=1, padding=0):
        n, c_in, h, w = x.shape
        c_out, c_in_w, kh, kw = weight.shape
        if c_in != c_in_w:
            raise ValueError(
                f"input has {c_in} channels but weight expects {c_in_w}"
            )
        out_h = conv_output_size(h, kh, stride, padding)
        out_w = conv_output_size(w, kw, stride, padding)
        cols = im2col(x, kh, kw, stride, padding)
        w_mat = weight.reshape(c_out, -1)
        out = cols @ w_mat.T
        if bias is not None:
            if np.result_type(out.dtype, bias.dtype) == out.dtype:
                np.add(out, bias, out=out)  # GEMM result is fresh: add in place
            else:
                out = out + bias
        out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
        if is_grad_enabled():
            # The column matrix is reused for grad_weight; the backward
            # pass releases it once the gradients are formed.
            ctx.save_for_backward(
                cols, weight, x.shape, stride, padding, bias is not None
            )
        else:
            get_workspace().release(cols)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        cols, weight, x_shape, stride, padding, has_bias = ctx.saved
        if cols is None:
            raise RuntimeError(
                "Conv2d backward called twice on the same graph node; the "
                "column workspace buffer has already been recycled"
            )
        c_out, c_in, kh, kw = weight.shape
        if not hotpaths_enabled():
            # Reference path (pre-overhaul kernels, timed as the baseline).
            grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(-1, c_out)
            grad_weight = (
                (grad_mat.T @ cols).reshape(weight.shape)
                if ctx.needs(1) else None
            )
            grad_bias = (
                grad_mat.sum(axis=0) if has_bias and ctx.needs(2) else None
            )
            if ctx.needs(0):
                grad_cols = grad_mat @ weight.reshape(c_out, -1)
                grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
            else:
                grad_x = None
            return grad_x, grad_weight, grad_bias
        workspace = get_workspace()
        # grad_output: (N, C_out, out_h, out_w) -> (N*out_h*out_w, C_out)
        n_out, _, out_h, out_w = grad_output.shape
        grad_mat = workspace.acquire((n_out * out_h * out_w, c_out),
                                     grad_output.dtype)
        grad_mat.reshape(n_out, out_h, out_w, c_out)[...] = (
            grad_output.transpose(0, 2, 3, 1)
        )
        grad_weight = (
            (grad_mat.T @ cols).reshape(weight.shape) if ctx.needs(1) else None
        )
        grad_bias = grad_mat.sum(axis=0) if has_bias and ctx.needs(2) else None
        result_dtype = np.result_type(grad_mat.dtype, weight.dtype)
        n, _, h, w = x_shape
        if not ctx.needs(0):
            # The input (e.g. a clean training batch, as opposed to an
            # attack's perturbation variable) takes no gradient: skip the
            # whole input-gradient GEMM + scatter.
            grad_x = None
        elif c_in * kh * kw >= 64:
            # Fused GEMM + scatter: one small GEMM per kernel position,
            # accumulated straight into an NHWC image buffer.  Skips
            # materialising the full (rows, C_in*kh*kw) column gradient and
            # keeps every read/write contiguous; wins once the per-position
            # GEMMs are big enough to amortise the k^2 BLAS dispatches.
            padded = workspace.acquire(
                (n, h + 2 * padding, w + 2 * padding, c_in), result_dtype
            )
            padded.fill(0.0)
            tmp = workspace.acquire((grad_mat.shape[0], c_in), result_dtype)
            i_max = stride * out_h
            j_max = stride * out_w
            for i in range(kh):
                for j in range(kw):
                    np.matmul(grad_mat, weight[:, :, i, j], out=tmp)
                    padded[:, i : i + i_max : stride, j : j + j_max : stride, :] += (
                        tmp.reshape(n_out, out_h, out_w, c_in)
                    )
            if padding > 0:
                core = padded[:, padding:-padding, padding:-padding, :]
            else:
                core = padded
            grad_x = np.empty((n, c_in, h, w), dtype=result_dtype)
            grad_x[...] = core.transpose(0, 3, 1, 2)
            workspace.release(tmp)
            workspace.release(padded)
        else:
            w_mat = weight.reshape(c_out, -1)
            grad_cols = workspace.acquire(
                (grad_mat.shape[0], w_mat.shape[1]), result_dtype
            )
            np.matmul(grad_mat, w_mat, out=grad_cols)
            grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
            workspace.release(grad_cols)
        workspace.release(grad_mat)
        workspace.release(cols)
        ctx.save_for_backward(None, weight, x_shape, stride, padding, has_bias)
        return grad_x, grad_weight, grad_bias


def _pool_tiles(shape, kernel_size, stride, padding):
    """True when non-overlapping windows tile the unpadded image exactly —
    the common ``MaxPool2d(2)`` layout, served by pure reshape views."""
    _, _, h, w = shape
    return (
        stride == kernel_size
        and padding == 0
        and h % kernel_size == 0
        and w % kernel_size == 0
    )


class MaxPool2d(Function):
    """Max pooling over square windows (argmax gradient routing)."""
    @staticmethod
    def forward(ctx, x, kernel_size=2, stride=None, padding=0):
        stride = stride or kernel_size
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kernel_size, stride, padding)
        out_w = conv_output_size(w, kernel_size, stride, padding)
        k2 = kernel_size * kernel_size
        workspace = get_workspace()
        if hotpaths_enabled() and _pool_tiles(x.shape, kernel_size, stride, padding):
            # Windows tile the image: expose them as an NCHW reshape view and
            # keep every later array in NCHW, avoiding the two NHWC transpose
            # copies the column route pays.
            view = x.reshape(n, c, out_h, kernel_size, out_w, kernel_size)
            if kernel_size == 2:
                # 2x2 windows: hand-rolled max/argmax over the four strided
                # slot views beats np.argmax's generic reduction (and skips
                # the take_along_axis gather).  Strict `>` comparisons keep
                # np.argmax's first-max tie-breaking.
                s0, s1 = view[:, :, :, 0, :, 0], view[:, :, :, 0, :, 1]
                s2, s3 = view[:, :, :, 1, :, 0], view[:, :, :, 1, :, 1]
                m01 = np.maximum(s0, s1)
                m23 = np.maximum(s2, s3)
                a01 = (s1 > s0).astype(np.int64)
                a23 = (s3 > s2).astype(np.int64)
                a23 += 2
                high = m23 > m01
                out = np.where(high, m23, m01)
                argmax = np.where(high, a23, a01)
            else:
                windows = view.transpose(0, 1, 2, 4, 3, 5)
                tiles = workspace.acquire((n, c, out_h, out_w, k2), x.dtype)
                tiles.reshape(
                    n, c, out_h, out_w, kernel_size, kernel_size
                )[...] = windows
                argmax = tiles.argmax(axis=4)
                out = np.take_along_axis(tiles, argmax[..., None], axis=4)[..., 0]
                workspace.release(tiles)
            ctx.save_for_backward(
                argmax, x.shape, kernel_size, stride, padding, None
            )
            return out
        # Padding cells are -inf, not 0: with zero padding the argmax would
        # prefer a padding cell over genuinely negative activations, both
        # corrupting the forward value and routing gradient into the void.
        flat = im2col(
            x, kernel_size, kernel_size, stride, padding, pad_value=-np.inf
        )
        cols = flat.reshape(-1, c, k2)
        # rows of `cols` are (N*out_h*out_w, C, K*K)
        argmax = cols.argmax(axis=2)
        out = np.take_along_axis(cols, argmax[..., None], axis=2)[..., 0]
        out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        ctx.save_for_backward(
            argmax, x.shape, kernel_size, stride, padding, cols.shape
        )
        workspace.release(flat)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        argmax, x_shape, kernel_size, stride, padding, cols_shape = ctx.saved
        n, c, h, w = x_shape
        workspace = get_workspace()
        if cols_shape is None:
            # NCHW tiling route (see forward): scatter into per-window
            # slots, then one strided assignment back to image layout.
            out_h, out_w = h // kernel_size, w // kernel_size
            k2 = kernel_size * kernel_size
            if kernel_size == 2:
                # 2x2 windows: route each gradient straight into its slot's
                # strided view with a masked copy — same index routing as
                # the put_along_axis scatter below, minus the slot buffer
                # and the transpose copy back to image layout.
                grad_x = np.zeros((n, c, h, w), dtype=grad_output.dtype)
                view = grad_x.reshape(n, c, out_h, 2, out_w, 2)
                mask = np.empty(argmax.shape, dtype=bool)
                for slot, dst in enumerate((
                    view[:, :, :, 0, :, 0], view[:, :, :, 0, :, 1],
                    view[:, :, :, 1, :, 0], view[:, :, :, 1, :, 1],
                )):
                    np.equal(argmax, slot, out=mask)
                    np.copyto(dst, grad_output, where=mask)
                return (grad_x,)
            slots = workspace.acquire((n, c, out_h, out_w, k2),
                                      grad_output.dtype)
            slots.fill(0.0)
            np.put_along_axis(
                slots, argmax[..., None], grad_output[..., None], axis=4
            )
            grad_x = np.empty((n, c, h, w), dtype=grad_output.dtype)
            grad_x.reshape(
                n, c, out_h, kernel_size, out_w, kernel_size
            )[...] = slots.reshape(
                n, c, out_h, out_w, kernel_size, kernel_size
            ).transpose(0, 1, 2, 4, 3, 5)
            workspace.release(slots)
            return (grad_x,)
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, c)
        grad_cols = workspace.acquire(cols_shape, grad_output.dtype)
        grad_cols.fill(0.0)
        np.put_along_axis(grad_cols, argmax[..., None], grad_flat[..., None], axis=2)
        grad_x = col2im(
            grad_cols.reshape(grad_cols.shape[0], -1),
            x_shape, kernel_size, kernel_size, stride, padding,
        )
        workspace.release(grad_cols)
        return (grad_x,)


class AvgPool2d(Function):
    """Average pooling over square windows."""
    @staticmethod
    def forward(ctx, x, kernel_size=2, stride=None, padding=0):
        stride = stride or kernel_size
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kernel_size, stride, padding)
        out_w = conv_output_size(w, kernel_size, stride, padding)
        tiled = hotpaths_enabled() and _pool_tiles(
            x.shape, kernel_size, stride, padding
        )
        ctx.save_for_backward(x.shape, kernel_size, stride, padding, tiled)
        if tiled:
            # Windows tile the image: reduce straight over the NCHW reshape
            # view, no column gather and no transpose copies.
            return x.reshape(
                n, c, out_h, kernel_size, out_w, kernel_size
            ).mean(axis=(3, 5))
        flat = im2col(x, kernel_size, kernel_size, stride, padding)
        cols = flat.reshape(-1, c, kernel_size * kernel_size)
        out = cols.mean(axis=2).reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        get_workspace().release(flat)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        x_shape, kernel_size, stride, padding, tiled = ctx.saved
        n, c, h, w = x_shape
        k2 = kernel_size * kernel_size
        workspace = get_workspace()
        if tiled:
            # Every input cell in a window gets grad/k^2: one broadcast
            # assignment into the window view of the image gradient.
            out_h, out_w = h // kernel_size, w // kernel_size
            grad_x = np.empty((n, c, h, w), dtype=grad_output.dtype)
            grad_x.reshape(n, c, out_h, kernel_size, out_w, kernel_size)[...] = (
                (grad_output / k2)[:, :, :, None, :, None]
            )
            return (grad_x,)
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, c)
        grad_cols = workspace.acquire(
            (grad_flat.shape[0], c, k2), grad_flat.dtype
        )
        grad_cols[...] = (grad_flat / k2)[..., None]
        grad_x = col2im(
            grad_cols.reshape(grad_cols.shape[0], -1),
            x_shape, kernel_size, kernel_size, stride, padding,
        )
        workspace.release(grad_cols)
        return (grad_x,)


class DropoutMask(Function):
    """Multiply by a fixed (pre-drawn) mask; used by the Dropout layer."""

    @staticmethod
    def forward(ctx, a, mask):
        ctx.save_for_backward(mask)
        return a * mask

    @staticmethod
    def backward(ctx, grad_output):
        (mask,) = ctx.saved
        return (grad_output * mask if ctx.needs(0) else None, None)


# ----------------------------------------------------------------------
# public functional API
# ----------------------------------------------------------------------
def matmul(a, b):
    """Matrix product ``a @ b``."""
    return MatMul.apply(as_tensor(a), as_tensor(b))


def relu(a):
    """Elementwise ``max(a, 0)``."""
    return ReLU.apply(as_tensor(a))


def leaky_relu(a, negative_slope: float = 0.01):
    """Leaky ReLU of ``a``."""
    return LeakyReLU.apply(as_tensor(a), negative_slope=negative_slope)


def sigmoid(a):
    """Elementwise logistic sigmoid of ``a``."""
    return Sigmoid.apply(as_tensor(a))


def tanh(a):
    """Elementwise tanh of ``a``."""
    return Tanh.apply(as_tensor(a))


def softmax(a, axis: int = -1):
    """Softmax of ``a`` along ``axis``."""
    return Softmax.apply(as_tensor(a), axis=axis)


def log_softmax(a, axis: int = -1):
    """Numerically stable ``log(softmax(a))`` built on logsumexp."""
    a = as_tensor(a)
    return a - logsumexp(a, axis=axis, keepdims=True)


def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0):
    """2-D convolution (cross-correlation) over an NCHW batch."""
    args = [as_tensor(x), as_tensor(weight)]
    if bias is not None:
        args.append(as_tensor(bias))
        return Conv2d.apply(*args, stride=stride, padding=padding)
    return Conv2d.apply(args[0], args[1], None, stride=stride, padding=padding)


def max_pool2d(x, kernel_size: int = 2, stride=None, padding: int = 0):
    """Max pooling over square windows of an NCHW batch."""
    return MaxPool2d.apply(
        as_tensor(x), kernel_size=kernel_size, stride=stride, padding=padding
    )


def avg_pool2d(x, kernel_size: int = 2, stride=None, padding: int = 0):
    """Average pooling over square windows of an NCHW batch."""
    return AvgPool2d.apply(
        as_tensor(x), kernel_size=kernel_size, stride=stride, padding=padding
    )


def dropout_mask(a, mask):
    """Apply a precomputed dropout mask (already scaled by 1/keep_prob)."""
    return DropoutMask.apply(as_tensor(a), np.asarray(mask))


Tensor.__matmul__ = matmul
Tensor.relu = relu
Tensor.sigmoid = sigmoid
Tensor.tanh = tanh
Tensor.softmax = softmax
Tensor.log_softmax = log_softmax
