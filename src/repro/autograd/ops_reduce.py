"""Reduction operations (sum, mean, max, min, var, std, logsumexp).

Importing this module attaches the reduction methods onto
:class:`~repro.autograd.Tensor`.
"""

from __future__ import annotations

import numpy as np

from .engine import Function, Tensor, as_tensor

__all__ = ["sum_", "mean", "max_", "min_", "var", "std", "logsumexp"]


def _normalize_axis(axis, ndim):
    """Return ``axis`` as a tuple of non-negative ints, or None."""
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _expand_reduced(grad, input_shape, axis, keepdims):
    """Reshape a reduced gradient so it broadcasts back over ``input_shape``."""
    if axis is None or keepdims:
        return grad
    shape = list(input_shape)
    for a in axis:
        shape[a] = 1
    return grad.reshape(shape)


class Sum(Function):
    """Sum reduction over optional axes."""
    @staticmethod
    def forward(ctx, a, axis=None, keepdims=False):
        axis = _normalize_axis(axis, a.ndim)
        ctx.save_for_backward(a.shape, axis, keepdims)
        return a.sum(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx, grad_output):
        input_shape, axis, keepdims = ctx.saved
        grad = _expand_reduced(grad_output, input_shape, axis, keepdims)
        return (np.broadcast_to(grad, input_shape).copy(),)


class Mean(Function):
    """Mean reduction over optional axes."""
    @staticmethod
    def forward(ctx, a, axis=None, keepdims=False):
        axis = _normalize_axis(axis, a.ndim)
        if axis is None:
            count = a.size
        else:
            count = int(np.prod([a.shape[i] for i in axis]))
        ctx.save_for_backward(a.shape, axis, keepdims, count)
        return a.mean(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx, grad_output):
        input_shape, axis, keepdims, count = ctx.saved
        grad = _expand_reduced(grad_output, input_shape, axis, keepdims)
        return (np.broadcast_to(grad, input_shape).copy() / count,)


class MaxMin(Function):
    """Shared implementation for max/min reductions.

    Ties propagate gradient equally to every attaining element, matching the
    subgradient convention used by numerical checking.
    """

    @staticmethod
    def forward(ctx, a, axis=None, keepdims=False, mode="max"):
        axis = _normalize_axis(axis, a.ndim)
        reducer = np.max if mode == "max" else np.min
        out = reducer(a, axis=axis, keepdims=keepdims)
        out_expanded = reducer(a, axis=axis, keepdims=True)
        mask = (a == out_expanded).astype(a.dtype)
        mask /= mask.sum(axis=axis, keepdims=True)
        ctx.save_for_backward(a.shape, axis, keepdims, mask)
        return out

    @staticmethod
    def backward(ctx, grad_output):
        input_shape, axis, keepdims, mask = ctx.saved
        grad = _expand_reduced(grad_output, input_shape, axis, keepdims)
        return (np.broadcast_to(grad, input_shape) * mask,)


class LogSumExp(Function):
    """Numerically stable ``log(sum(exp(a)))`` along an axis."""

    @staticmethod
    def forward(ctx, a, axis=-1, keepdims=False):
        axis = _normalize_axis(axis, a.ndim)
        shifted = a - a.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        total = exp.sum(axis=axis, keepdims=True)
        softmax = exp / total
        out = np.log(total) + a.max(axis=axis, keepdims=True)
        ctx.save_for_backward(a.shape, axis, keepdims, softmax)
        if not keepdims:
            out = out.reshape(
                tuple(s for i, s in enumerate(a.shape) if i not in axis)
            )
        return out

    @staticmethod
    def backward(ctx, grad_output):
        input_shape, axis, keepdims, softmax = ctx.saved
        grad = _expand_reduced(grad_output, input_shape, axis, keepdims)
        return (softmax * grad,)


def sum_(a, axis=None, keepdims=False):
    """Sum of ``a`` over ``axis`` (None = all)."""
    return Sum.apply(as_tensor(a), axis=axis, keepdims=keepdims)


def mean(a, axis=None, keepdims=False):
    """Mean of ``a`` over ``axis`` (None = all)."""
    return Mean.apply(as_tensor(a), axis=axis, keepdims=keepdims)


def max_(a, axis=None, keepdims=False):
    """Maximum of ``a`` over ``axis`` (ties share gradient)."""
    return MaxMin.apply(as_tensor(a), axis=axis, keepdims=keepdims, mode="max")


def min_(a, axis=None, keepdims=False):
    """Minimum of ``a`` over ``axis`` (ties share gradient)."""
    return MaxMin.apply(as_tensor(a), axis=axis, keepdims=keepdims, mode="min")


def var(a, axis=None, keepdims=False):
    """Population variance built from differentiable primitives."""
    a = as_tensor(a)
    mu = mean(a, axis=axis, keepdims=True)
    sq = (a - mu) * (a - mu)
    return mean(sq, axis=axis, keepdims=keepdims)


def std(a, axis=None, keepdims=False, eps: float = 0.0):
    """Population standard deviation; ``eps`` stabilises the sqrt at 0."""
    v = var(a, axis=axis, keepdims=keepdims)
    if eps:
        v = v + eps
    return v.sqrt()


def logsumexp(a, axis=-1, keepdims=False):
    """Numerically stable ``log(sum(exp(a)))`` over ``axis``."""
    return LogSumExp.apply(as_tensor(a), axis=axis, keepdims=keepdims)


Tensor.sum = sum_
Tensor.mean = mean
Tensor.max = max_
Tensor.min = min_
Tensor.var = var
Tensor.std = std
Tensor.logsumexp = logsumexp
