"""Shape-manipulation operations (reshape, transpose, indexing, concat, pad).

Importing this module attaches the shape methods onto
:class:`~repro.autograd.Tensor`.
"""

from __future__ import annotations

import numpy as np

from .engine import Function, Tensor, as_tensor

__all__ = [
    "reshape",
    "transpose",
    "getitem",
    "concat",
    "stack",
    "pad",
    "broadcast_to",
    "flatten",
]


class Reshape(Function):
    """View with a new shape."""
    @staticmethod
    def forward(ctx, a, shape):
        ctx.save_for_backward(a.shape)
        return a.reshape(shape)

    @staticmethod
    def backward(ctx, grad_output):
        (input_shape,) = ctx.saved
        return (grad_output.reshape(input_shape), None)


class Transpose(Function):
    """Axis permutation."""
    @staticmethod
    def forward(ctx, a, axes=None):
        if axes is None:
            axes = tuple(reversed(range(a.ndim)))
        ctx.save_for_backward(tuple(np.argsort(axes)))
        return a.transpose(axes)

    @staticmethod
    def backward(ctx, grad_output):
        (inverse,) = ctx.saved
        return (grad_output.transpose(inverse), None)


class GetItem(Function):
    """Indexing/slicing; scatter-adds gradients on repeats."""
    @staticmethod
    def forward(ctx, a, index):
        ctx.save_for_backward(a.shape, a.dtype, index)
        return a[index]

    @staticmethod
    def backward(ctx, grad_output):
        input_shape, dtype, index = ctx.saved
        grad = np.zeros(input_shape, dtype=dtype)
        # add.at handles repeated indices (fancy indexing) correctly.
        np.add.at(grad, index, grad_output)
        return (grad, None)


class Concat(Function):
    """Concatenation along an axis."""
    @staticmethod
    def forward(ctx, *arrays, axis=0):
        ctx.save_for_backward(axis, [a.shape[axis] for a in arrays])
        return np.concatenate(arrays, axis=axis)

    @staticmethod
    def backward(ctx, grad_output):
        axis, sizes = ctx.saved
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad_output, splits, axis=axis))


class Pad(Function):
    """Zero padding with ``numpy.pad``-style ``pad_width``."""

    @staticmethod
    def forward(ctx, a, pad_width):
        ctx.save_for_backward(pad_width, a.shape)
        return np.pad(a, pad_width, mode="constant")

    @staticmethod
    def backward(ctx, grad_output):
        pad_width, input_shape = ctx.saved
        slices = tuple(
            slice(before, before + size)
            for (before, _after), size in zip(pad_width, input_shape)
        )
        return (grad_output[slices], None)


class BroadcastTo(Function):
    """Explicit broadcast to a target shape."""
    @staticmethod
    def forward(ctx, a, shape):
        ctx.save_for_backward(a.shape)
        return np.broadcast_to(a, shape).copy()

    @staticmethod
    def backward(ctx, grad_output):
        from .ops_basic import unbroadcast

        (input_shape,) = ctx.saved
        return (unbroadcast(grad_output, input_shape), None)


def reshape(a, *shape):
    """Reshape ``a`` (accepts a tuple or varargs)."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Reshape.apply(as_tensor(a), shape)


def transpose(a, axes=None):
    """Permute the axes of ``a`` (default: reverse)."""
    return Transpose.apply(as_tensor(a), axes)


def getitem(a, index):
    """Differentiable ``a[index]``."""
    if isinstance(index, Tensor):
        index = index.data
    if isinstance(index, tuple):
        index = tuple(
            i.data if isinstance(i, Tensor) else i for i in index
        )
    return GetItem.apply(as_tensor(a), index)


def concat(tensors, axis=0):
    """Concatenate tensors along ``axis``."""
    return Concat.apply(*[as_tensor(t) for t in tensors], axis=axis)


def stack(tensors, axis=0):
    """Stack tensors along a new ``axis``."""
    expanded = []
    for t in tensors:
        t = as_tensor(t)
        new_shape = list(t.shape)
        new_shape.insert(axis if axis >= 0 else axis + t.ndim + 1, 1)
        expanded.append(reshape(t, tuple(new_shape)))
    return concat(expanded, axis=axis)


def pad(a, pad_width):
    """Zero-pad ``a`` with numpy-style ``pad_width``."""
    pad_width = tuple(tuple(int(x) for x in pair) for pair in pad_width)
    return Pad.apply(as_tensor(a), pad_width)


def broadcast_to(a, shape):
    """Broadcast ``a`` to ``shape``."""
    return BroadcastTo.apply(as_tensor(a), tuple(shape))


def flatten(a, start_axis: int = 1):
    """Collapse all dimensions from ``start_axis`` onwards."""
    a = as_tensor(a)
    lead = a.shape[:start_axis]
    return reshape(a, lead + (-1,))


Tensor.reshape = reshape
Tensor.transpose = transpose
Tensor.__getitem__ = getitem
Tensor.flatten = flatten
