"""Compiled trace-and-replay execution engine over the eager autograd.

Adversarial training repeats one static-shape forward/backward program
thousands of times: every epochwise-adv step rebuilds the very same op
graph and re-dispatches every kernel.  :class:`CompiledStep` removes that
overhead by *tracing* one eager step — recording each op's function, ctx,
input/output slots and ``needs_input_grad`` mask into a linear tape — and
then *replaying* the recorded program directly on subsequent calls:

* graph construction, ``Tensor`` wrapping and dispatch are skipped — the
  replay loop calls each recorded ``forward``/``backward`` staticmethod
  straight on raw arrays addressed by slot index;
* backward nodes whose gradients are never consumed are dead-code
  eliminated (and their ``needs_input_grad`` bits flipped off, which the
  ops honour to skip whole GEMMs);
* chains of recorded elementwise ops (add/sub/mul/neg/relu — the
  FGSM/BIM delta-update idiom) are fused into single composite kernels
  running in-place on buffers pinned from the
  :class:`repro.runtime.workspace` pool via a
  :class:`~repro.runtime.workspace.WorkspaceLease`;
* gradient accumulation buffers and the root seed are leased once per
  tape and reused across every replay.

Correctness model
-----------------
Tracing *is* an eager run plus observation, so the first call per input
signature is eager by construction.  Replay re-executes the same
``forward``/``backward`` functions on the same ctx objects in the same
order, with gradient contributions accumulated in the engine's exact
order and dtype rules — replayed outputs and gradients are bit-for-bit
equal to eager (the equivalence suite pins this on every zoo model and
attack spec).

Shape/dtype/policy guards key a small LRU of compiled variants; anything
the tape cannot prove it can replay (data-dependent control flow that
hides an input from the graph, dropout's fresh RNG mask, graphs rooted
outside the traced step) raises :class:`TapeUnsupported` and the step
permanently falls back to eager — transparently, with a telemetry
counter so ``repro report`` shows what happened.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Optional

import numpy as np

from .. import telemetry as tel
from ..utils.lru import LRUCache
from ..runtime import (
    accum_dtype,
    compute_dtype,
    get_workspace,
    hotpaths_enabled,
)
from .engine import (
    Function,
    Tensor,
    active_tracer,
    is_grad_enabled,
    set_grad_enabled,
    set_tracer,
)
from .ops_basic import Add, Mul, Neg, Sub, unbroadcast
from .ops_nn import ReLU

__all__ = [
    "CompiledStep",
    "StepResult",
    "TapeUnsupported",
    "NON_REPLAYABLE",
]

#: Ops whose forward is freshly random every call — replaying a recorded
#: ctx would freeze the randomness, silently changing semantics.
NON_REPLAYABLE = frozenset({"DropoutMask"})

#: How many traces without a single cache hit before a step concludes its
#: signatures churn every call (e.g. a shrinking early-stop batch) and
#: permanently falls back to eager.
_THRASH_LIMIT = 8

# Source tags: where a replayed op's positional argument comes from.
_SLOT = 0    # output of a recorded op: values[payload]
_INPUT = 1   # a step input: inputs[payload]
_LEAF = 2    # a leaf parameter: payload.data (refetched — optimizers rebind)
_CONST = 3   # frozen at trace time: payload as-is

#: Sentinel marking the carried value inside a fused chain member's args.
_CARRIER = object()

#: Elementwise Function classes the fuser understands, by kernel tag.
_FUSABLE = {Add: "add", Sub: "sub", Mul: "mul", Neg: "neg", ReLU: "relu"}


class TapeUnsupported(RuntimeError):
    """The traced step cannot be replayed faithfully; fall back to eager."""


class StepResult(NamedTuple):
    """What one compiled (or fallen-back) step call produced.

    Attributes
    ----------
    outputs:
        Raw arrays, one per value returned by the wrapped function (a
        lone return value counts as a 1-tuple).  ``outputs[0]`` is the
        scalar loss the backward pass was seeded from.
    input_grads:
        Gradients of the loss w.r.t. the step inputs named in
        ``grad_inputs``, in that order (``None`` where no gradient
        reached the input), in the policy's accumulation dtype.
    compiled:
        ``True`` when this call was served by a tape replay, ``False``
        when it ran eagerly (trace call or fallback).
    """

    outputs: tuple
    input_grads: tuple
    compiled: bool


class _Tracer:
    """Record hook installed into the engine for the duration of one step."""

    __slots__ = ("applies", "backwards", "poisoned")

    def __init__(self) -> None:
        self.applies: list = []     # (cls, ctx, args, kwargs, out_tensor)
        self.backwards: list = []   # ctx objects, in engine execution order
        self.poisoned: str = ""     # non-empty -> trace cannot be replayed

    def record_apply(self, cls, ctx, args, kwargs, out, requires) -> None:
        self.applies.append((cls, ctx, tuple(args), dict(kwargs), out))

    def record_backward(self, ctx) -> None:
        self.backwards.append(ctx)

    def poison(self, reason: str) -> None:
        """Mark the in-flight trace untrustworthy without aborting it.

        Layers with out-of-graph side effects (e.g. batch-norm running
        statistics) call this so the step still completes eagerly but the
        recorded tape is discarded instead of replayed.
        """
        if not self.poisoned:
            self.poisoned = str(reason)


class _ForwardOp:
    """One replayed forward call: ``values[out_slot] = forward(ctx, *args)``."""

    __slots__ = ("forward", "ctx", "sources", "kwargs", "out_slot")

    def __init__(self, forward, ctx, sources, kwargs, out_slot) -> None:
        self.forward = forward
        self.ctx = ctx
        self.sources = sources
        self.kwargs = kwargs
        self.out_slot = out_slot


class _BackwardOp:
    """One replayed backward call plus where each gradient is routed.

    ``targets`` holds ``(pos, kind, key, single)`` tuples: gradient
    ``pos`` of the op's return tuple goes to slot ``key`` (``kind`` 0) or
    to accumulator ``key`` (``kind`` 1, a leaf parameter or step input);
    ``single`` marks the slot's only contribution, stored by reference
    without touching the accumulation machinery.  (They are built as
    ``(pos, kind, key)`` triples and tagged once contribution counts are
    known, after dead-code elimination.)
    """

    __slots__ = ("backward", "ctx", "out_slot", "targets")

    def __init__(self, backward, ctx, out_slot, targets) -> None:
        self.backward = backward
        self.ctx = ctx
        self.out_slot = out_slot
        self.targets = targets


class _FusedMember:
    """One op of a fused elementwise chain (forward and backward views)."""

    __slots__ = (
        "kind", "srcs", "carrier_pos", "arg_shapes", "targets",
        "mask", "snap", "snapped", "scratch",
    )

    def __init__(self, kind, srcs, carrier_pos, arg_shapes, targets) -> None:
        self.kind = kind
        self.srcs = srcs                  # sources; _CARRIER at carrier_pos
        self.carrier_pos = carrier_pos    # None for the chain head
        self.arg_shapes = arg_shapes
        self.targets = targets            # external (pos, kind, key, single)
        self.mask = None                  # relu: bool mask buffer
        self.snap = None                  # mid-mul: carrier-input snapshot
        self.snapped = None               # value of snap for this replay
        self.scratch: dict = {}           # per-target-pos gradient scratch


class _FusedForward:
    """A fused chain's forward: members run in-place on one leased buffer."""

    __slots__ = ("members", "out_slot", "buf")

    def __init__(self, members, out_slot, buf) -> None:
        self.members = members
        self.out_slot = out_slot
        self.buf = buf


class _FusedBackward:
    """A fused chain's backward: one composite kernel at the tail's slot."""

    __slots__ = ("members", "out_slot", "gradbuf")

    def __init__(self, members, out_slot, gradbuf) -> None:
        self.members = members
        self.out_slot = out_slot
        self.gradbuf = gradbuf


def _into_unary(fn, a, out):
    """``fn(a) -> out`` in place when bitwise-safe, else allocate."""
    if out is not None and a.shape == out.shape and a.dtype == out.dtype:
        return fn(a, out=out)
    return fn(a)


def _into_binary(fn, a, b, out):
    """``fn(a, b) -> out`` in place when bitwise-safe, else allocate.

    The equal-shape / equal-dtype case — every chain-internal edge — is
    decided with attribute compares alone; ``result_type`` and
    ``broadcast_shapes`` only run for broadcasting external operands.
    """
    if out is None:
        return fn(a, b)
    osh = out.shape
    if a.shape == osh and b.shape == osh:
        od = out.dtype
        if (a.dtype == od and b.dtype == od) or np.result_type(a, b) == od:
            return fn(a, b, out=out)
        return fn(a, b)
    if (
        np.result_type(a, b) == out.dtype
        and np.broadcast_shapes(np.shape(a), np.shape(b)) == osh
    ):
        return fn(a, b, out=out)
    return fn(a, b)


def _stash(buf, value):
    """Copy ``value`` into the dedicated ``buf`` (or a fresh array).

    Used where a fused backward would otherwise hand out a reference to a
    live carry buffer that a later chain member mutates in place.
    """
    if buf is not None and buf.shape == value.shape and buf.dtype == value.dtype:
        np.copyto(buf, value)
        return buf
    return value.copy()


class _Bound:
    """Coerced step inputs: raw arrays, with Tensor wrappers built lazily.

    Replays only touch :attr:`raws`; deferring the ``Tensor`` wrapping to
    the first :attr:`args` access keeps the cache-hit path free of graph
    object construction.
    """

    __slots__ = ("raws", "_grad_inputs", "_args")

    def __init__(self, raws: tuple, grad_inputs: tuple) -> None:
        self.raws = raws
        self._grad_inputs = grad_inputs
        self._args = None

    @property
    def args(self) -> tuple:
        args = self._args
        if args is None:
            grad_inputs = self._grad_inputs
            args = self._args = tuple(
                Tensor(raw, requires_grad=index in grad_inputs)
                if raw.dtype.kind == "f" else raw
                for index, raw in enumerate(self.raws)
            )
        return args


class _TapeProgram:
    """One compiled variant: the replayable forward/backward program."""

    __slots__ = (
        "num_slots", "forward_entries", "backward_entries", "values",
        "root_slot", "root_seed", "output_sources", "acc_entries",
        "grad_input_accs", "lease", "_accbufs", "_accum", "_hot",
        "_param_accs",
    )

    def __init__(self, num_slots, forward_entries, backward_entries,
                 root_slot, root_seed, output_sources, acc_entries,
                 grad_input_accs, lease) -> None:
        self.num_slots = num_slots
        self.forward_entries = forward_entries
        self.backward_entries = backward_entries
        self.values: list = [None] * num_slots
        self.root_slot = root_slot
        self.root_seed = root_seed
        self.output_sources = output_sources
        self.acc_entries = acc_entries          # ("param", Tensor)|("input", i)
        self.grad_input_accs = grad_input_accs  # acc index or None, per grad input
        self.lease = lease
        # Lazily-leased per-(kind, key) accumulation buffers.
        self._accbufs: dict = {}
        # The variant signature pins the policy, so the accumulation dtype
        # and hotpaths flag are constants for this program's lifetime.
        self._accum = np.dtype(accum_dtype())
        self._hot = hotpaths_enabled()
        self._param_accs = tuple(
            (index, payload)
            for index, (kind, payload) in enumerate(acc_entries)
            if kind == "param"
        )

    def release(self) -> None:
        """Return every pinned buffer to the workspace pool."""
        self.lease.release()

    # -- value resolution ------------------------------------------------
    def _resolve(self, source, inputs):
        tag, payload = source
        if tag == _SLOT:
            return self.values[payload]
        if tag == _INPUT:
            return inputs[payload]
        if tag == _LEAF:
            return payload.data
        return payload

    # -- forward ---------------------------------------------------------
    def _run_forward(self, inputs) -> None:
        values = self.values
        for entry in self.forward_entries:
            if type(entry) is _ForwardOp:
                # _resolve, unrolled: per-argument dispatch on the source
                # tag without a method call per operand.
                args = []
                for tag, payload in entry.sources:
                    if tag == _SLOT:
                        args.append(values[payload])
                    elif tag == _INPUT:
                        args.append(inputs[payload])
                    elif tag == _LEAF:
                        args.append(payload.data)
                    else:
                        args.append(payload)
                values[entry.out_slot] = entry.forward(
                    entry.ctx, *args, **entry.kwargs
                )
            else:
                self._run_fused_forward(entry, inputs)

    def _run_fused_forward(self, entry, inputs) -> None:
        buf = entry.buf
        cur = None
        for m in entry.members:
            kind = m.kind
            if kind == "relu":
                x = cur if m.carrier_pos == 0 else self._resolve(m.srcs[0], inputs)
                mask = m.mask
                if mask is not None and x.shape == mask.shape:
                    np.greater(x, 0, out=mask)
                else:
                    mask = x > 0
                # x * mask, matching the eager kernel (keeps -0.0 -> +0.0).
                # A boolean mask never changes the result dtype, so the
                # in-place decision is a plain attribute compare.
                if x.shape == buf.shape and x.dtype == buf.dtype:
                    cur = np.multiply(x, mask, out=buf)
                else:
                    cur = np.multiply(x, mask)
            elif kind == "neg":
                x = cur if m.carrier_pos == 0 else self._resolve(m.srcs[0], inputs)
                cur = _into_unary(np.negative, x, buf)
            else:
                a = cur if m.srcs[0] is _CARRIER else self._resolve(m.srcs[0], inputs)
                b = cur if m.srcs[1] is _CARRIER else self._resolve(m.srcs[1], inputs)
                if kind == "mul":
                    if m.snap is not None:
                        # Snapshot the carrier input before it is overwritten;
                        # the backward needs it for the external operand's grad.
                        m.snapped = _stash(
                            m.snap, a if m.carrier_pos == 0 else b
                        )
                    cur = _into_binary(np.multiply, a, b, buf)
                elif kind == "add":
                    cur = _into_binary(np.add, a, b, buf)
                else:  # sub
                    cur = _into_binary(np.subtract, a, b, buf)
        self.values[entry.out_slot] = cur

    # -- backward --------------------------------------------------------
    def _accumulate(self, store, key, bufkey, g) -> None:
        cur = store[key]
        if cur is None:
            # First contribution: stored by reference, exactly like eager.
            store[key] = g
            return
        if cur.dtype == g.dtype:
            buf = self._accbufs.get(bufkey)
            if buf is None or buf.shape != cur.shape or buf.dtype != cur.dtype:
                buf = self.lease.acquire(cur.shape, cur.dtype)
                self._accbufs[bufkey] = buf
            np.add(cur, g, out=buf)
            store[key] = buf
        else:
            # Mixed dtypes promote, matching the eager cold path.
            store[key] = cur + g

    def _run_backward(self, inputs):
        gslots: list = [None] * self.num_slots
        accvals: list = [None] * len(self.acc_entries)
        gslots[self.root_slot] = self.root_seed
        accumulate = self._accumulate
        ndarray = np.ndarray
        for entry in self.backward_entries:
            g = gslots[entry.out_slot]
            if g is None:
                continue
            if type(entry) is _BackwardOp:
                grads = entry.backward(entry.ctx, g)
                if not isinstance(grads, tuple):
                    grads = (grads,)
                for pos, kind, key, single in entry.targets:
                    gi = grads[pos]
                    if gi is None:
                        continue
                    if type(gi) is not ndarray:
                        gi = np.asarray(gi)
                    if kind == 0:
                        if single:
                            gslots[key] = gi
                        else:
                            accumulate(gslots, key, (0, key), gi)
                    elif single:
                        accvals[key] = gi
                    else:
                        accumulate(accvals, key, (1, key), gi)
            else:
                self._run_fused_backward(entry, gslots, accvals, inputs)
        return accvals

    def _run_fused_backward(self, entry, gslots, accvals, inputs) -> None:
        gradbuf = entry.gradbuf
        carry = gslots[entry.out_slot]
        for m in reversed(entry.members):
            kind = m.kind
            cp = m.carrier_pos
            for pos, tkind, tkey, single in m.targets:
                shape = m.arg_shapes[pos]
                scratch = m.scratch.get(pos)
                if kind == "add" or (kind == "sub" and pos == 0):
                    # Eager returns grad_output itself (unbroadcast is the
                    # identity for equal shapes); copy so later in-place
                    # carry updates cannot corrupt the stored gradient.
                    gi = _stash(scratch, carry) if carry.shape == shape \
                        else unbroadcast(carry, shape)
                elif kind == "sub":  # pos == 1
                    gi = unbroadcast(
                        _into_unary(np.negative, carry, scratch), shape
                    )
                elif kind == "mul":
                    other_pos = 1 - pos
                    if cp is not None and other_pos == cp:
                        other = m.snapped
                    else:
                        other = self._resolve(m.srcs[other_pos], inputs)
                    gi = unbroadcast(
                        _into_binary(np.multiply, carry, other, scratch), shape
                    )
                elif kind == "relu":
                    mask = m.mask
                    if (
                        scratch is not None
                        and carry.shape == scratch.shape
                        and carry.dtype == scratch.dtype
                    ):
                        gi = np.multiply(carry, mask, out=scratch)
                    else:
                        gi = _into_binary(np.multiply, carry, mask, scratch)
                else:  # neg
                    gi = _into_unary(np.negative, carry, scratch)
                if tkind == 0:
                    if single:
                        gslots[tkey] = gi
                    else:
                        self._accumulate(gslots, tkey, (0, tkey), gi)
                elif single:
                    accvals[tkey] = gi
                else:
                    self._accumulate(accvals, tkey, (1, tkey), gi)
            if cp is None:
                break  # chain head: nothing upstream inside the chain
            if kind == "mul":
                other = self._resolve(m.srcs[1 - cp], inputs)
                carry = _into_binary(np.multiply, carry, other, gradbuf)
            elif kind == "relu":
                mask = m.mask
                if carry.shape == gradbuf.shape and carry.dtype == gradbuf.dtype:
                    carry = np.multiply(carry, mask, out=gradbuf)
                else:
                    carry = _into_binary(np.multiply, carry, mask, gradbuf)
            elif kind == "neg" or (kind == "sub" and cp == 1):
                carry = _into_unary(np.negative, carry, gradbuf)
            # add / sub with carrier on the left pass the carry through.

    # -- leaf finalisation ----------------------------------------------
    def _finalize_param(self, tensor, g, bufkey) -> None:
        """Fold an accumulated gradient into ``tensor.grad``, engine-style."""
        existing = tensor.grad
        if existing is None:
            accbufs = self._accbufs
            if g.dtype == self._accum and g is accbufs.get(bufkey):
                # Multi-contribution gradient already summed into a pooled
                # accumulation buffer in the accum dtype: donate the buffer
                # instead of copying, exactly as the eager engine donates
                # its own accumulation buffers.  The next replay leases a
                # fresh one, so the donated array stays valid for as long
                # as the caller keeps ``tensor.grad`` alive.
                del accbufs[bufkey]
                self.lease.donate(g)
                tensor.grad = g
            else:
                tensor.grad = g.astype(self._accum, copy=True)
        elif self._hot and (
            existing.dtype == g.dtype
            or np.result_type(existing.dtype, g.dtype) == existing.dtype
        ):
            np.add(existing, g, out=existing)
        else:
            tensor.grad = existing + g

    # -- entry point -----------------------------------------------------
    def replay(self, bound: _Bound) -> StepResult:
        inputs = bound.raws
        previous = is_grad_enabled()
        set_grad_enabled(True)
        try:
            self._run_forward(inputs)
        finally:
            set_grad_enabled(previous)
        accvals = self._run_backward(inputs)
        for index, payload in self._param_accs:
            g = accvals[index]
            if g is not None:
                self._finalize_param(payload, g, (1, index))
        acc = self._accum
        input_grads = tuple(
            None if index is None or accvals[index] is None
            else accvals[index].astype(acc, copy=True)
            for index in self.grad_input_accs
        )
        outputs = []
        for tag, payload in self.output_sources:
            if tag == _SLOT:
                # Slot buffers are overwritten by the next replay; hand the
                # caller a private copy, as eager hands out fresh arrays.
                outputs.append(self.values[payload].copy())
            elif tag == _INPUT:
                outputs.append(inputs[payload])
            elif tag == _LEAF:
                outputs.append(payload.data)
            else:
                outputs.append(payload)
        return StepResult(tuple(outputs), input_grads, True)


def _build_program(tracer, bound, outputs, grad_inputs, consume, fuse):
    """Compile one traced step into a :class:`_TapeProgram`.

    Raises :class:`TapeUnsupported` when the trace cannot be replayed
    faithfully; the caller falls back to eager.
    """
    applies = tracer.applies
    if tracer.poisoned:
        raise TapeUnsupported(tracer.poisoned)
    if not applies:
        raise TapeUnsupported("traced step recorded no autograd ops")
    for cls, _ctx, _args, _kwargs, _out in applies:
        if cls.__name__ in NON_REPLAYABLE:
            raise TapeUnsupported(
                f"{cls.__name__} re-randomises every call and cannot be replayed"
            )

    # ---- slot assignment ------------------------------------------------
    num_slots = len(applies)
    slot_of: dict = {}     # id(out Tensor) -> slot index
    ctx_to_op: dict = {}   # id(ctx) -> op index
    for index, (_cls, ctx, _args, _kwargs, out) in enumerate(applies):
        slot_of[id(out)] = index
        ctx_to_op[id(ctx)] = index

    # ---- input identity map --------------------------------------------
    input_of: dict = {}
    for index, (arg, raw) in enumerate(zip(bound.args, bound.raws)):
        input_of[id(arg)] = index
        input_of[id(raw)] = index
        if isinstance(arg, Tensor):
            input_of[id(arg.data)] = index

    def source_of(obj):
        if isinstance(obj, Tensor):
            slot = slot_of.get(id(obj))
            if slot is not None:
                return (_SLOT, slot)
            index = input_of.get(id(obj))
            if index is None:
                index = input_of.get(id(obj.data))
            if index is not None:
                return (_INPUT, index)
            if obj.requires_grad:
                return (_LEAF, obj)
            return (_CONST, obj.data)
        if isinstance(obj, np.ndarray):
            index = input_of.get(id(obj))
            if index is not None:
                return (_INPUT, index)
        return (_CONST, obj)

    op_sources = [
        tuple(source_of(a) for a in args) for _cls, _ctx, args, _kw, _out in applies
    ]

    # ---- outputs --------------------------------------------------------
    output_sources = []
    for out in outputs:
        src = source_of(out)
        if src[0] == _CONST:
            raise TapeUnsupported(
                "a step output was computed outside the autograd graph; "
                "replay would freeze it"
            )
        output_sources.append(src)
    output_sources = tuple(output_sources)
    if output_sources[0][0] != _SLOT:
        raise TapeUnsupported("the loss output is not produced by a traced op")
    root_slot = output_sources[0][1]
    root_data = outputs[0].data

    # ---- every input must be visible to the graph -----------------------
    seen_inputs = {
        payload
        for sources in op_sources
        for tag, payload in sources
        if tag == _INPUT
    }
    seen_inputs.update(
        payload for tag, payload in output_sources if tag == _INPUT
    )
    for index in range(len(bound.args)):
        if index not in seen_inputs:
            raise TapeUnsupported(
                f"step input {index} never reached the autograd graph; the "
                "step depends on it through opaque (frozen) computation"
            )

    # ---- backward entries ----------------------------------------------
    grad_input_set = set(grad_inputs)
    acc_entries: list = []
    acc_index: dict = {}

    def acc_for(key, entry):
        index = acc_index.get(key)
        if index is None:
            index = len(acc_entries)
            acc_index[key] = index
            acc_entries.append(entry)
        return index

    backward_entries: list = []
    for ctx in tracer.backwards:
        op_index = ctx_to_op.get(id(ctx))
        if op_index is None:
            raise TapeUnsupported(
                "backward visited a graph node recorded outside this step"
            )
        cls = applies[op_index][0]
        targets = []
        for pos, (arg, needs) in enumerate(
            zip(ctx.inputs, ctx.needs_input_grad)
        ):
            if not needs or not isinstance(arg, Tensor):
                continue
            slot = slot_of.get(id(arg))
            if slot is not None:
                targets.append((pos, 0, slot))
                continue
            index = input_of.get(id(arg))
            if index is not None and index in grad_input_set:
                targets.append((pos, 1, acc_for(("input", index), ("input", index))))
            elif arg.requires_grad:
                targets.append((pos, 1, acc_for(("param", id(arg)), ("param", arg))))
        backward_entries.append(
            _BackwardOp(cls.backward, ctx, op_index, tuple(targets))
        )

    # ---- dead code elimination ------------------------------------------
    if consume == "all":
        needed_accs = set(range(len(acc_entries)))
    else:
        wanted = set(consume)
        kind_name = {"param": "params", "input": "inputs"}
        needed_accs = {
            index
            for index, (kind, _payload) in enumerate(acc_entries)
            if kind_name[kind] in wanted
        }
    kept_reversed: list = []
    needed_ops: set = set()
    dropped_entries = 0
    for entry in reversed(backward_entries):
        useful = []
        for target in entry.targets:
            _pos, kind, key = target
            if (kind == 1 and key in needed_accs) or (
                kind == 0 and key in needed_ops
            ):
                useful.append(target)
        if not useful:
            dropped_entries += 1
            continue
        if len(useful) != len(entry.targets):
            useful_pos = {pos for pos, _kind, _key in useful}
            dead = {
                pos for pos, _kind, _key in entry.targets
            } - useful_pos
            entry.ctx.needs_input_grad = tuple(
                False if pos in dead else needs
                for pos, needs in enumerate(entry.ctx.needs_input_grad)
            )
            entry.targets = tuple(useful)
        kept_reversed.append(entry)
        needed_ops.add(entry.out_slot)
    kept_entries = list(reversed(kept_reversed))
    if dropped_entries:
        tel.counter("tape.dce.dropped", dropped_entries)

    # ---- post-DCE contribution counts (fusion safety) --------------------
    counts: dict = {(0, root_slot): 1}  # the seed is the root's first grad
    for entry in kept_entries:
        for _pos, kind, key in entry.targets:
            counts[(kind, key)] = counts.get((kind, key), 0) + 1

    # Tag each target with whether it is its slot's only contribution:
    # single-contribution gradients are stored by reference at replay time
    # (exactly what _accumulate's first-touch branch does), skipping the
    # accumulation machinery and its buffer bookkeeping entirely.
    for entry in kept_entries:
        entry.targets = tuple(
            (pos, kind, key, counts[(kind, key)] == 1)
            for pos, kind, key in entry.targets
        )

    lease = get_workspace().lease()
    try:
        forward_entries, backward_out = _assemble(
            applies, op_sources, kept_entries, ctx_to_op, output_sources,
            counts, lease, fuse,
        )
        root_seed = lease.full(root_data.shape, root_data.dtype, 1)
    except TapeUnsupported:
        lease.release()
        raise

    grad_input_accs = tuple(
        acc_index.get(("input", index)) for index in grad_inputs
    )

    # Replay never reads ctx.inputs (every backward works off ctx.saved);
    # dropping them frees the traced activations between replays.
    for _cls, ctx, _args, _kwargs, _out in applies:
        ctx.inputs = ()

    return _TapeProgram(
        num_slots, forward_entries, backward_out, root_slot, root_seed,
        output_sources, acc_entries, grad_input_accs, lease,
    )


def _assemble(applies, op_sources, kept_entries, ctx_to_op, output_sources,
              counts, lease, fuse):
    """Lay out forward/backward entry lists, fusing elementwise chains."""
    num_ops = len(applies)
    out_meta = [
        (out.data.shape, out.data.dtype) for _c, _ctx, _a, _k, out in applies
    ]
    kept_by_op = {entry.out_slot: entry for entry in kept_entries}

    chains = _plan_chains(
        applies, op_sources, out_meta, output_sources, kept_by_op, counts,
    ) if fuse else []

    member_of: dict = {}
    chain_by_tail: dict = {}
    for chain in chains:
        for op_index in chain:
            member_of[op_index] = chain
        chain_by_tail[chain[-1]] = chain
    if chains:
        tel.counter("tape.fusion.chains", len(chains))
        tel.counter("tape.fusion.ops", sum(len(c) for c in chains))

    # Build the fused member objects (shared between forward and backward).
    fused_forward: dict = {}   # tail op index -> _FusedForward
    fused_backward: dict = {}  # tail op index -> _FusedBackward
    for chain in chains:
        tail = chain[-1]
        shape, dtype = out_meta[tail]
        members = []
        has_backward = chain[0] in kept_by_op
        for position, op_index in enumerate(chain):
            cls = applies[op_index][0]
            kind = _FUSABLE[cls]
            sources = list(op_sources[op_index])
            carrier_pos = None
            if position > 0:
                previous = chain[position - 1]
                for pos, (tag, payload) in enumerate(sources):
                    if tag == _SLOT and payload == previous:
                        carrier_pos = pos
                        sources[pos] = _CARRIER
                        break
            args = applies[op_index][2]
            arg_shapes = tuple(
                a.data.shape if isinstance(a, Tensor) else np.shape(a)
                for a in args
            )
            targets = ()
            if has_backward:
                entry = kept_by_op[op_index]
                targets = tuple(
                    t for t in entry.targets
                    if carrier_pos is None or t[0] != carrier_pos
                )
            member = _FusedMember(
                kind, tuple(sources), carrier_pos, arg_shapes, targets
            )
            if kind == "relu":
                member.mask = lease.acquire(shape, np.bool_)
            if has_backward:
                if kind == "mul" and carrier_pos is not None and targets:
                    member.snap = lease.acquire(shape, dtype)
                for pos, _kind, _key, _single in targets:
                    member.scratch[pos] = lease.acquire(shape, dtype)
            members.append(member)
        members = tuple(members)
        fused_forward[tail] = _FusedForward(
            members, tail, lease.acquire(shape, dtype)
        )
        if has_backward:
            fused_backward[tail] = _FusedBackward(
                members, tail, lease.acquire(shape, dtype)
            )

    forward_entries: list = []
    for op_index in range(num_ops):
        chain = member_of.get(op_index)
        if chain is None:
            cls, ctx, _args, kwargs, _out = applies[op_index]
            forward_entries.append(
                _ForwardOp(cls.forward, ctx, op_sources[op_index], kwargs, op_index)
            )
        elif op_index == chain[-1]:
            forward_entries.append(fused_forward[op_index])

    backward_out: list = []
    for entry in kept_entries:
        chain = member_of.get(entry.out_slot)
        if chain is None:
            backward_out.append(entry)
        elif entry.out_slot == chain[-1]:
            backward_out.append(fused_backward[entry.out_slot])
    return forward_entries, backward_out


def _plan_chains(applies, op_sources, out_meta, output_sources, kept_by_op,
                 counts):
    """Find maximal fusable elementwise chains that are safe to fuse.

    A chain is a run of ops where each member's output feeds exactly one
    consumer (the next member), every member output has the chain's shape
    and dtype, and — when the chain participates in backward — every
    gradient the fused kernel writes outside the chain has exactly one
    contribution (so writing it at the tail's backward position instead of
    each member's is order-independent and bit-identical).
    """
    consumers: dict = {}
    for op_index, sources in enumerate(op_sources):
        for pos, (tag, payload) in enumerate(sources):
            if tag == _SLOT:
                consumers.setdefault(payload, []).append((op_index, pos))
    output_slots = {
        payload for tag, payload in output_sources if tag == _SLOT
    }

    def fusable(op_index):
        cls, _ctx, _args, kwargs, _out = applies[op_index]
        return cls in _FUSABLE and not kwargs

    chains = []
    used: set = set()
    for head in range(len(applies)):
        if head in used or not fusable(head):
            continue
        chain = [head]
        shape, dtype = out_meta[head]
        while True:
            tail = chain[-1]
            cons = consumers.get(tail, ())
            if len(cons) != 1 or tail in output_slots:
                break
            candidate = cons[0][0]
            if (
                candidate in used
                or not fusable(candidate)
                or out_meta[candidate] != (shape, dtype)
            ):
                break
            chain.append(candidate)
        if len(chain) < 2:
            continue
        if _chain_backward_safe(chain, kept_by_op, op_sources, counts):
            chains.append(chain)
            used.update(chain)
    return chains


def _chain_backward_safe(chain, kept_by_op, op_sources, counts):
    """Whether a candidate chain's backward can be fused bit-identically."""
    have = [op_index in kept_by_op for op_index in chain]
    if not any(have):
        return True  # forward-only chain: nothing to get wrong
    if not all(have):
        return False  # partially-live backward: fuse nothing
    for position, op_index in enumerate(chain):
        entry = kept_by_op[op_index]
        carrier_pos = None
        if position > 0:
            previous = chain[position - 1]
            for pos, (tag, payload) in enumerate(op_sources[op_index]):
                if tag == _SLOT and payload == previous:
                    carrier_pos = pos
                    break
            if carrier_pos is None:
                return False  # carrier hidden (e.g. same tensor twice)
        for pos, kind, key, _single in entry.targets:
            if pos == carrier_pos:
                continue  # internal edge, eliminated by fusion
            if counts.get((kind, key), 0) != 1:
                return False  # multi-contribution: order would matter
    return True


class CompiledStep:
    """Trace-once, replay-many wrapper around a forward/backward step.

    Parameters
    ----------
    fn:
        The step body.  Called with one argument per step input — float
        arrays arrive wrapped as :class:`Tensor` (requiring grad when
        named in ``grad_inputs``), integer arrays as raw ``int64``
        ndarrays.  Must return the scalar loss tensor, or a tuple whose
        first element is the loss; every returned value becomes a raw
        array in :attr:`StepResult.outputs`.
    grad_inputs:
        Indices of step inputs whose gradients the caller wants back.
    consume:
        Which gradients the tape must preserve: ``"all"`` (default,
        bit-identical to eager including parameter ``.grad`` side
        effects) or an iterable of ``{"params", "inputs"}`` — anything
        else is dead-code-eliminated from the replayed backward.
    max_variants:
        LRU capacity of compiled variants keyed by input signature.
    guard:
        Optional zero-arg callable returning a hashable token folded into
        the signature; use it to invalidate on state the tape cannot see
        (e.g. ``model.training``).
    fuse:
        Whether to fuse elementwise chains (on by default).
    name:
        Label used in telemetry span attributes.
    """

    def __init__(self, fn: Callable, *, grad_inputs=(), consume="all",
                 max_variants: int = 4, guard: Optional[Callable] = None,
                 fuse: bool = True, name: Optional[str] = None) -> None:
        self._fn = fn
        self._grad_inputs = tuple(grad_inputs)
        self._consume = consume if consume == "all" else tuple(consume)
        self._max_variants = int(max_variants)
        self._guard = guard
        self._fuse = bool(fuse)
        self.name = name or getattr(fn, "__name__", "step")
        self._variants = LRUCache(
            self._max_variants, on_evict=self._evict_variant
        )
        self._traces = 0
        self._hits = 0
        self._disabled: Optional[str] = None

    # -- bookkeeping ------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Trace/hit/variant counters (tests and diagnostics)."""
        return {
            "traces": self._traces,
            "hits": self._hits,
            "variants": len(self._variants),
            "disabled": self._disabled,
        }

    def reset(self) -> None:
        """Drop every compiled variant and re-enable compilation."""
        for program in self._variants.values():
            program.release()
        self._variants.clear()
        self._traces = 0
        self._hits = 0
        self._disabled = None

    @staticmethod
    def _evict_variant(_signature, program) -> None:
        """Capacity eviction from the variant LRU: free the pinned buffers."""
        program.release()
        tel.counter("tape.cache.evictions")

    def _disable(self, reason: str) -> None:
        for program in self._variants.values():
            program.release()
        self._variants.clear()
        self._disabled = reason
        tel.counter("tape.disabled")

    # -- input binding ----------------------------------------------------
    def _bind(self, inputs) -> _Bound:
        grad_inputs = self._grad_inputs
        raws = []
        for index, value in enumerate(inputs):
            if isinstance(value, Tensor):
                value = value.data
            arr = np.asarray(value)
            kind = arr.dtype.kind
            if kind != "f":
                if kind in "iu":
                    arr = arr.astype(np.int64, copy=False)
                if index in grad_inputs:
                    raise TypeError(
                        f"grad input {index} must be floating point, "
                        f"got dtype {arr.dtype}"
                    )
            raws.append(arr)
        return _Bound(tuple(raws), grad_inputs)

    def _signature(self, bound: _Bound):
        # np.dtype objects hash and compare by equivalence, so they key
        # the variant cache directly without string conversion.
        return (
            tuple((raw.shape, raw.dtype) for raw in bound.raws),
            np.dtype(compute_dtype()),
            np.dtype(accum_dtype()),
            hotpaths_enabled(),
            self._guard() if self._guard is not None else None,
        )

    # -- eager path -------------------------------------------------------
    def _run_eager(self, bound: _Bound):
        result = self._fn(*bound.args)
        outputs = result if isinstance(result, tuple) else (result,)
        root = outputs[0]
        if not isinstance(root, Tensor) or not root.requires_grad:
            raise RuntimeError(
                f"{self.name}: the step's first output must be a tensor "
                "requiring grad (the loss to backpropagate)"
            )
        root.backward()
        return outputs

    def _eager_result(self, bound: _Bound, outputs=None) -> StepResult:
        if outputs is None:
            outputs = self._run_eager(bound)
        raw = tuple(
            out.data if isinstance(out, Tensor) else np.asarray(out)
            for out in outputs
        )
        grads = tuple(bound.args[index].grad for index in self._grad_inputs)
        return StepResult(raw, grads, False)

    # -- trace path -------------------------------------------------------
    def _trace(self, bound: _Bound, signature) -> StepResult:
        tracer = _Tracer()
        previous = set_tracer(tracer)
        try:
            outputs = self._run_eager(bound)
        finally:
            set_tracer(previous)
        try:
            program = _build_program(
                tracer, bound, outputs, self._grad_inputs, self._consume,
                self._fuse,
            )
        except TapeUnsupported as exc:
            tel.counter("tape.unsupported")
            self._disable(str(exc))
            return self._eager_result(bound, outputs)
        self._variants.put(signature, program)
        return self._eager_result(bound, outputs)

    # -- entry point ------------------------------------------------------
    def __call__(self, *inputs) -> StepResult:
        bound = self._bind(inputs)
        if self._disabled is not None or active_tracer() is not None:
            # Permanently fallen back, or an outer tape is tracing: run
            # eagerly so the outer tracer observes every op.
            tel.counter("tape.fallback.eager")
            return self._eager_result(bound)
        signature = self._signature(bound)
        program = self._variants.get(signature)
        if program is not None:
            self._hits += 1
            tel.counter("tape.cache.hits")
            with tel.span("tape.replay", step=self.name):
                return program.replay(bound)
        tel.counter("tape.cache.misses")
        self._traces += 1
        if self._traces >= _THRASH_LIMIT and self._hits < self._traces:
            self._disable(
                "input signatures churn every call; compiling cannot pay off"
            )
            tel.counter("tape.fallback.eager")
            return self._eager_result(bound)
        with tel.span("tape.trace", step=self.name):
            return self._trace(bound, signature)
