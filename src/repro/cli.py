"""Command-line interface: regenerate any paper artefact from the shell.

Usage::

    python -m repro table1  --dataset digits --scale medium
    python -m repro figure1 --dataset fashion --scale smoke
    python -m repro figure2 --dataset digits
    python -m repro ablate  --knob step_size
    python -m repro audit   --defense proposed
    python -m repro table1  --telemetry run.jsonl
    python -m repro report  run.jsonl
    python -m repro report  run.jsonl --trace
    python -m repro profile table1 --scale smoke
    python -m repro bench diff

Artefacts are printed and optionally saved as JSON via ``--save``.
``--telemetry PATH`` records the run (spans, counters, events) as a JSONL
run record; ``repro report PATH`` renders it into the Table-I-style
per-epoch/per-phase timing summary, and ``--trace`` renders the merged
cross-process trace trees instead (workers and serving threads spool
span records beside the run record).  ``repro profile <subcommand>`` (or
``--profile PATH`` on any artefact subcommand) samples all threads and
writes a collapsed-stack flamegraph profile; ``repro bench diff``
compares ``*.bench.json`` benchmark records against the committed
baselines in ``benchmarks/results/`` and fails on regressions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import contextlib

from .experiments import (
    paper_scale,
    run_figure1,
    run_figure2,
    run_reset_interval_ablation,
    run_step_size_ablation,
    run_table1,
    smoke_scale,
)
from .runtime import precision
from .telemetry import capture as tel_capture

__all__ = ["main", "build_parser"]


def _config_for(args) -> "ExperimentConfig":
    dtype = getattr(args, "dtype", "") or None
    telemetry = getattr(args, "telemetry", "") or None
    workers = getattr(args, "workers", None) or None
    common = dict(
        dtype=dtype,
        telemetry=telemetry,
        workers=workers,
        stream=bool(getattr(args, "stream", False)),
        shard_size=getattr(args, "shard_size", None) or None,
        data_budget_mb=getattr(args, "data_budget_mb", None) or None,
    )
    if args.scale == "paper":
        return paper_scale(args.dataset, **common)
    if args.scale == "medium":
        return paper_scale(
            args.dataset,
            train_per_class=150,
            test_per_class=40,
            epochs=60,
            **common,
        )
    return smoke_scale(args.dataset, **common)


def _training_setup(config):
    """Build ``(train_loader, test_set)`` honouring the streaming flags.

    The single place the CLI subcommands that train directly (audit,
    serve) decide between the in-memory path and the streaming pipeline;
    the experiment runners make the same decision inside
    :class:`~repro.experiments.ClassifierPool`.
    """
    from .data import (
        DataLoader,
        SyntheticSource,
        load_dataset,
        load_test_split,
    )
    from .data.synthetic import dataset_num_classes

    if config.stream:
        source = SyntheticSource(
            config.dataset,
            num_examples=(
                dataset_num_classes(config.dataset) * config.train_per_class
            ),
            shard_size=config.resolved_shard_size,
            seed=config.seed,
        )
        loader = DataLoader(
            source,
            batch_size=config.batch_size,
            rng=config.seed,
            budget_bytes=config.budget_bytes,
        )
        test = load_test_split(
            config.dataset,
            test_per_class=config.test_per_class,
            seed=config.seed,
        )
        return loader, test
    train, test = load_dataset(
        config.dataset,
        train_per_class=config.train_per_class,
        test_per_class=config.test_per_class,
        seed=config.seed,
    )
    loader = DataLoader(
        train, batch_size=config.batch_size, rng=config.seed
    )
    return loader, test


def _defense_kwargs(config, defense: str) -> dict:
    if defense == "vanilla":
        return {}
    kwargs = {"warmup_epochs": config.warmup_epochs}
    if defense == "proposed" and config.budget_bytes is not None:
        kwargs["delta_budget_bytes"] = config.budget_bytes
        kwargs["delta_block_size"] = config.resolved_shard_size
    return kwargs


def _cmd_table1(args) -> int:
    result = run_table1(_config_for(args), verbose=args.verbose)
    print(result.render())
    if args.save:
        result.save(args.save)
    return 0


def _cmd_figure1(args) -> int:
    result = run_figure1(_config_for(args), verbose=args.verbose)
    print(result.render())
    if args.save:
        result.save(args.save)
    return 0


def _cmd_figure2(args) -> int:
    result = run_figure2(_config_for(args), verbose=args.verbose)
    print(result.render())
    if args.save:
        result.save(args.save)
    return 0


def _cmd_ablate(args) -> int:
    config = _config_for(args)
    runner = (
        run_step_size_ablation
        if args.knob == "step_size"
        else run_reset_interval_ablation
    )
    result = runner(config, verbose=args.verbose)
    print(result.render())
    if args.save:
        result.save(args.save)
    return 0


def _cmd_audit(args) -> int:
    """Train one defense and run the gradient-masking diagnostics on it."""
    from .defenses import build_trainer
    from .eval import RobustnessEvaluator, gradient_masking_report
    from .models import build_model

    config = _config_for(args)
    loader, test = _training_setup(config)
    model = build_model(config.model, seed=config.seed)
    trainer = build_trainer(
        args.defense, model, epsilon=config.resolved_epsilon,
        lr=config.lr, **_defense_kwargs(config, args.defense),
    )
    if config.resolved_workers > 1:
        from .parallel import DataParallelTrainer

        trainer = DataParallelTrainer(
            trainer, num_workers=config.resolved_workers
        )
    try:
        trainer.fit(
            loader,
            epochs=config.epochs,
            verbose=args.verbose,
        )
    finally:
        close = getattr(trainer, "close", None)
        if close is not None:
            close()
    x, y = test.arrays()
    if args.attack:
        suite = RobustnessEvaluator.from_specs(
            args.attack, epsilon=config.resolved_epsilon
        )
    else:
        suite = RobustnessEvaluator.paper_suite(config.resolved_epsilon)
    print(f"robust accuracy: {suite.evaluate(model, x, y)}")
    report = gradient_masking_report(
        model, x, y, epsilon=config.resolved_epsilon
    )
    print(report.render())
    return 1 if report.suspicious else 0


def _cmd_serve(args) -> int:
    """Boot the micro-batched inference + audit service (``repro serve``)."""
    from .defenses import build_trainer
    from .models import build_model
    from .serving import InferenceService, ServingServer

    config = _config_for(args)
    model = build_model(config.model, seed=config.seed)
    if args.checkpoint:
        from .utils import load_state_dict

        model.load_state_dict(load_state_dict(args.checkpoint))
        print(f"loaded checkpoint {args.checkpoint}")
    elif not args.untrained:
        loader, _test = _training_setup(config)
        trainer = build_trainer(
            args.defense, model, epsilon=config.resolved_epsilon,
            lr=config.lr, **_defense_kwargs(config, args.defense),
        )
        print(
            f"training {config.model} with defense {args.defense!r} "
            f"({config.epochs} epochs at {args.scale} scale)..."
        )
        trainer.fit(
            loader,
            epochs=config.epochs,
            verbose=args.verbose,
        )
    service = InferenceService(
        model,
        max_batch_size=args.max_batch_size,
        max_wait_us=args.max_wait_us,
        queue_depth=args.queue_depth,
        timeout_s=args.timeout_s,
        cache_size=args.cache_size,
        use_tape=True if args.compiled else None,
        epsilon=config.resolved_epsilon,
        name=config.model,
    )
    server = ServingServer(
        (args.host, args.port), service, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    print(
        f"serving {config.model} on http://{host}:{port}  "
        f"(batch<= {args.max_batch_size}, wait<= {args.max_wait_us}us, "
        f"queue<= {args.queue_depth}, cache {args.cache_size})"
    )
    print("endpoints: POST /classify  POST /audit  GET /healthz  GET /metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (draining in-flight requests)...")
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_report(args) -> int:
    """Render a telemetry JSONL run record into the timing report."""
    from .telemetry import build_report

    if args.trace is not None:
        from .telemetry.trace import render_trace

        print(render_trace(args.path, trace_id=args.trace or None))
        return 0
    report = build_report(args.path)
    print(report.render(per_epoch=not args.summary))
    if args.csv:
        import csv

        from .telemetry.report import PHASES

        with open(args.csv, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["trainer", "epoch", "total_s", *[f"{p}_s" for p in PHASES],
                 "other_s"]
            )
            for row in report.epochs:
                writer.writerow(
                    [row.trainer, row.epoch, f"{row.total:.6f}",
                     *[f"{row.phases[p]:.6f}" for p in PHASES],
                     f"{row.other:.6f}"]
                )
        print(f"per-epoch CSV written to {args.csv}")
    return 0


def _cmd_profile(args) -> int:
    """Run another subcommand under the sampling profiler."""
    from .telemetry.profiler import DEFAULT_HZ, SamplingProfiler

    rest = [a for a in args.args if a != "--"]
    if not rest:
        print("usage: repro profile [--out PATH] [--hz N] <subcommand> ...")
        return 2
    profiler = SamplingProfiler(hz=args.hz or DEFAULT_HZ)
    profiler.start()
    try:
        code = main(rest)
    finally:
        profiler.stop()
    path = profiler.save(args.out)
    print(
        f"sampling profile: {profiler.samples} sample(s) at "
        f"{profiler.hz} Hz -> {path}"
    )
    for frame, count in profiler.top(5):
        print(f"  {count:>6}  {frame}")
    return code


def _cmd_bench_diff(args) -> int:
    """Compare fresh benchmark records against the committed baselines."""
    from .telemetry.bench import diff_records, load_bench_dir, render_diff

    baseline = load_bench_dir(args.baseline)
    if not baseline:
        print(f"no *.bench.json baseline records under {args.baseline}")
        return 2
    current = load_bench_dir(args.current or args.baseline)
    rows = diff_records(baseline, current, tolerance=args.tolerance)
    print(render_diff(rows, tolerance=args.tolerance))
    return 1 if any(row.status == "regression" for row in rows) else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce artefacts from Liu et al. (DSN-W 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument(
            "--dataset", choices=("digits", "fashion"), default="digits"
        )
        p.add_argument(
            "--scale", choices=("smoke", "medium", "paper"), default="medium"
        )
        p.add_argument("--save", default="", help="JSON output path")
        p.add_argument("--verbose", action="store_true")
        p.add_argument(
            "--dtype",
            choices=("float32", "float64"),
            default="",
            help="floating precision for the whole run "
            "(default: the ambient runtime policy, float64)",
        )
        p.add_argument(
            "--telemetry",
            default="",
            metavar="PATH",
            help="record the run's telemetry (spans, counters, events) as "
            "a JSONL run record at PATH; render it with 'repro report'",
        )
        p.add_argument(
            "--profile",
            default="",
            metavar="PATH",
            help="sample every thread during the run and write a "
            "collapsed-stack (flamegraph-format) profile to PATH",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="worker processes: defended classifiers train "
            "data-parallel and sweeps run one grid cell per worker "
            "(default: the REPRO_WORKERS environment variable, else 1)",
        )
        p.add_argument(
            "--stream",
            action="store_true",
            help="train from a streaming shard source that regenerates "
            "data on the fly instead of materialising the train split",
        )
        p.add_argument(
            "--shard-size",
            type=int,
            default=None,
            metavar="N",
            help="examples per streamed shard (default: 512; "
            "only meaningful with --stream)",
        )
        p.add_argument(
            "--data-budget-mb",
            type=float,
            default=None,
            metavar="MB",
            help="memory budget for resident shards and the epochwise "
            "delta store, in MiB (default: unbounded; only meaningful "
            "with --stream)",
        )

    p_table = sub.add_parser("table1", help="regenerate Table I")
    add_common(p_table)
    p_table.set_defaults(func=_cmd_table1)

    p_fig1 = sub.add_parser("figure1", help="regenerate Figure 1")
    add_common(p_fig1)
    p_fig1.set_defaults(func=_cmd_figure1)

    p_fig2 = sub.add_parser("figure2", help="regenerate Figure 2")
    add_common(p_fig2)
    p_fig2.set_defaults(func=_cmd_figure2)

    p_abl = sub.add_parser("ablate", help="design-choice ablations")
    add_common(p_abl)
    p_abl.add_argument(
        "--knob", choices=("step_size", "reset_interval"),
        default="step_size",
    )
    p_abl.set_defaults(func=_cmd_ablate)

    p_audit = sub.add_parser(
        "audit", help="train one defense + masking diagnostics"
    )
    add_common(p_audit)
    p_audit.add_argument(
        "--defense",
        default="proposed",
        help="defense registry name (e.g. proposed, atda, bim10_adv)",
    )
    p_audit.add_argument(
        "--attack",
        action="append",
        default=None,
        metavar="SPEC",
        help="attack spec 'name:param=value,...' from the attack registry "
        "(repeatable, e.g. --attack fgsm --attack pgd:num_steps=20); "
        "default: the Table I suite (original, fgsm, bim10, bim30)",
    )
    p_audit.set_defaults(func=_cmd_audit)

    p_serve = sub.add_parser(
        "serve",
        help="serve classify/audit over HTTP with micro-batching",
    )
    add_common(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 picks an ephemeral port, printed at startup)",
    )
    p_serve.add_argument(
        "--defense", default="vanilla",
        help="defense registry name to train the served model with",
    )
    p_serve.add_argument(
        "--checkpoint", default="",
        metavar="PATH",
        help="serve weights from a saved state dict instead of training",
    )
    p_serve.add_argument(
        "--untrained", action="store_true",
        help="skip training entirely (demo/load-testing the serving path)",
    )
    p_serve.add_argument(
        "--max-batch-size", type=int, default=32, metavar="N",
        help="micro-batch coalescing bound (1 = no coalescing)",
    )
    p_serve.add_argument(
        "--max-wait-us", type=int, default=2000, metavar="US",
        help="how long an open batch waits for more requests",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=256, metavar="N",
        help="admission bound; beyond it requests are shed with 429",
    )
    p_serve.add_argument(
        "--timeout-s", type=float, default=30.0, metavar="S",
        help="default per-request deadline (maps to 504 when missed)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=4096, metavar="N",
        help="prediction-cache entries (0 disables caching)",
    )
    p_serve.add_argument(
        "--compiled", action="store_true",
        help="serve forwards as compiled-tape replays (static shapes)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_report = sub.add_parser(
        "report", help="render a telemetry JSONL run record"
    )
    p_report.add_argument("path", help="JSONL run record (from --telemetry)")
    p_report.add_argument(
        "--summary",
        action="store_true",
        help="omit the per-epoch table, print only per-trainer means",
    )
    p_report.add_argument(
        "--csv", default="", metavar="PATH",
        help="also write the per-epoch phase table as CSV",
    )
    p_report.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="TRACE_ID",
        help="render the merged cross-process trace tree(s) instead of "
        "the timing report; optionally select one trace by id prefix",
    )
    p_report.set_defaults(func=_cmd_report)

    p_profile = sub.add_parser(
        "profile",
        help="run a subcommand under the all-thread sampling profiler",
    )
    p_profile.add_argument(
        "--out", default="profile.collapsed", metavar="PATH",
        help="collapsed-stack output path (flamegraph.pl / speedscope)",
    )
    p_profile.add_argument(
        "--hz", type=int, default=0, metavar="N",
        help="samples per second (default: 29)",
    )
    p_profile.add_argument(
        "args", nargs=argparse.REMAINDER,
        help="the repro subcommand (and its flags) to profile",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_bench = sub.add_parser(
        "bench", help="perf-regression tracking over *.bench.json records"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_diff = bench_sub.add_parser(
        "diff",
        help="diff benchmark records against the committed baselines",
    )
    p_diff.add_argument(
        "current", nargs="?", default="",
        help="directory of fresh *.bench.json records (default: the "
        "baseline directory itself — a self-consistency check)",
    )
    p_diff.add_argument(
        "--baseline", default="benchmarks/results", metavar="DIR",
        help="committed baseline records (default: benchmarks/results)",
    )
    p_diff.add_argument(
        "--tolerance", type=float, default=0.10, metavar="FRACTION",
        help="allowed fractional move in the worse direction before a "
        "metric counts as a regression (default: 0.10)",
    )
    p_diff.set_defaults(func=_cmd_bench_diff)

    return parser


@contextlib.contextmanager
def _profiled(path: str):
    """Sample every thread for the scope; write the collapsed stacks."""
    from .telemetry.profiler import SamplingProfiler

    profiler = SamplingProfiler()
    profiler.start()
    try:
        yield
    finally:
        profiler.stop()
        profiler.save(path)
        print(
            f"sampling profile: {profiler.samples} sample(s) at "
            f"{profiler.hz} Hz -> {path}"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    dtype = getattr(args, "dtype", "")
    telemetry = getattr(args, "telemetry", "")
    profile = getattr(args, "profile", "")
    # Activate the requested precision for the whole dispatch so code paths
    # outside ClassifierPool (evaluation, audits) also run in that dtype;
    # likewise the telemetry capture wraps training AND evaluation so the
    # run record covers the full artefact regeneration.
    scope = precision(dtype) if dtype else contextlib.nullcontext()
    tel_scope = (
        tel_capture(jsonl=telemetry) if telemetry else contextlib.nullcontext()
    )
    prof_scope = _profiled(profile) if profile else contextlib.nullcontext()
    with scope, tel_scope, prof_scope:
        return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
