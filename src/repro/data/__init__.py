"""Data pipeline: datasets, loaders, transforms, synthetic generators."""

from .corruptions import CORRUPTIONS, corrupt, corruption_sweep
from .dataset import (
    ConcatDataset,
    Dataset,
    Subset,
    TensorDataset,
    train_test_split,
)
from .loader import Batch, DataLoader
from .source import (
    DEFAULT_SHARD_SIZE,
    DataSource,
    ShardCache,
    SyntheticSource,
    TensorSource,
    as_source,
)
from .synthetic import (
    SyntheticDigits,
    SyntheticFashion,
    dataset_epsilon,
    load_dataset,
    load_test_split,
)
from .transforms import (
    ClipToUnit,
    Compose,
    GaussianNoise,
    Normalize,
    RandomShift,
)

__all__ = [
    "Dataset",
    "TensorDataset",
    "Subset",
    "ConcatDataset",
    "train_test_split",
    "Batch",
    "DataLoader",
    "DataSource",
    "TensorSource",
    "SyntheticSource",
    "ShardCache",
    "as_source",
    "DEFAULT_SHARD_SIZE",
    "SyntheticDigits",
    "SyntheticFashion",
    "load_dataset",
    "load_test_split",
    "dataset_epsilon",
    "Compose",
    "Normalize",
    "ClipToUnit",
    "GaussianNoise",
    "RandomShift",
    "CORRUPTIONS",
    "corrupt",
    "corruption_sweep",
]
