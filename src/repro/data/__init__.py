"""Data pipeline: datasets, loaders, transforms, synthetic generators."""

from .corruptions import CORRUPTIONS, corrupt, corruption_sweep
from .dataset import (
    ConcatDataset,
    Dataset,
    Subset,
    TensorDataset,
    train_test_split,
)
from .loader import Batch, DataLoader
from .synthetic import (
    SyntheticDigits,
    SyntheticFashion,
    dataset_epsilon,
    load_dataset,
)
from .transforms import (
    ClipToUnit,
    Compose,
    GaussianNoise,
    Normalize,
    RandomShift,
)

__all__ = [
    "Dataset",
    "TensorDataset",
    "Subset",
    "ConcatDataset",
    "train_test_split",
    "Batch",
    "DataLoader",
    "SyntheticDigits",
    "SyntheticFashion",
    "load_dataset",
    "dataset_epsilon",
    "Compose",
    "Normalize",
    "ClipToUnit",
    "GaussianNoise",
    "RandomShift",
    "CORRUPTIONS",
    "corrupt",
    "corruption_sweep",
]
