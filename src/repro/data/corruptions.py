"""Common-corruption transforms (Hendrycks & Dietterich style).

Non-adversarial robustness is the natural companion measurement to the
paper's adversarial evaluation: a defense that catastrophically fails
under benign noise/blur has overfit to the attack.  Each corruption takes
an NCHW batch in ``[0, 1]`` and returns a corrupted batch in ``[0, 1]``,
with ``severity`` in 1..5 following the CIFAR-C convention.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np
from scipy import ndimage

from ..runtime import ensure_float_array
from ..utils.rng import RngLike, ensure_rng

__all__ = [
    "gaussian_noise",
    "shot_noise",
    "impulse_noise",
    "gaussian_blur",
    "contrast",
    "brightness",
    "pixelate",
    "CORRUPTIONS",
    "corrupt",
    "corruption_sweep",
]


def _check_severity(severity: int) -> int:
    if not 1 <= severity <= 5:
        raise ValueError(f"severity must be in 1..5, got {severity}")
    return int(severity)


def gaussian_noise(
    x: np.ndarray, severity: int = 1, rng: RngLike = None
) -> np.ndarray:
    """Additive white Gaussian noise."""
    std = [0.04, 0.08, 0.12, 0.18, 0.26][_check_severity(severity) - 1]
    noisy = x + ensure_rng(rng).normal(0.0, std, size=x.shape)
    return np.clip(noisy, 0.0, 1.0)


def shot_noise(
    x: np.ndarray, severity: int = 1, rng: RngLike = None
) -> np.ndarray:
    """Poisson (photon) noise."""
    rate = [60, 25, 12, 5, 3][_check_severity(severity) - 1]
    sampled = ensure_rng(rng).poisson(np.clip(x, 0, 1) * rate) / rate
    return np.clip(sampled, 0.0, 1.0)


def impulse_noise(
    x: np.ndarray, severity: int = 1, rng: RngLike = None
) -> np.ndarray:
    """Salt-and-pepper noise."""
    fraction = [0.01, 0.03, 0.06, 0.1, 0.17][_check_severity(severity) - 1]
    generator = ensure_rng(rng)
    out = x.copy()
    mask = generator.random(x.shape) < fraction
    salt = generator.random(x.shape) < 0.5
    out[mask & salt] = 1.0
    out[mask & ~salt] = 0.0
    return out


def gaussian_blur(
    x: np.ndarray, severity: int = 1, rng: RngLike = None
) -> np.ndarray:
    """Gaussian blur over the spatial axes."""
    sigma = [0.4, 0.6, 0.9, 1.3, 1.8][_check_severity(severity) - 1]
    out = np.empty_like(x)
    for i in range(x.shape[0]):
        for c in range(x.shape[1]):
            out[i, c] = ndimage.gaussian_filter(x[i, c], sigma=sigma)
    return np.clip(out, 0.0, 1.0)


def contrast(
    x: np.ndarray, severity: int = 1, rng: RngLike = None
) -> np.ndarray:
    """Contrast reduction toward the per-image mean."""
    factor = [0.75, 0.6, 0.45, 0.3, 0.2][_check_severity(severity) - 1]
    means = x.mean(axis=(-2, -1), keepdims=True)
    return np.clip((x - means) * factor + means, 0.0, 1.0)


def brightness(
    x: np.ndarray, severity: int = 1, rng: RngLike = None
) -> np.ndarray:
    """Additive brightness shift."""
    shift = [0.05, 0.1, 0.15, 0.2, 0.3][_check_severity(severity) - 1]
    return np.clip(x + shift, 0.0, 1.0)


def pixelate(
    x: np.ndarray, severity: int = 1, rng: RngLike = None
) -> np.ndarray:
    """Downsample and nearest-neighbour upsample."""
    factor = [0.8, 0.65, 0.5, 0.4, 0.3][_check_severity(severity) - 1]
    h, w = x.shape[-2:]
    small_h = max(1, int(h * factor))
    small_w = max(1, int(w * factor))
    rows = (np.arange(h) * small_h // h).clip(0, small_h - 1)
    cols = (np.arange(w) * small_w // w).clip(0, small_w - 1)
    src_rows = (np.arange(small_h) * h // small_h).clip(0, h - 1)
    src_cols = (np.arange(small_w) * w // small_w).clip(0, w - 1)
    small = x[..., src_rows[:, None], src_cols[None, :]]
    return small[..., rows[:, None], cols[None, :]]


CORRUPTIONS: Dict[str, Callable] = {
    "gaussian_noise": gaussian_noise,
    "shot_noise": shot_noise,
    "impulse_noise": impulse_noise,
    "gaussian_blur": gaussian_blur,
    "contrast": contrast,
    "brightness": brightness,
    "pixelate": pixelate,
}


def corrupt(
    x: np.ndarray, name: str, severity: int = 1, rng: RngLike = None
) -> np.ndarray:
    """Apply a corruption by name."""
    if name not in CORRUPTIONS:
        raise KeyError(
            f"unknown corruption {name!r}; choose from {sorted(CORRUPTIONS)}"
        )
    return CORRUPTIONS[name](ensure_float_array(x), severity, rng)


def corruption_sweep(
    model,
    x: np.ndarray,
    y: np.ndarray,
    severities: Sequence[int] = (1, 3, 5),
    rng: RngLike = 0,
) -> Dict[str, Dict[int, float]]:
    """Accuracy of ``model`` under every corruption at each severity."""
    generator = ensure_rng(rng)
    y = np.asarray(y)
    results: Dict[str, Dict[int, float]] = {}
    for name in CORRUPTIONS:
        row: Dict[int, float] = {}
        for severity in severities:
            corrupted = corrupt(x, name, severity, rng=generator)
            row[int(severity)] = float(
                (model.predict(corrupted) == y).mean()
            )
        results[name] = row
    return results
