"""Dataset abstractions.

A dataset is an indexable collection of ``(example, label)`` pairs.  The
concrete synthetic datasets live in :mod:`repro.data.synthetic`; this module
provides the generic containers used to slice, combine and wrap them.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "Dataset",
    "TensorDataset",
    "Subset",
    "ConcatDataset",
    "train_test_split",
]


class Dataset:
    """Abstract indexable dataset."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise the whole dataset as ``(examples, labels)`` arrays."""
        examples = []
        labels = []
        for i in range(len(self)):
            x, y = self[i]
            examples.append(x)
            labels.append(y)
        return np.stack(examples), np.asarray(labels)


class TensorDataset(Dataset):
    """Dataset backed by in-memory arrays.

    Parameters
    ----------
    examples:
        Array whose first axis indexes examples (e.g. ``(N, C, H, W)``).
    labels:
        Integer labels of shape ``(N,)``.
    """

    def __init__(self, examples: np.ndarray, labels: np.ndarray) -> None:
        examples = np.asarray(examples)
        labels = np.asarray(labels)
        if len(examples) != len(labels):
            raise ValueError(
                f"examples and labels disagree on length: "
                f"{len(examples)} vs {len(labels)}"
            )
        self.examples = examples
        self.labels = labels

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.examples[index], int(self.labels[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise the dataset as ``(examples, labels)`` arrays."""
        return self.examples, self.labels


class Subset(Dataset):
    """View over a subset of another dataset selected by indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (
            indices.min() < 0 or indices.max() >= len(dataset)
        ):
            raise IndexError("subset indices out of range")
        self.dataset = dataset
        self.indices = indices

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.dataset[int(self.indices[index])]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise via one fancy-index of the parent's arrays.

        The base implementation walks ``__getitem__`` example by example
        (O(N) Python-level loop plus an ``np.stack``); selecting from the
        parent's materialised arrays does the same gather in one
        vectorised call.
        """
        examples, labels = self.dataset.arrays()
        return examples[self.indices], labels[self.indices]


class ConcatDataset(Dataset):
    """Concatenation of several datasets."""

    def __init__(self, datasets: Sequence[Dataset]) -> None:
        if not datasets:
            raise ValueError("ConcatDataset requires at least one dataset")
        self.datasets = list(datasets)
        self._offsets = np.cumsum([len(d) for d in self.datasets])

    def __len__(self) -> int:
        return int(self._offsets[-1])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range")
        dataset_idx = int(np.searchsorted(self._offsets, index, side="right"))
        prior = 0 if dataset_idx == 0 else int(self._offsets[dataset_idx - 1])
        return self.datasets[dataset_idx][index - prior]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise by concatenating each member's arrays.

        One ``np.concatenate`` over the members' (already vectorised)
        arrays instead of the base class's per-example Python loop.
        """
        parts = [dataset.arrays() for dataset in self.datasets]
        return (
            np.concatenate([x for x, _ in parts]),
            np.concatenate([y for _, y in parts]),
        )


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, rng=None
) -> Tuple[Subset, Subset]:
    """Random split of a dataset into train and test subsets."""
    from ..utils.rng import ensure_rng

    if not 0.0 < test_fraction < 1.0:
        raise ValueError(
            f"test_fraction must lie in (0, 1), got {test_fraction}"
        )
    generator = ensure_rng(rng)
    order = generator.permutation(len(dataset))
    n_test = max(1, int(round(len(dataset) * test_fraction)))
    return Subset(dataset, order[n_test:]), Subset(dataset, order[:n_test])
