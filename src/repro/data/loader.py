"""Minibatch loader over shard-based data sources.

Unlike a torch ``DataLoader`` there are no worker *processes* — numpy
slicing is already the bottleneck-free path here — but the interface
(iterate to get ``(x_batch, y_batch, indices)``) is familiar, and an
optional background prefetch *thread* overlaps shard generation with
training compute for streaming sources.

The loader no longer assumes the dataset fits in memory.  It consumes a
:class:`~repro.data.source.DataSource` (plain datasets are wrapped in a
single-shard :class:`~repro.data.source.TensorSource`, which reproduces
the legacy in-memory batch stream bit-for-bit) and assembles batches by
gathering rows from shards held in a byte-budgeted
:class:`~repro.data.source.ShardCache`.

Shuffling is shard-local: the cross-shard visit order and each shard's
internal order are independent deterministic permutations of the loader
rng, so a pass touches shards one at a time (bounded residency) while
every example still appears exactly once per pass.  With a single shard
this degenerates to exactly the legacy global ``rng.permutation(n)``.

Batches also expose the *dataset indices* of their examples.  The
proposed defense (epoch-wise adversarial training) needs those to persist
and re-use per-example adversarial perturbations across epochs.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Iterator, List, NamedTuple, Optional

import numpy as np

from .. import telemetry as tel
from ..runtime import compute_dtype
from ..runtime.workspace import get_workspace
from ..utils.rng import RngLike, ensure_rng
from .source import DataSource, ShardCache, as_source

__all__ = ["Batch", "DataLoader"]


class Batch(NamedTuple):
    """A minibatch: examples, integer labels and their dataset indices."""

    x: np.ndarray
    y: np.ndarray
    indices: np.ndarray


class _PrefetchFailure:
    """Exception raised in the prefetch thread, carried to the consumer."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


_DONE = object()


class DataLoader:
    """Iterate a dataset or streaming source in minibatches.

    Parameters
    ----------
    data:
        A :class:`~repro.data.dataset.Dataset` (wrapped in a
        :class:`~repro.data.source.TensorSource`) or any
        :class:`~repro.data.source.DataSource`.
    batch_size:
        Number of examples per batch.
    shuffle:
        Reshuffle example order at the start of every iteration pass.
    drop_last:
        Drop the trailing partial batch.
    rng:
        Seed or generator controlling the shuffle order.
    shard_size:
        Shard granularity when wrapping a plain dataset; ``None`` keeps
        the whole dataset in one shard (the legacy behaviour).  Must be
        omitted (or agree) when ``data`` is already a source.
    budget_bytes:
        Byte budget for resident shard payloads; ``None`` is unbounded.
        When the budget binds, least-recently-used shards are evicted and
        their buffers recycled through the workspace pool.
    prefetch:
        Gather batches on a background thread, double-buffered through a
        bounded queue.  Default: enabled whenever the source has more
        than one shard (single-shard in-memory iteration gains nothing).

    Notes
    -----
    Batches are emitted in the ambient compute dtype, re-checked at the
    start of **every** iteration pass (a loader built under one precision
    policy and iterated under another follows the policy, it does not
    serve stale casts).  Concurrent iteration of one loader instance is
    not supported — the shard cache is not synchronised.
    """

    def __init__(
        self,
        data,
        batch_size: int = 64,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: RngLike = None,
        shard_size: Optional[int] = None,
        budget_bytes: Optional[int] = None,
        prefetch: Optional[bool] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.source: DataSource = as_source(data, shard_size=shard_size)
        if len(self.source) == 0:
            raise ValueError("cannot iterate an empty dataset")
        # Kept for callers that introspect the underlying dataset; purely
        # streaming sources have none.
        self.dataset = getattr(self.source, "dataset", None)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = ensure_rng(rng)
        self.prefetch = (
            self.source.num_shards > 1 if prefetch is None else bool(prefetch)
        )
        self.cache = ShardCache(
            budget_bytes=budget_bytes, on_evict=self._dispose_shard
        )
        self._pass_dtype: Optional[np.dtype] = None

    # -- shape ----------------------------------------------------------
    @property
    def shard_size(self) -> int:
        return self.source.shard_size

    @property
    def num_shards(self) -> int:
        return self.source.num_shards

    def __len__(self) -> int:
        n = len(self.source)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    # -- shard residency ------------------------------------------------
    @staticmethod
    def _dispose_shard(key, value) -> None:
        # Views into source-owned storage are ignored by the pool; owned
        # buffers (synthetic shards, cast copies) are genuinely recycled.
        workspace = get_workspace()
        x, y = value
        workspace.release(x)
        workspace.release(y)

    def _fetch_shard(self, shard_id: int, dtype: np.dtype):
        key = (shard_id, dtype)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        source = self.source
        if source.owns_shards or source.dtype != dtype:
            # Evict ahead of generation: old buffers return to the
            # workspace pool before the new shard allocates, so the peak
            # resident bytes stay under budget and the pool recycles.
            start, stop = source.shard_bounds(shard_id)
            row = int(np.prod(source.example_shape)) * dtype.itemsize
            row += np.dtype(source.label_dtype).itemsize
            self.cache.reserve((stop - start) * row)
        x, y = self.source.shard(shard_id)
        if x.dtype != dtype:
            cast = get_workspace().acquire(x.shape, dtype)
            np.copyto(cast, x, casting="unsafe")
            if self.source.owns_shards:
                get_workspace().release(x)
            x = cast
        # Only bytes this loader owns count against the budget — slice
        # views into a TensorSource's arrays cost nothing extra.
        nbytes = (x.nbytes if x.base is None else 0) + (
            y.nbytes if y.base is None else 0
        )
        self.cache.put(key, (x, y), nbytes)
        return x, y

    # -- ordering -------------------------------------------------------
    def _pass_order(self) -> np.ndarray:
        """Deterministic example order for one pass.

        Single shard: the legacy global permutation (bit-for-bit the old
        loader's shuffle stream).  Multiple shards: a permutation of the
        shard visit order, then an independent permutation inside each
        shard — examples from one shard stay contiguous, so residency is
        one shard (plus read-ahead) regardless of dataset size.
        """
        source = self.source
        n = len(source)
        if not self.shuffle:
            return np.arange(n)
        if source.num_shards == 1:
            return self._rng.permutation(n)
        parts: List[np.ndarray] = []
        for shard_id in self._rng.permutation(source.num_shards):
            start, stop = source.shard_bounds(int(shard_id))
            parts.append(start + self._rng.permutation(stop - start))
        return np.concatenate(parts)

    def _batch_slices(self, order: np.ndarray) -> Iterator[np.ndarray]:
        n = len(order)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            yield idx

    # -- batch assembly -------------------------------------------------
    def _gather(self, idx: np.ndarray, dtype: np.dtype) -> Batch:
        source = self.source
        x = np.empty((len(idx), *source.example_shape), dtype=dtype)
        y = np.empty(len(idx), dtype=source.label_dtype)
        shard_ids = idx // source.shard_size
        for shard_id in np.unique(shard_ids):
            rows = np.flatnonzero(shard_ids == shard_id)
            shard_x, shard_y = self._fetch_shard(int(shard_id), dtype)
            local = idx[rows] - int(shard_id) * source.shard_size
            x[rows] = shard_x[local]
            y[rows] = shard_y[local]
        return Batch(x=x, y=y, indices=idx)

    # -- iteration ------------------------------------------------------
    def __iter__(self) -> Iterator[Batch]:
        # Re-resolve the precision policy every pass (it is thread-local
        # and scoped); a dtype change invalidates cached casts wholesale.
        dtype = np.dtype(compute_dtype())
        if self._pass_dtype is not None and dtype != self._pass_dtype:
            self.cache.clear()
        self._pass_dtype = dtype
        order = self._pass_order()
        if self.prefetch:
            yield from self._iter_prefetched(order, dtype)
        else:
            for idx in self._batch_slices(order):
                batch = self._gather(idx, dtype)
                self._count_batch(len(idx))
                yield batch
        if tel.enabled():
            for name, value in self.cache.telemetry_gauges().items():
                tel.gauge(name, value)

    @staticmethod
    def _count_batch(n: int) -> None:
        if tel.enabled():
            tel.counter("data.batches")
            tel.counter("data.examples", n)

    def _iter_prefetched(
        self, order: np.ndarray, dtype: np.dtype
    ) -> Iterator[Batch]:
        """Produce batches on a background thread, consume them here.

        Double-buffered: the bounded queue lets the producer stay one
        batch ahead while the trainer works on the current one.  The
        producer checks ``stop`` on every blocked put, so abandoning the
        iterator (or an exception in the trainer) tears it down promptly.
        Counters are emitted from the consumer thread (span stacks are
        thread-local); the producer opens its own ``data.prefetch`` span
        under the consumer's trace context, so the background gather work
        appears in the same trace as the epoch that consumed it.
        """
        out: "queue_module.Queue" = queue_module.Queue(maxsize=2)
        stop = threading.Event()
        # Captured on the consumer thread, adopted by the producer: the
        # enabled flag and span stack are thread-local, so without this
        # handoff a fresh producer thread records nothing (and its span
        # would start an unrelated trace).
        traced = tel.enabled()
        ctx = tel.current_context() if traced else None

        def put(item) -> bool:
            while not stop.is_set():
                try:
                    out.put(item, timeout=0.05)
                    return True
                except queue_module.Full:
                    continue
            return False

        def produce() -> None:
            try:
                if traced:
                    tel.set_enabled(True)  # thread-local; thread is ours
                with tel.trace_context(ctx), tel.span(
                    "data.prefetch", thread="producer"
                ) as prefetch_span:
                    produced = 0
                    for idx in self._batch_slices(order):
                        if not put(self._gather(idx, dtype)):
                            return
                        produced += 1
                    prefetch_span.note(batches=produced)
                put(_DONE)
            except BaseException as error:  # surfaced in the consumer
                put(_PrefetchFailure(error))

        worker = threading.Thread(
            target=produce, name="repro-data-prefetch", daemon=True
        )
        worker.start()
        try:
            while True:
                began = time.perf_counter()
                item = out.get()
                stalled = time.perf_counter() - began
                if item is _DONE:
                    return
                if isinstance(item, _PrefetchFailure):
                    raise item.error
                if tel.enabled():
                    tel.counter("data.prefetch.batches")
                    tel.observe("data.prefetch.stall_s", stalled)
                    tel.gauge("data.prefetch.queue_depth", out.qsize())
                    self._count_batch(len(item.indices))
                yield item
        finally:
            stop.set()
            while True:  # unblock a producer waiting on a full queue
                try:
                    out.get_nowait()
                except queue_module.Empty:
                    break
            worker.join(timeout=5.0)
