"""Minibatch loader with deterministic shuffling.

Unlike a torch ``DataLoader`` there are no worker processes — numpy slicing
is already the bottleneck-free path here — but the interface (iterate to get
``(x_batch, y_batch, indices)``) is familiar.

Batches also expose the *dataset indices* of their examples.  The proposed
defense (epoch-wise adversarial training) needs those to persist and re-use
per-example adversarial perturbations across epochs.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

import numpy as np

from .. import telemetry as tel
from ..runtime import compute_dtype
from ..utils.rng import RngLike, ensure_rng
from .dataset import Dataset

__all__ = ["Batch", "DataLoader"]


class Batch(NamedTuple):
    """A minibatch: examples, integer labels and their dataset indices."""

    x: np.ndarray
    y: np.ndarray
    indices: np.ndarray


class DataLoader:
    """Iterate a dataset in minibatches.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Number of examples per batch.
    shuffle:
        Reshuffle example order at the start of every iteration pass.
    drop_last:
        Drop the trailing partial batch.
    rng:
        Seed or generator controlling the shuffle order.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 64,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: RngLike = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if len(dataset) == 0:
            raise ValueError("cannot iterate an empty dataset")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = ensure_rng(rng)
        # Materialise once: synthetic datasets are in-memory anyway and this
        # keeps batch slicing cheap.  The one-time cast here (a no-op when
        # the dataset already matches the policy) means batches are emitted
        # in the compute dtype with no per-batch recast downstream.
        self._examples, self._labels = dataset.arrays()
        if self._examples.dtype != compute_dtype():
            self._examples = self._examples.astype(compute_dtype())

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        n = len(self.dataset)
        order = (
            self._rng.permutation(n) if self.shuffle else np.arange(n)
        )
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            if tel.enabled():
                tel.counter("data.batches")
                tel.counter("data.examples", len(idx))
            yield Batch(
                x=self._examples[idx],
                y=self._labels[idx],
                indices=idx,
            )
