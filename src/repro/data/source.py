"""Shard-based streaming data sources and the byte-budgeted shard cache.

The rest of the stack used to assume the whole dataset is one in-memory
array; this module removes that assumption.  A :class:`DataSource` exposes
a dataset as a sequence of fixed-size **shards** — contiguous blocks of
``shard_size`` examples — whose content is a pure function of the source's
configuration and the shard id:

* :class:`TensorSource` wraps an existing in-memory dataset; shards are
  zero-copy views into its arrays, so the legacy fits-in-memory path pays
  nothing for the abstraction.
* :class:`SyntheticSource` regenerates shards on the fly from the
  synthetic example renderers registered in
  :mod:`repro.data.synthetic.registry`, deterministically keyed by
  ``(seed, shard_id)`` — dataset size is unbounded and nothing is ever
  materialised beyond the shards currently resident.
* :class:`ShardCache` keeps recently used shard payloads under a
  configurable **byte budget** (LRU eviction via
  :class:`repro.utils.lru.LRUCache`), invoking a disposal callback so
  evicted buffers return to the workspace pool instead of churning the
  allocator.

The :class:`~repro.data.loader.DataLoader` composes these into batches;
:class:`~repro.defenses.delta.DeltaStore` reuses :class:`ShardCache` for
the epochwise defense's carried perturbations.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..runtime import compute_dtype
from ..runtime.workspace import get_workspace
from ..utils.lru import LRUCache
from .dataset import Dataset, TensorDataset

__all__ = [
    "DataSource",
    "TensorSource",
    "SyntheticSource",
    "ShardCache",
    "as_source",
    "DEFAULT_SHARD_SIZE",
]

# Default shard granularity for streaming sources: large enough that the
# per-shard generation/gather overhead amortises, small enough that a few
# shards fit in a tight memory budget (512 * 28*28 float64 ~ 3.2 MB).
DEFAULT_SHARD_SIZE = 512


class DataSource:
    """Abstract shard-addressable dataset.

    Subclasses define ``__len__`` plus :meth:`shard`, and set the
    attributes below.  Shards are contiguous index ranges: shard ``s``
    covers global indices ``[s * shard_size, min((s+1) * shard_size, N))``,
    so ``index // shard_size`` recovers the owning shard — the property
    the data-parallel trainer's shard ownership rule and the loader's
    gather both rely on.

    Attributes
    ----------
    shard_size:
        Examples per shard (the final shard may be smaller).
    example_shape:
        Shape of one example (e.g. ``(1, 28, 28)``).
    dtype:
        Dtype shards are produced in (the loader casts per-pass to the
        ambient precision policy when they differ).
    label_dtype:
        Dtype of the label arrays.
    owns_shards:
        True when :meth:`shard` builds fresh buffers each call (safe to
        recycle into the workspace pool on cache eviction); False when it
        returns views into longer-lived storage.
    """

    shard_size: int
    example_shape: Tuple[int, ...]
    dtype: np.dtype
    label_dtype: np.dtype = np.dtype(np.int64)
    owns_shards: bool = False

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def num_shards(self) -> int:
        """Number of shards covering the source."""
        n = len(self)
        return max(1, -(-n // self.shard_size))

    def shard_bounds(self, shard_id: int) -> Tuple[int, int]:
        """Global ``[start, stop)`` index range of one shard."""
        if not 0 <= shard_id < self.num_shards:
            raise IndexError(
                f"shard {shard_id} out of range (have {self.num_shards})"
            )
        start = shard_id * self.shard_size
        return start, min(start + self.shard_size, len(self))

    def shard(self, shard_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Build (or view) one shard as ``(examples, labels)`` arrays."""
        raise NotImplementedError

    def materialize(self) -> TensorDataset:
        """Concatenate every shard into an in-memory :class:`TensorDataset`.

        The bridge back to the fits-in-memory world — used by equivalence
        tests and anywhere random access to the full array is genuinely
        required.  Copies shard payloads, so the result owns its memory.
        """
        xs, ys = [], []
        for shard_id in range(self.num_shards):
            x, y = self.shard(shard_id)
            xs.append(np.array(x, copy=True))
            ys.append(np.array(y, copy=True))
            if self.owns_shards:
                workspace = get_workspace()
                workspace.release(x)
                workspace.release(y)
        return TensorDataset(np.concatenate(xs), np.concatenate(ys))


class TensorSource(DataSource):
    """Shard view over an in-memory dataset.

    Parameters
    ----------
    dataset:
        Any :class:`~repro.data.dataset.Dataset`; its arrays are
        materialised once (exactly as the legacy loader did).
    shard_size:
        Shard granularity; ``None`` uses one shard covering the whole
        dataset, which preserves the legacy loader's global-shuffle batch
        stream bit-for-bit.
    """

    owns_shards = False

    def __init__(
        self, dataset: Dataset, shard_size: Optional[int] = None
    ) -> None:
        if isinstance(dataset, DataSource):
            raise TypeError(
                "TensorSource wraps a Dataset; got a DataSource "
                f"({type(dataset).__name__})"
            )
        self.dataset = dataset
        self._x, self._y = dataset.arrays()
        n = len(self._x)
        if shard_size is None:
            shard_size = max(n, 1)
        if shard_size <= 0:
            raise ValueError(
                f"shard_size must be positive, got {shard_size}"
            )
        self.shard_size = int(shard_size)
        self.example_shape = tuple(self._x.shape[1:])
        self.dtype = self._x.dtype
        self.label_dtype = self._y.dtype

    def __len__(self) -> int:
        return len(self._x)

    def shard(self, shard_id: int) -> Tuple[np.ndarray, np.ndarray]:
        start, stop = self.shard_bounds(shard_id)
        return self._x[start:stop], self._y[start:stop]


class SyntheticSource(DataSource):
    """Regenerate synthetic shards on demand — unbounded N, zero residency.

    Each shard is rendered example-by-example from the dataset's
    registered renderer using a generator seeded by ``(seed, shard_id)``
    (a :class:`numpy.random.SeedSequence` spawn key), so any shard can be
    re-produced independently, in any order, in any process, with no
    global state.  Labels cycle through the classes by global index, which
    keeps every shard (and therefore every budget-bounded working set)
    class-balanced.

    Parameters
    ----------
    name:
        Registered dataset name (``"digits"`` / ``"fashion"``).
    num_examples:
        Virtual dataset length.  Nothing of that size is ever allocated.
    shard_size:
        Examples per generated shard.
    seed:
        Stream seed; two sources with equal ``(name, num_examples,
        shard_size, seed, size, render_kwargs)`` are identical.
    size:
        Image side length.
    dtype:
        Dtype shards are emitted in; ``None`` pins the ambient
        :func:`~repro.runtime.compute_dtype` at construction.
    render_kwargs:
        Extra keyword arguments for the example renderer (e.g.
        ``noise_std``).
    """

    owns_shards = True

    def __init__(
        self,
        name: str,
        num_examples: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        seed: int = 0,
        size: int = 28,
        dtype=None,
        **render_kwargs,
    ) -> None:
        from .synthetic.registry import dataset_num_classes, example_renderer

        if num_examples <= 0:
            raise ValueError(
                f"num_examples must be positive, got {num_examples}"
            )
        if shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        self.name = name
        self._render: Callable = example_renderer(name)
        self.num_classes = dataset_num_classes(name)
        self.num_examples = int(num_examples)
        self.shard_size = int(shard_size)
        self.seed = int(seed)
        self.size = int(size)
        self.render_kwargs = dict(render_kwargs)
        self.example_shape = (1, self.size, self.size)
        self.dtype = np.dtype(compute_dtype() if dtype is None else dtype)

    def __len__(self) -> int:
        return self.num_examples

    def shard_rng(self, shard_id: int) -> np.random.Generator:
        """The deterministic generator that renders one shard."""
        sequence = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(int(shard_id),)
        )
        return np.random.default_rng(sequence)

    def shard(self, shard_id: int) -> Tuple[np.ndarray, np.ndarray]:
        start, stop = self.shard_bounds(shard_id)
        n = stop - start
        # Draw the shard buffer through the workspace pool: after warmup a
        # budget-bounded stream recycles the buffers its cache just
        # evicted instead of allocating fresh ones every shard.
        x = get_workspace().acquire((n, *self.example_shape), self.dtype)
        y = (start + np.arange(n, dtype=np.int64)) % self.num_classes
        rng = self.shard_rng(shard_id)
        for row in range(n):
            x[row, 0] = self._render(
                int(y[row]), rng, size=self.size, **self.render_kwargs
            )
        return x, y


def as_source(data, shard_size: Optional[int] = None) -> DataSource:
    """Coerce a dataset-or-source to a :class:`DataSource`.

    An existing source passes through unchanged; ``shard_size`` must then
    be absent or agree with the source's own granularity.
    """
    if isinstance(data, DataSource):
        if shard_size is not None and int(shard_size) != data.shard_size:
            raise ValueError(
                f"shard_size={shard_size} conflicts with the source's "
                f"shard_size={data.shard_size}"
            )
        return data
    return TensorSource(data, shard_size=shard_size)


class ShardCache:
    """Byte-budgeted LRU cache over shard payloads.

    A thin policy layer over :class:`repro.utils.lru.LRUCache`: entries
    carry an explicit byte weight, and inserts evict from the LRU tail
    until the total weight is back under ``budget_bytes``.  The most
    recently inserted entry is never evicted (callers are still reading
    it), so the budget is honoured whenever it can hold at least one
    shard and degrades to single-shard residency otherwise.

    Parameters
    ----------
    budget_bytes:
        Total byte budget; ``None`` disables eviction (unbounded).
    on_evict:
        ``callback(key, value)`` invoked for every entry evicted by
        budget pressure or disposed by :meth:`clear` — the hook that
        returns shard buffers to the workspace pool.

    The ``evictions`` / ``peak_bytes`` attributes feed the
    ``data.shard_cache.*`` telemetry gauges and the streaming benchmark's
    peak-residency assertion.
    """

    # LRUCache needs a count capacity; the byte budget is the real bound.
    _UNBOUNDED_ENTRIES = 1 << 30

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        on_evict: Optional[Callable[[object, object], None]] = None,
    ) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(
                f"budget_bytes must be positive or None, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self.on_evict = on_evict
        self.bytes = 0
        self.peak_bytes = 0
        self.evictions = 0
        self._lru = LRUCache(capacity=self._UNBOUNDED_ENTRIES)
        self._weights: dict = {}

    # -- reads -----------------------------------------------------------
    def get(self, key, default=None):
        """Return the cached value (bumping recency), or ``default``."""
        return self._lru.get(key, default)

    def peek(self, key, default=None):
        """Read without updating recency or the hit/miss counters."""
        return self._lru.peek(key, default)

    def items(self):
        """Iterator over ``(key, value)``, LRU first; recency untouched."""
        return self._lru.items()

    def __contains__(self, key) -> bool:
        return key in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    # -- writes ----------------------------------------------------------
    def put(self, key, value, nbytes: int) -> None:
        """Insert an entry weighing ``nbytes``, then shrink to budget."""
        previous = self._weights.pop(key, None)
        if previous is not None:
            self.bytes -= previous
        self._lru.put(key, value)
        self._weights[key] = int(nbytes)
        self.bytes += int(nbytes)
        if self.bytes > self.peak_bytes:
            self.peak_bytes = self.bytes
        self._shrink()

    def reserve(self, nbytes: int) -> None:
        """Evict ahead of an insert weighing ``nbytes``.

        Called *before* the caller builds the new entry's buffers, so the
        eviction hook can return old buffers to the workspace pool in
        time for the new allocation to recycle them — and so peak
        residency never transiently exceeds the budget by one shard.
        """
        budget = self.budget_bytes
        if budget is None:
            return
        while self.bytes + int(nbytes) > budget and len(self._lru) > 0:
            self._evict_one()

    def _shrink(self) -> None:
        budget = self.budget_bytes
        if budget is None:
            return
        while self.bytes > budget and len(self._lru) > 1:
            self._evict_one()

    def _evict_one(self) -> None:
        key, value = next(iter(self._lru.items()))
        self._lru.pop(key)
        self.bytes -= self._weights.pop(key, 0)
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(key, value)

    def clear(self, dispose: bool = True) -> None:
        """Drop every entry; with ``dispose`` the eviction hook runs."""
        if dispose and self.on_evict is not None:
            for key, value in list(self._lru.items()):
                self.on_evict(key, value)
        self._lru.clear()
        self._weights.clear()
        self.bytes = 0

    # -- diagnostics -----------------------------------------------------
    def telemetry_gauges(self, prefix: str = "data.shard_cache") -> dict:
        """Cache statistics keyed by their telemetry gauge names."""
        return {
            f"{prefix}.bytes": self.bytes,
            f"{prefix}.peak_bytes": self.peak_bytes,
            f"{prefix}.entries": len(self._lru),
            f"{prefix}.evictions": self.evictions,
            f"{prefix}.hits": self.hits,
            f"{prefix}.misses": self.misses,
        }

    def __repr__(self) -> str:
        budget = self.budget_bytes
        return (
            f"ShardCache(bytes={self.bytes}, "
            f"budget={'∞' if budget is None else budget}, "
            f"entries={len(self._lru)}, evictions={self.evictions})"
        )
