"""Synthetic image datasets substituting for MNIST / Fashion-MNIST."""

from .digits import DIGIT_STROKES, SyntheticDigits, generate_digits
from .fashion import FASHION_CLASS_NAMES, SyntheticFashion, generate_fashion
from .registry import DATASET_BUILDERS, dataset_epsilon, load_dataset

__all__ = [
    "SyntheticDigits",
    "generate_digits",
    "DIGIT_STROKES",
    "SyntheticFashion",
    "generate_fashion",
    "FASHION_CLASS_NAMES",
    "DATASET_BUILDERS",
    "load_dataset",
    "dataset_epsilon",
]
