"""Synthetic image datasets substituting for MNIST / Fashion-MNIST."""

from .digits import (
    DIGIT_STROKES,
    SyntheticDigits,
    generate_digits,
    render_digit,
)
from .fashion import (
    FASHION_CLASS_NAMES,
    SyntheticFashion,
    generate_fashion,
    render_fashion,
)
from .registry import (
    DATASET_BUILDERS,
    EXAMPLE_RENDERERS,
    dataset_epsilon,
    dataset_num_classes,
    example_renderer,
    load_dataset,
    load_test_split,
)

__all__ = [
    "SyntheticDigits",
    "generate_digits",
    "render_digit",
    "DIGIT_STROKES",
    "SyntheticFashion",
    "generate_fashion",
    "render_fashion",
    "FASHION_CLASS_NAMES",
    "DATASET_BUILDERS",
    "EXAMPLE_RENDERERS",
    "load_dataset",
    "load_test_split",
    "dataset_epsilon",
    "dataset_num_classes",
    "example_renderer",
]
