"""Synthetic handwritten-digit dataset (MNIST substitute).

Each of the ten classes is defined by one or more prototype stroke sets
(polylines in the unit square).  A sample is drawn by picking a prototype,
jittering its control points, applying a random affine transform, and
rasterising with a random stroke width — yielding MNIST-like intra-class
variation while staying fully offline and deterministic under a seed.

See DESIGN.md ("Substitutions") for why this preserves the phenomena the
paper studies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...runtime import compute_dtype
from ...utils.rng import RngLike, ensure_rng, spawn_rngs
from ..dataset import TensorDataset
from .render import (
    add_pixel_noise,
    affine_points,
    pixel_grid,
    random_affine,
    render_polyline,
)

__all__ = [
    "DIGIT_STROKES",
    "SyntheticDigits",
    "generate_digits",
    "render_digit",
]


def _circle(
    cx: float, cy: float, rx: float, ry: float, n: int = 12,
    start: float = 0.0, end: float = 2 * np.pi,
) -> List[Tuple[float, float]]:
    """Polyline approximation of an elliptical arc."""
    angles = np.linspace(start, end, n)
    return [(cx + rx * np.cos(a), cy + ry * np.sin(a)) for a in angles]


# Prototype strokes per class, unit-square coordinates, y grows downward.
DIGIT_STROKES: Dict[int, List[List[List[Tuple[float, float]]]]] = {
    0: [
        [_circle(0.5, 0.5, 0.22, 0.33, n=16)],
        [_circle(0.5, 0.5, 0.26, 0.30, n=16)],
    ],
    1: [
        [[(0.5, 0.12), (0.5, 0.88)]],
        [[(0.38, 0.25), (0.52, 0.12), (0.52, 0.88)]],
    ],
    2: [
        [
            [
                (0.28, 0.28),
                (0.38, 0.14),
                (0.62, 0.14),
                (0.72, 0.28),
                (0.30, 0.84),
                (0.74, 0.84),
            ]
        ],
    ],
    3: [
        [
            [
                (0.30, 0.16),
                (0.68, 0.18),
                (0.72, 0.32),
                (0.50, 0.48),
                (0.72, 0.64),
                (0.68, 0.80),
                (0.30, 0.84),
            ]
        ],
    ],
    4: [
        [
            [(0.66, 0.88), (0.66, 0.12), (0.28, 0.60), (0.80, 0.60)],
        ],
        [
            [(0.30, 0.15), (0.30, 0.55), (0.75, 0.55)],
            [(0.66, 0.15), (0.66, 0.88)],
        ],
    ],
    5: [
        [
            [
                (0.72, 0.14),
                (0.32, 0.14),
                (0.30, 0.46),
                (0.60, 0.44),
                (0.73, 0.58),
                (0.70, 0.76),
                (0.30, 0.85),
            ]
        ],
    ],
    6: [
        [
            [(0.66, 0.14), (0.42, 0.32), (0.33, 0.55)]
            + _circle(0.50, 0.65, 0.18, 0.20, n=12),
        ],
    ],
    7: [
        [[(0.26, 0.15), (0.74, 0.15), (0.44, 0.86)]],
        [
            [(0.26, 0.15), (0.74, 0.15), (0.44, 0.86)],
            [(0.38, 0.5), (0.62, 0.5)],
        ],
    ],
    8: [
        [
            _circle(0.5, 0.32, 0.17, 0.17, n=12),
            _circle(0.5, 0.67, 0.20, 0.19, n=12),
        ],
    ],
    9: [
        [
            _circle(0.50, 0.35, 0.18, 0.20, n=12),
            [(0.67, 0.42), (0.62, 0.66), (0.48, 0.86)],
        ],
    ],
}


def _jitter_points(
    polyline: Sequence[Tuple[float, float]],
    rng: np.random.Generator,
    amount: float,
) -> np.ndarray:
    points = np.asarray(polyline, dtype=np.float64)
    return points + rng.normal(0.0, amount, size=points.shape)


def _sharpen(image: np.ndarray) -> np.ndarray:
    """Push stroke interiors toward 1 and background toward 0.

    MNIST pixels are near-binary; that saturation is what makes robust
    classification at eps = 0.3 feasible, so the substitute mimics it.
    """
    return 1.0 / (1.0 + np.exp(-(image - 0.42) / 0.07))


def _render_digit(
    label: int,
    rng: np.random.Generator,
    size: int,
    point_jitter: float,
    noise_std: float,
) -> np.ndarray:
    prototypes = DIGIT_STROKES[label]
    strokes = prototypes[rng.integers(len(prototypes))]
    params = random_affine(rng)
    width = rng.uniform(0.055, 0.085)
    grid = pixel_grid(size)
    image = np.zeros((size, size), dtype=np.float64)
    for polyline in strokes:
        jittered = _jitter_points(polyline, rng, point_jitter)
        transformed = affine_points(jittered, **params)
        np.maximum(
            image,
            render_polyline(transformed, size=size, width=width, grid=grid),
            out=image,
        )
    image = _sharpen(image)
    return add_pixel_noise(
        image, rng, noise_std=noise_std, intensity_range=(0.95, 1.0)
    )


def render_digit(
    label: int,
    rng: RngLike,
    size: int = 28,
    point_jitter: float = 0.012,
    noise_std: float = 0.02,
) -> np.ndarray:
    """Render one digit image — the per-example streaming primitive.

    Streaming sources (:class:`repro.data.source.SyntheticSource`)
    regenerate shards on the fly by drawing examples one at a time from a
    shard-scoped generator; the image depends only on the label and the
    generator state, so a shard's content is a pure function of its
    ``(seed, shard_id)`` key.  Returns a ``(size, size)`` float64 image in
    ``[0, 1]``.
    """
    return _render_digit(
        int(label), ensure_rng(rng), size, point_jitter, noise_std
    )


def generate_digits(
    num_per_class: int,
    size: int = 28,
    point_jitter: float = 0.012,
    noise_std: float = 0.02,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a balanced synthetic digit set.

    Returns
    -------
    examples:
        Array of shape ``(10 * num_per_class, 1, size, size)`` in ``[0, 1]``.
    labels:
        Integer labels of shape ``(10 * num_per_class,)``.
    """
    if num_per_class <= 0:
        raise ValueError(
            f"num_per_class must be positive, got {num_per_class}"
        )
    generator = ensure_rng(rng)
    class_rngs = spawn_rngs(generator, 10)
    # Rendering happens in float64 (see render.py); the emitted set is in
    # the policy compute dtype, cast once here rather than per batch.
    examples = np.empty(
        (10 * num_per_class, 1, size, size), dtype=compute_dtype()
    )
    labels = np.empty(10 * num_per_class, dtype=np.int64)
    cursor = 0
    for label in range(10):
        class_rng = class_rngs[label]
        for _ in range(num_per_class):
            examples[cursor, 0] = _render_digit(
                label, class_rng, size, point_jitter, noise_std
            )
            labels[cursor] = label
            cursor += 1
    # Interleave classes so truncated subsets stay balanced.
    order = ensure_rng(generator).permutation(len(labels))
    return examples[order], labels[order]


class SyntheticDigits(TensorDataset):
    """In-memory synthetic digit dataset (MNIST stand-in).

    Parameters
    ----------
    num_per_class:
        Examples generated per class.
    size:
        Image side length (paper: 28).
    seed:
        Generation seed; two datasets with the same seed are identical.
    """

    num_classes = 10
    image_shape = (1, 28, 28)

    def __init__(
        self,
        num_per_class: int = 200,
        size: int = 28,
        seed: int = 0,
        point_jitter: float = 0.012,
        noise_std: float = 0.02,
    ) -> None:
        examples, labels = generate_digits(
            num_per_class,
            size=size,
            point_jitter=point_jitter,
            noise_std=noise_std,
            rng=seed,
        )
        super().__init__(examples, labels)
        self.image_shape = (1, size, size)
