"""Synthetic fashion-item dataset (Fashion-MNIST substitute).

Ten classes of textured garment silhouettes rendered as soft-edged filled
shapes.  Deliberately harder than :mod:`.digits`: several classes
(t-shirt / pullover / coat / shirt) share body shapes and differ only in
sleeves and proportions — mirroring why Fashion-MNIST is harder than MNIST,
which the paper's Figure 1/2 (b) panels and Table I rely on.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ...runtime import compute_dtype
from ...utils.rng import RngLike, ensure_rng, spawn_rngs
from ..dataset import TensorDataset
from .render import pixel_grid

__all__ = [
    "SyntheticFashion",
    "generate_fashion",
    "render_fashion",
    "FASHION_CLASS_NAMES",
]

FASHION_CLASS_NAMES = (
    "tshirt",
    "trouser",
    "pullover",
    "dress",
    "coat",
    "sandal",
    "shirt",
    "sneaker",
    "bag",
    "ankle_boot",
)

_EDGE = 0.015  # soft-edge half width in unit-square units


def _soft_rect(u, v, x0, x1, y0, y1, edge=_EDGE):
    """Soft-edged axis-aligned rectangle mask."""

    def smooth(t):
        return 1.0 / (1.0 + np.exp(-t / edge))

    return (
        smooth(u - x0) * smooth(x1 - u) * smooth(v - y0) * smooth(y1 - v)
    )


def _soft_ellipse(u, v, cx, cy, rx, ry, edge=_EDGE):
    """Soft-edged ellipse mask."""
    d = np.sqrt(((u - cx) / rx) ** 2 + ((v - cy) / ry) ** 2)
    return 1.0 / (1.0 + np.exp((d - 1.0) / (edge / min(rx, ry))))


def _soft_trapezoid(u, v, y0, y1, half_top, half_bot, cx=0.5, edge=_EDGE):
    """Soft trapezoid widening from ``half_top`` at y0 to ``half_bot`` at y1."""
    t = np.clip((v - y0) / max(y1 - y0, 1e-9), 0.0, 1.0)
    half = half_top + (half_bot - half_top) * t

    def smooth(x):
        return 1.0 / (1.0 + np.exp(-x / edge))

    inside_x = smooth(half - np.abs(u - cx))
    inside_y = smooth(v - y0) * smooth(y1 - v)
    return inside_x * inside_y


def _u(rng, low, high):
    return float(rng.uniform(low, high))


def _tshirt(u, v, rng):
    body = _soft_rect(u, v, _u(rng, 0.29, 0.33), _u(rng, 0.67, 0.71),
                      _u(rng, 0.22, 0.27), _u(rng, 0.76, 0.84))
    sleeve_drop = _u(rng, 0.40, 0.48)
    left = _soft_rect(u, v, _u(rng, 0.14, 0.19), 0.33, 0.24, sleeve_drop)
    right = _soft_rect(u, v, 0.67, _u(rng, 0.81, 0.86), 0.24, sleeve_drop)
    return np.maximum(body, np.maximum(left, right))


def _trouser(u, v, rng):
    waist = _u(rng, 0.18, 0.24)
    hip = _soft_rect(u, v, 0.34, 0.66, waist, waist + _u(rng, 0.12, 0.18))
    gap = _u(rng, 0.02, 0.04)
    left = _soft_rect(u, v, 0.34, 0.5 - gap, waist + 0.1, _u(rng, 0.82, 0.88))
    right = _soft_rect(u, v, 0.5 + gap, 0.66, waist + 0.1, _u(rng, 0.82, 0.88))
    return np.maximum(hip, np.maximum(left, right))


def _pullover(u, v, rng):
    body = _soft_rect(u, v, _u(rng, 0.27, 0.31), _u(rng, 0.69, 0.73),
                      _u(rng, 0.22, 0.26), _u(rng, 0.74, 0.80))
    sleeve_drop = _u(rng, 0.68, 0.78)
    left = _soft_rect(u, v, _u(rng, 0.12, 0.17), 0.31, 0.24, sleeve_drop)
    right = _soft_rect(u, v, 0.69, _u(rng, 0.83, 0.88), 0.24, sleeve_drop)
    return np.maximum(body, np.maximum(left, right))


def _dress(u, v, rng):
    return _soft_trapezoid(
        u, v,
        _u(rng, 0.15, 0.22), _u(rng, 0.82, 0.88),
        _u(rng, 0.07, 0.11), _u(rng, 0.22, 0.28),
    )


def _coat(u, v, rng):
    body = _soft_rect(u, v, _u(rng, 0.26, 0.30), _u(rng, 0.70, 0.74),
                      _u(rng, 0.18, 0.23), _u(rng, 0.84, 0.90))
    sleeve_drop = _u(rng, 0.72, 0.84)
    left = _soft_rect(u, v, _u(rng, 0.11, 0.16), 0.30, 0.20, sleeve_drop)
    right = _soft_rect(u, v, 0.70, _u(rng, 0.84, 0.89), 0.20, sleeve_drop)
    coat = np.maximum(body, np.maximum(left, right))
    # Front seam: darker vertical stripe distinguishing coats from pullovers.
    seam = _soft_rect(u, v, 0.48, 0.52, 0.22, 0.88)
    return np.clip(coat - 0.55 * seam, 0.0, 1.0)


def _sandal(u, v, rng):
    sole_y = _u(rng, 0.60, 0.66)
    sole = _soft_rect(u, v, _u(rng, 0.16, 0.22), _u(rng, 0.78, 0.84),
                      sole_y, sole_y + _u(rng, 0.07, 0.10))
    strap1 = _soft_rect(u, v, 0.30, 0.36, sole_y - 0.22, sole_y)
    strap2 = _soft_rect(u, v, 0.52, 0.58, sole_y - 0.22, sole_y)
    top = _soft_rect(u, v, 0.30, 0.58, sole_y - 0.26, sole_y - 0.18)
    return np.maximum(sole, np.maximum(top, np.maximum(strap1, strap2)))


def _shirt(u, v, rng):
    body = _soft_rect(u, v, _u(rng, 0.31, 0.35), _u(rng, 0.65, 0.69),
                      _u(rng, 0.20, 0.24), _u(rng, 0.78, 0.84))
    sleeve_drop = _u(rng, 0.60, 0.72)
    left = _soft_rect(u, v, _u(rng, 0.17, 0.21), 0.35, 0.22, sleeve_drop)
    right = _soft_rect(u, v, 0.65, _u(rng, 0.79, 0.83), 0.22, sleeve_drop)
    shirt = np.maximum(body, np.maximum(left, right))
    # Collar notch: dark triangle-ish wedge at the neckline.
    collar = _soft_trapezoid(u, v, 0.20, 0.34, 0.015, 0.07)
    return np.clip(shirt - 0.6 * collar, 0.0, 1.0)


def _sneaker(u, v, rng):
    base_y = _u(rng, 0.52, 0.58)
    sole = _soft_rect(u, v, _u(rng, 0.16, 0.20), _u(rng, 0.80, 0.84),
                      base_y + 0.12, base_y + _u(rng, 0.18, 0.22))
    toe = _soft_ellipse(u, v, 0.68, base_y + 0.10, _u(rng, 0.14, 0.18), 0.10)
    upper = _soft_rect(u, v, 0.20, 0.58, base_y - _u(rng, 0.06, 0.10),
                       base_y + 0.14)
    return np.maximum(sole, np.maximum(toe, upper))


def _bag(u, v, rng):
    top = _u(rng, 0.36, 0.42)
    body = _soft_rect(u, v, _u(rng, 0.22, 0.27), _u(rng, 0.73, 0.78),
                      top, _u(rng, 0.78, 0.84))
    # Handle: annulus arc above the body.
    outer = _soft_ellipse(u, v, 0.5, top, 0.18, _u(rng, 0.14, 0.18))
    inner = _soft_ellipse(u, v, 0.5, top, 0.11, 0.10)
    handle = np.clip(outer - inner, 0.0, 1.0) * (v < top)
    return np.maximum(body, handle)


def _ankle_boot(u, v, rng):
    shaft_x0 = _u(rng, 0.30, 0.36)
    shaft = _soft_rect(u, v, shaft_x0, shaft_x0 + _u(rng, 0.18, 0.24),
                       _u(rng, 0.20, 0.28), 0.62)
    foot = _soft_rect(u, v, shaft_x0, _u(rng, 0.74, 0.82), 0.55,
                      _u(rng, 0.72, 0.78))
    toe = _soft_ellipse(u, v, 0.74, 0.66, 0.12, 0.09)
    return np.maximum(shaft, np.maximum(foot, toe))


_BUILDERS: Dict[int, Callable] = {
    0: _tshirt,
    1: _trouser,
    2: _pullover,
    3: _dress,
    4: _coat,
    5: _sandal,
    6: _shirt,
    7: _sneaker,
    8: _bag,
    9: _ankle_boot,
}


def _texture(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Low-frequency multiplicative texture in [0.55, 1.0]."""
    size = shape[0]
    coords = np.linspace(0.0, 1.0, size)
    xs, ys = np.meshgrid(coords, coords)
    field = np.zeros(shape)
    for _ in range(3):
        fx, fy = rng.uniform(2.0, 7.0, size=2)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        field += np.sin(2 * np.pi * (fx * xs + fy * ys) + phase)
    field = (field - field.min()) / max(np.ptp(field), 1e-9)
    return 0.55 + 0.45 * field


def _render_fashion(
    label: int, rng: np.random.Generator, size: int, noise_std: float
) -> np.ndarray:
    xs, ys = pixel_grid(size)
    # Mild affine jitter applied by warping the sampling grid.
    angle = rng.uniform(-0.12, 0.12)
    scale = rng.uniform(0.9, 1.1)
    tx, ty = rng.uniform(-0.05, 0.05, size=2)
    cos, sin = np.cos(angle), np.sin(angle)
    u = ((xs - 0.5) * cos - (ys - 0.5) * sin) / scale + 0.5 - tx
    v = ((xs - 0.5) * sin + (ys - 0.5) * cos) / scale + 0.5 - ty
    silhouette = _BUILDERS[label](u, v, rng)
    image = silhouette * _texture((size, size), rng)
    if noise_std > 0:
        image = image + rng.normal(0.0, noise_std, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def render_fashion(
    label: int,
    rng: RngLike,
    size: int = 28,
    noise_std: float = 0.05,
) -> np.ndarray:
    """Render one fashion image — the per-example streaming primitive.

    Counterpart of :func:`repro.data.synthetic.digits.render_digit`; see
    there for the determinism contract streaming sources rely on.
    """
    return _render_fashion(int(label), ensure_rng(rng), size, noise_std)


def generate_fashion(
    num_per_class: int,
    size: int = 28,
    noise_std: float = 0.05,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a balanced synthetic fashion set.

    Returns
    -------
    examples:
        ``(10 * num_per_class, 1, size, size)`` array in ``[0, 1]``.
    labels:
        ``(10 * num_per_class,)`` integer labels.
    """
    if num_per_class <= 0:
        raise ValueError(
            f"num_per_class must be positive, got {num_per_class}"
        )
    generator = ensure_rng(rng)
    class_rngs = spawn_rngs(generator, 10)
    examples = np.empty(
        (10 * num_per_class, 1, size, size), dtype=compute_dtype()
    )
    labels = np.empty(10 * num_per_class, dtype=np.int64)
    cursor = 0
    for label in range(10):
        class_rng = class_rngs[label]
        for _ in range(num_per_class):
            examples[cursor, 0] = _render_fashion(
                label, class_rng, size, noise_std
            )
            labels[cursor] = label
            cursor += 1
    order = generator.permutation(len(labels))
    return examples[order], labels[order]


class SyntheticFashion(TensorDataset):
    """In-memory synthetic fashion dataset (Fashion-MNIST stand-in)."""

    num_classes = 10
    image_shape = (1, 28, 28)
    class_names = FASHION_CLASS_NAMES

    def __init__(
        self,
        num_per_class: int = 200,
        size: int = 28,
        seed: int = 0,
        noise_std: float = 0.05,
    ) -> None:
        examples, labels = generate_fashion(
            num_per_class, size=size, noise_std=noise_std, rng=seed
        )
        super().__init__(examples, labels)
        self.image_shape = (1, size, size)
