"""Dataset registry: build train/test splits by name.

The experiments refer to datasets by the paper's names; this registry maps
them onto the synthetic substitutes with fixed, disjoint seeds for train and
test splits.
"""

from __future__ import annotations

from typing import Tuple

from ..dataset import TensorDataset
from .digits import SyntheticDigits, render_digit
from .fashion import SyntheticFashion, render_fashion

__all__ = [
    "DATASET_BUILDERS",
    "EXAMPLE_RENDERERS",
    "load_dataset",
    "load_test_split",
    "dataset_epsilon",
    "dataset_num_classes",
    "example_renderer",
]

# Per-dataset total perturbation budgets used throughout the experiments.
# The paper used 0.3 (MNIST) and 0.2 (Fashion-MNIST); the synthetic
# substitutes are calibrated to 0.25 / 0.15 so that the same qualitative
# regime holds: iterative adversarial training achieves substantial robust
# accuracy while single-step FGSM training is defeated by iterative attacks
# (see DESIGN.md, "Substitutions").
_EPSILONS = {
    "digits": 0.25,   # paper: MNIST, eps = 0.3
    "fashion": 0.15,  # paper: Fashion-MNIST, eps = 0.2
}

# Offsets keep train and test generation streams disjoint.
_TEST_SEED_OFFSET = 10_000


def _build_digits(num_per_class: int, seed: int) -> TensorDataset:
    return SyntheticDigits(num_per_class=num_per_class, seed=seed)


def _build_fashion(num_per_class: int, seed: int) -> TensorDataset:
    return SyntheticFashion(num_per_class=num_per_class, seed=seed)


DATASET_BUILDERS = {
    "digits": _build_digits,
    "fashion": _build_fashion,
}

# Per-example render functions ``(label, rng, size=...) -> (size, size)``
# used by the streaming :class:`repro.data.source.SyntheticSource` to
# regenerate shards on the fly instead of materialising a full dataset.
EXAMPLE_RENDERERS = {
    "digits": render_digit,
    "fashion": render_fashion,
}

_NUM_CLASSES = {"digits": 10, "fashion": 10}


def dataset_num_classes(name: str) -> int:
    """Number of classes of a registered paper dataset."""
    if name not in _NUM_CLASSES:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_NUM_CLASSES)}"
        )
    return _NUM_CLASSES[name]


def example_renderer(name: str):
    """The per-example render function backing a streaming source."""
    if name not in EXAMPLE_RENDERERS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from "
            f"{sorted(EXAMPLE_RENDERERS)}"
        )
    return EXAMPLE_RENDERERS[name]


def dataset_epsilon(name: str) -> float:
    """Total l_inf perturbation budget the paper uses for this dataset."""
    if name not in _EPSILONS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_EPSILONS)}"
        )
    return _EPSILONS[name]


def load_dataset(
    name: str,
    train_per_class: int = 200,
    test_per_class: int = 50,
    seed: int = 0,
) -> Tuple[TensorDataset, TensorDataset]:
    """Build ``(train, test)`` datasets for a paper dataset name.

    Parameters
    ----------
    name:
        ``"digits"`` (MNIST substitute) or ``"fashion"`` (Fashion-MNIST
        substitute).
    train_per_class, test_per_class:
        Per-class sizes of the two splits.
    seed:
        Base seed; the test split uses a disjoint generation stream.
    """
    if name not in DATASET_BUILDERS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}"
        )
    builder = DATASET_BUILDERS[name]
    train = builder(train_per_class, seed)
    return train, load_test_split(name, test_per_class, seed)


def load_test_split(
    name: str, test_per_class: int = 50, seed: int = 0
) -> TensorDataset:
    """Build only the held-out test split of a paper dataset.

    Streaming experiments regenerate the *training* stream on the fly
    (:class:`repro.data.source.SyntheticSource`) but still evaluate on a
    small materialised test set; this builds exactly the test split
    :func:`load_dataset` would return, without generating the training
    examples.
    """
    if name not in DATASET_BUILDERS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}"
        )
    return DATASET_BUILDERS[name](test_per_class, seed + _TEST_SEED_OFFSET)
