"""Rasterisation primitives for the synthetic image datasets.

The synthetic datasets substitute for MNIST / Fashion-MNIST (unavailable
offline; see DESIGN.md).  Images are drawn procedurally:

* *digits* as anti-aliased polylines (distance-field rendering),
* *fashion* items as filled silhouettes with texture.

Everything here is pure numpy and deterministic given a generator.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ...utils.rng import RngLike, ensure_rng

__all__ = [
    "pixel_grid",
    "render_polyline",
    "render_polylines",
    "affine_points",
    "random_affine",
    "add_pixel_noise",
]

Point = Tuple[float, float]


def pixel_grid(size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(xs, ys)`` pixel-centre coordinates in the unit square."""
    centers = (np.arange(size) + 0.5) / size
    xs, ys = np.meshgrid(centers, centers)
    return xs, ys


def render_polyline(
    points: Sequence[Point],
    size: int = 28,
    width: float = 0.06,
    grid: Tuple[np.ndarray, np.ndarray] = None,
) -> np.ndarray:
    """Rasterise a polyline given in unit-square coordinates.

    Intensity at a pixel decays as a Gaussian of its distance to the nearest
    segment, giving smooth anti-aliased strokes.

    Parameters
    ----------
    points:
        Polyline vertices ``(x, y)`` with ``y`` growing downward.
    size:
        Output image side length.
    width:
        Stroke half-width in unit-square units.
    grid:
        Optional precomputed :func:`pixel_grid` for speed.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2 or len(points) < 2:
        raise ValueError(
            f"polyline must be an (M>=2, 2) array, got shape {points.shape}"
        )
    xs, ys = grid if grid is not None else pixel_grid(size)
    image = np.zeros((size, size), dtype=np.float64)
    starts = points[:-1]
    ends = points[1:]
    for (x0, y0), (x1, y1) in zip(starts, ends):
        dx, dy = x1 - x0, y1 - y0
        length_sq = dx * dx + dy * dy
        if length_sq < 1e-12:
            dist_sq = (xs - x0) ** 2 + (ys - y0) ** 2
        else:
            # Project each pixel onto the segment, clamp to [0, 1].
            t = ((xs - x0) * dx + (ys - y0) * dy) / length_sq
            t = np.clip(t, 0.0, 1.0)
            px = x0 + t * dx
            py = y0 + t * dy
            dist_sq = (xs - px) ** 2 + (ys - py) ** 2
        np.maximum(image, np.exp(-dist_sq / (2.0 * width * width)), out=image)
    return image


def render_polylines(
    polylines: Sequence[Sequence[Point]],
    size: int = 28,
    width: float = 0.06,
) -> np.ndarray:
    """Rasterise several polylines onto a single canvas (max blend)."""
    grid = pixel_grid(size)
    image = np.zeros((size, size), dtype=np.float64)
    for polyline in polylines:
        np.maximum(
            image,
            render_polyline(polyline, size=size, width=width, grid=grid),
            out=image,
        )
    return image


def affine_points(
    points: np.ndarray,
    rotation: float = 0.0,
    scale: float = 1.0,
    shear: float = 0.0,
    translation: Tuple[float, float] = (0.0, 0.0),
    center: Tuple[float, float] = (0.5, 0.5),
) -> np.ndarray:
    """Apply an affine transform to unit-square points about ``center``."""
    points = np.asarray(points, dtype=np.float64)
    cx, cy = center
    cos, sin = np.cos(rotation), np.sin(rotation)
    rot = np.array([[cos, -sin], [sin, cos]])
    shear_mat = np.array([[1.0, shear], [0.0, 1.0]])
    matrix = scale * (rot @ shear_mat)
    shifted = points - np.array([cx, cy])
    transformed = shifted @ matrix.T + np.array([cx, cy]) + np.asarray(
        translation
    )
    return transformed


def random_affine(
    rng: RngLike,
    max_rotation: float = 0.25,
    scale_range: Tuple[float, float] = (0.85, 1.15),
    max_shear: float = 0.15,
    max_translation: float = 0.08,
) -> dict:
    """Draw random affine parameters for :func:`affine_points`."""
    generator = ensure_rng(rng)
    return {
        "rotation": generator.uniform(-max_rotation, max_rotation),
        "scale": generator.uniform(*scale_range),
        "shear": generator.uniform(-max_shear, max_shear),
        "translation": tuple(
            generator.uniform(-max_translation, max_translation, size=2)
        ),
    }


def add_pixel_noise(
    image: np.ndarray,
    rng: RngLike,
    noise_std: float = 0.05,
    intensity_range: Tuple[float, float] = (0.85, 1.0),
) -> np.ndarray:
    """Apply intensity jitter plus additive Gaussian noise, clipped to [0,1]."""
    generator = ensure_rng(rng)
    intensity = generator.uniform(*intensity_range)
    noisy = image * intensity
    if noise_std > 0:
        noisy = noisy + generator.normal(0.0, noise_std, size=image.shape)
    return np.clip(noisy, 0.0, 1.0)
