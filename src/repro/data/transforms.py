"""Array transforms applied to image batches.

Transforms are plain callables ``(N, C, H, W) -> (N, C, H, W)`` composed via
:class:`Compose`.  They operate on numpy arrays (before tensors enter the
autograd graph).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..utils.rng import RngLike, ensure_rng

__all__ = [
    "Compose",
    "Normalize",
    "ClipToUnit",
    "GaussianNoise",
    "RandomShift",
]


class Compose:
    """Apply a sequence of transforms left to right."""

    def __init__(self, transforms: Sequence[Callable]) -> None:
        self.transforms = list(transforms)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            x = transform(x)
        return x


class Normalize:
    """Shift-and-scale normalization ``(x - mean) / std``."""

    def __init__(self, mean: float, std: float) -> None:
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        self.mean = mean
        self.std = std

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x) - self.mean) / self.std


class ClipToUnit:
    """Clamp pixel values into ``[0, 1]`` — the valid image box used by
    all `l_inf` attacks in the paper."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(x), 0.0, 1.0)


class GaussianNoise:
    """Additive Gaussian pixel noise (data augmentation)."""

    def __init__(self, std: float = 0.05, rng: RngLike = None) -> None:
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        self.std = std
        self._rng = ensure_rng(rng)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if self.std == 0:
            return x
        return x + self._rng.normal(0.0, self.std, size=x.shape)


class RandomShift:
    """Random integer translation of each image, zero padded."""

    def __init__(self, max_shift: int = 2, rng: RngLike = None) -> None:
        if max_shift < 0:
            raise ValueError(
                f"max_shift must be non-negative, got {max_shift}"
            )
        self.max_shift = max_shift
        self._rng = ensure_rng(rng)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if self.max_shift == 0:
            return x
        out = np.zeros_like(x)
        for i in range(x.shape[0]):
            dy, dx = self._rng.integers(
                -self.max_shift, self.max_shift + 1, size=2
            )
            shifted = np.roll(x[i], (dy, dx), axis=(-2, -1))
            # Zero the wrapped-around strips.
            if dy > 0:
                shifted[..., :dy, :] = 0
            elif dy < 0:
                shifted[..., dy:, :] = 0
            if dx > 0:
                shifted[..., :, :dx] = 0
            elif dx < 0:
                shifted[..., :, dx:] = 0
            out[i] = shifted
        return out
