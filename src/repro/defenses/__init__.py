"""Adversarial-training defenses.

The package implements every Table I row:

* :class:`Trainer` — vanilla (undefended) training.
* :class:`FgsmAdvTrainer` — Single-Adv (Goodfellow et al., 2015).
* :class:`IterAdvTrainer` — Iter-Adv / BIM(k)-Adv (Kurakin et al., 2016).
* :class:`AtdaTrainer` — Single-Adv SOTA baseline (Song et al., 2018).
* :class:`EpochwiseAdvTrainer` — the paper's proposed method.
"""

from .adversarial import FgsmAdvTrainer, IterAdvTrainer, MixedAdversarialTrainer
from .atda import AtdaTrainer
from .callbacks import Checkpointer, EarlyStopping
from .domain_adaptation import (
    ClassCenters,
    coral_loss,
    covariance,
    margin_center_loss,
    mean_alignment_loss,
)
from .epochwise import EpochwiseAdvTrainer
from .free import FreeAdvTrainer
from .label_smooth import LabelSmoothingTrainer
from .pgd_adv import PgdAdvTrainer
from .registry import DEFENSE_NAMES, EXTENSION_NAMES, build_trainer
from .trades import TradesTrainer, kl_divergence
from .trainer import Trainer, TrainingHistory

__all__ = [
    "Trainer",
    "TrainingHistory",
    "MixedAdversarialTrainer",
    "FgsmAdvTrainer",
    "IterAdvTrainer",
    "AtdaTrainer",
    "EpochwiseAdvTrainer",
    "FreeAdvTrainer",
    "PgdAdvTrainer",
    "Checkpointer",
    "EarlyStopping",
    "TradesTrainer",
    "kl_divergence",
    "LabelSmoothingTrainer",
    "ClassCenters",
    "covariance",
    "coral_loss",
    "mean_alignment_loss",
    "margin_center_loss",
    "DEFENSE_NAMES",
    "EXTENSION_NAMES",
    "build_trainer",
]
