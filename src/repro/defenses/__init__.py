"""Adversarial-training defenses.

The package implements every Table I row:

* :class:`Trainer` — vanilla (undefended) training.
* :class:`FgsmAdvTrainer` — Single-Adv (Goodfellow et al., 2015).
* :class:`IterAdvTrainer` — Iter-Adv / BIM(k)-Adv (Kurakin et al., 2016).
* :class:`AtdaTrainer` — Single-Adv SOTA baseline (Song et al., 2018).
* :class:`EpochwiseAdvTrainer` — the paper's proposed method.

Build any of them by paper name through :func:`build_trainer`; the list of
canonical names is :func:`defense_names`.  (``DEFENSE_NAMES`` and
``EXTENSION_NAMES`` remain importable as deprecated aliases.)
"""

from .adversarial import FgsmAdvTrainer, IterAdvTrainer, MixedAdversarialTrainer
from .atda import AtdaTrainer
from .callbacks import Checkpointer, EarlyStopping
from .domain_adaptation import (
    ClassCenters,
    coral_loss,
    covariance,
    margin_center_loss,
    mean_alignment_loss,
)
from .epochwise import EpochwiseAdvTrainer
from .free import FreeAdvTrainer
from .label_smooth import LabelSmoothingTrainer
from .pgd_adv import PgdAdvTrainer
from .registry import (
    EXTENSION_DEFENSES,
    PAPER_DEFENSES,
    build_trainer,
    defense_names,
    register_defense,
)
from .trades import TradesTrainer, kl_divergence
from .trainer import Trainer, TrainingHistory

__all__ = [
    "Trainer",
    "TrainingHistory",
    "MixedAdversarialTrainer",
    "FgsmAdvTrainer",
    "IterAdvTrainer",
    "AtdaTrainer",
    "EpochwiseAdvTrainer",
    "FreeAdvTrainer",
    "PgdAdvTrainer",
    "Checkpointer",
    "EarlyStopping",
    "TradesTrainer",
    "kl_divergence",
    "LabelSmoothingTrainer",
    "ClassCenters",
    "covariance",
    "coral_loss",
    "mean_alignment_loss",
    "margin_center_loss",
    "PAPER_DEFENSES",
    "EXTENSION_DEFENSES",
    "defense_names",
    "register_defense",
    "build_trainer",
    # deprecated aliases, served lazily via __getattr__
    "DEFENSE_NAMES",
    "EXTENSION_NAMES",
]


def __getattr__(name: str):
    # Deprecated constants: delegate to the registry module's shim so the
    # DeprecationWarning is emitted exactly once per import site.
    if name in ("DEFENSE_NAMES", "EXTENSION_NAMES"):
        from . import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
