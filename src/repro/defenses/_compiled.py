"""Compiled train-step builders shared by the trainers.

When the runtime ``compiled`` toggle is on, ``Trainer.train_epoch`` routes
each batch through a :class:`~repro.autograd.tape.CompiledStep` built here
instead of the eager ``compute_batch_loss`` + ``loss.backward()`` pair.
The step functions below reproduce the eager loss expressions *exactly* —
same op order, same dtype rules — so the traced/replayed path is
bit-for-bit identical to eager training.

Each trainer caches its steps in a lazily-created ``_compiled_steps``
dict; a trainer subclass that overrides ``compute_batch_loss`` with its
own objective is automatically excluded (the identity checks live in the
trainers), so custom objectives silently keep eager semantics.
"""

from __future__ import annotations

from ..autograd.tape import CompiledStep
from ..data.loader import Batch

__all__ = ["clean_batch_loss", "mixture_batch_loss"]


def _training_guard(trainer):
    """Invalidate compiled variants when train/eval mode flips.

    The traced graph bakes in mode-dependent behaviour (e.g. dropout), so
    the mode is part of the tape's guard signature.
    """
    model = trainer.model
    return lambda: bool(getattr(model, "training", True))


def _steps(trainer) -> dict:
    steps = trainer.__dict__.get("_compiled_steps")
    if steps is None:
        steps = trainer.__dict__["_compiled_steps"] = {}
    return steps


def _clean_step(trainer) -> CompiledStep:
    steps = _steps(trainer)
    step = steps.get("clean")
    if step is None:
        model, loss_fn = trainer.model, trainer.loss_fn

        def clean_step(x, y):
            return loss_fn(model(x), y)

        step = steps["clean"] = CompiledStep(
            clean_step,
            guard=_training_guard(trainer),
            name=f"{trainer.name}.clean",
        )
    return step


def _mixture_step(trainer) -> CompiledStep:
    steps = _steps(trainer)
    step = steps.get("mixture")
    if step is None:
        model, loss_fn = trainer.model, trainer.loss_fn
        # The mixture weight is traced into the tape as a constant; it is
        # fixed at construction time for every trainer in the repo.
        alpha = trainer.clean_weight

        def mixture_step(x_clean, x_adv, y):
            clean_loss = loss_fn(model(x_clean), y)
            adv_loss = loss_fn(model(x_adv), y)
            return clean_loss * alpha + adv_loss * (1.0 - alpha)

        step = steps["mixture"] = CompiledStep(
            mixture_step,
            guard=_training_guard(trainer),
            name=f"{trainer.name}.mixture",
        )
    return step


def clean_batch_loss(trainer, batch: Batch) -> float:
    """Run the clean train step through the trainer's compiled tape."""
    result = _clean_step(trainer)(batch.x, batch.y)
    return float(result.outputs[0])


def mixture_batch_loss(trainer, batch: Batch, x_adv) -> float:
    """Run the clean/adversarial mixture step through the compiled tape."""
    result = _mixture_step(trainer)(batch.x, x_adv, batch.y)
    return float(result.outputs[0])
