"""Classic adversarial training: FGSM-Adv (Single-Adv) and BIM-Adv (Iter-Adv).

Both train on a mixture of clean and adversarial examples, as in the paper's
Section II setup:

* ``FgsmAdvTrainer`` — Goodfellow et al. (2015): one FGSM generation per
  batch (one extra forward/backward), cheap but defeated by iterative
  attacks (Figure 1, Table I rows "FGSM-Adv").
* ``IterAdvTrainer`` — Kurakin et al. (2016) / Madry et al. (2017): a
  ``k``-step BIM generation per batch (``k`` extra forward/backwards),
  strong but ``k`` times more expensive — Figure 3a's inner loop.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import telemetry as tel
from ..attacks import Attack, build_attack
from ..autograd import Tensor
from ..data.loader import Batch
from ..nn import Module, cross_entropy
from ..optim import Optimizer
from ..utils.validation import check_in_unit_interval
from .trainer import Trainer

__all__ = ["MixedAdversarialTrainer", "FgsmAdvTrainer", "IterAdvTrainer"]


class MixedAdversarialTrainer(Trainer):
    """Shared machinery: loss = alpha * clean + (1 - alpha) * adversarial.

    Subclasses provide the attack used to craft the adversarial half via
    :meth:`make_attack` or by overriding :meth:`adversarial_batch`; callers
    can instead pass any attack-registry spec string (``attack_spec``) and
    train against that attack directly.

    Parameters
    ----------
    clean_weight:
        Mixture weight ``alpha`` on the clean loss (paper setups use 0.5:
        "a mixture of original and ... examples").
    attack_spec:
        Optional ``name:param=value`` spec resolved through the canonical
        attack registry (:func:`repro.attacks.build_attack`); the trainer's
        ``epsilon`` attribute (when set by a subclass) supplies the budget.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable = cross_entropy,
        scheduler=None,
        clean_weight: float = 0.5,
        warmup_epochs: int = 0,
        attack_spec: Optional[str] = None,
    ) -> None:
        super().__init__(model, optimizer, loss_fn=loss_fn, scheduler=scheduler)
        check_in_unit_interval("clean_weight", clean_weight)
        if warmup_epochs < 0:
            raise ValueError(
                f"warmup_epochs must be non-negative, got {warmup_epochs}"
            )
        self.clean_weight = clean_weight
        self.warmup_epochs = int(warmup_epochs)
        self.attack_spec = attack_spec
        self.attack: Optional[Attack] = None

    @property
    def in_warmup(self) -> bool:
        """True while the trainer is still in its clean warmup phase."""
        return self.epoch < self.warmup_epochs

    def make_attack(self) -> Attack:
        """Build the training attack bound to the current model."""
        if self.attack_spec is not None:
            attack = build_attack(
                self.attack_spec,
                self.model,
                epsilon=getattr(self, "epsilon", None),
                loss_fn=self.loss_fn,
            )
            if attack is None:
                raise ValueError(
                    "adversarial training needs a real attack; got clean "
                    f"spec {self.attack_spec!r}"
                )
            return attack
        raise NotImplementedError

    def _ensure_attack(self) -> Attack:
        if self.attack is None:
            self.attack = self.make_attack()
        return self.attack

    def adversarial_batch(self, batch: Batch) -> np.ndarray:
        """Craft adversarial examples for this batch against the current
        model state (the generator/classifier interaction of Figure 3a)."""
        with tel.span("attack"):
            return self._ensure_attack().generate(batch.x, batch.y)

    def compute_batch_loss(self, batch: Batch) -> Tensor:
        """Loss for one batch (see class docstring for the objective)."""
        if self.in_warmup:
            return self.loss_fn(self.model(Tensor(batch.x)), batch.y)
        x_adv = self.adversarial_batch(batch)
        clean_loss = self.loss_fn(self.model(Tensor(batch.x)), batch.y)
        adv_loss = self.loss_fn(self.model(Tensor(x_adv)), batch.y)
        alpha = self.clean_weight
        return clean_loss * alpha + adv_loss * (1.0 - alpha)

    def _compiled_batch(self, batch: Batch):
        """Compiled mixture step; generation itself stays on its own path
        (the attack's gradient estimator compiles separately)."""
        if (
            type(self).compute_batch_loss
            is not MixedAdversarialTrainer.compute_batch_loss
        ):
            return None
        from ._compiled import clean_batch_loss, mixture_batch_loss

        if self.in_warmup:
            return clean_batch_loss(self, batch)
        x_adv = self.adversarial_batch(batch)
        return mixture_batch_loss(self, batch, x_adv)


class FgsmAdvTrainer(MixedAdversarialTrainer):
    """Single-Adv baseline: adversarial half crafted with one FGSM step."""

    name = "fgsm_adv"

    def __init__(self, model, optimizer, epsilon: float, **kwargs) -> None:
        super().__init__(model, optimizer, **kwargs)
        self.epsilon = float(epsilon)

    def make_attack(self) -> Attack:
        """Build the training attack bound to the current model."""
        if self.attack_spec is not None:
            return super().make_attack()
        return build_attack(
            "fgsm", self.model, epsilon=self.epsilon, loss_fn=self.loss_fn
        )


class IterAdvTrainer(MixedAdversarialTrainer):
    """Iter-Adv: adversarial half crafted with a full BIM run per batch.

    ``BIM(k)-Adv`` in the paper is ``IterAdvTrainer(num_steps=k)``; its cost
    per epoch is ``k + 2`` forward/backward passes versus 3 for Single-Adv
    methods, which is exactly the scaling Table I's timing column shows.
    """

    name = "iter_adv"

    def __init__(
        self,
        model,
        optimizer,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        **kwargs,
    ) -> None:
        super().__init__(model, optimizer, **kwargs)
        self.epsilon = float(epsilon)
        self.num_steps = int(num_steps)
        self.step_size = step_size

    @property
    def name_with_steps(self) -> str:
        """Paper-style row name, e.g. ``bim10_adv``."""
        return f"bim{self.num_steps}_adv"

    def make_attack(self) -> Attack:
        """Build the training attack bound to the current model."""
        if self.attack_spec is not None:
            return super().make_attack()
        return build_attack(
            "bim",
            self.model,
            epsilon=self.epsilon,
            num_steps=self.num_steps,
            step_size=self.step_size,
            loss_fn=self.loss_fn,
        )
