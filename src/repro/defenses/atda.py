"""ATDA: Adversarial Training with Domain Adaptation (Song et al., 2018).

The SOTA Single-Adv baseline the paper compares against (Table I).  Per
batch it:

1. crafts single-step adversarial examples (FGSM),
2. computes classification loss on both clean and adversarial halves,
3. adds unsupervised domain adaptation (CORAL + mean alignment between the
   clean and adversarial embedding distributions),
4. adds supervised domain adaptation (margin loss against EMA class
   centres computed over both domains).

Cost per epoch: one attack forward/backward plus the extra loss terms —
slightly above FGSM-Adv, noticeably above the proposed method once the DA
terms are included (Table I's timing column: ATDA 26.21 s vs proposed
18.68 s on the paper's hardware).
"""

from __future__ import annotations

from typing import Callable, Optional

from .. import telemetry as tel
from ..attacks import FGSM
from ..autograd import Tensor
from ..data.loader import Batch
from ..nn import Module, cross_entropy
from ..optim import Optimizer
from ..utils.validation import check_in_unit_interval, check_positive
from .domain_adaptation import (
    ClassCenters,
    coral_loss,
    margin_center_loss,
    mean_alignment_loss,
)
from .trainer import Trainer

__all__ = ["AtdaTrainer"]


class AtdaTrainer(Trainer):
    """Adversarial training with domain adaptation.

    Parameters
    ----------
    model:
        A :class:`~repro.models.FeatureClassifier` — ATDA needs access to
        the embedding (``model.embed``), not just the logits.
    epsilon:
        l_inf budget of the single-step attack.
    lambda_uda, lambda_sda:
        Weights of the unsupervised and supervised DA terms.
    margin:
        Margin of the supervised centre loss.
    center_momentum:
        EMA momentum of the class centres.
    embedding_dim:
        Dimension of ``model.embed`` outputs; inferred lazily when omitted.
    """

    name = "atda"

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        epsilon: float,
        lambda_uda: float = 1.0,
        lambda_sda: float = 0.1,
        margin: float = 1.0,
        center_momentum: float = 0.9,
        clean_weight: float = 0.5,
        warmup_epochs: int = 0,
        embedding_dim: Optional[int] = None,
        loss_fn: Callable = cross_entropy,
        scheduler=None,
    ) -> None:
        super().__init__(model, optimizer, loss_fn=loss_fn, scheduler=scheduler)
        if not hasattr(model, "embed"):
            raise TypeError(
                "AtdaTrainer requires a model exposing .embed() "
                "(see repro.models.FeatureClassifier)"
            )
        check_positive("epsilon", epsilon)
        check_in_unit_interval("clean_weight", clean_weight)
        self.epsilon = float(epsilon)
        self.lambda_uda = float(lambda_uda)
        self.lambda_sda = float(lambda_sda)
        self.margin = float(margin)
        self.center_momentum = float(center_momentum)
        if warmup_epochs < 0:
            raise ValueError(
                f"warmup_epochs must be non-negative, got {warmup_epochs}"
            )
        self.clean_weight = clean_weight
        self.warmup_epochs = int(warmup_epochs)
        self._embedding_dim = embedding_dim
        self._centers: Optional[ClassCenters] = None
        self._attack = FGSM(self.model, self.epsilon, loss_fn=self.loss_fn)

    # ------------------------------------------------------------------
    def _ensure_centers(self, dim: int) -> ClassCenters:
        if self._centers is None:
            num_classes = getattr(self.model, "num_classes", None)
            if num_classes is None:
                raise TypeError(
                    "model must expose num_classes for the SDA centres"
                )
            self._centers = ClassCenters(
                num_classes, dim, momentum=self.center_momentum
            )
        return self._centers

    @property
    def centers(self) -> Optional[ClassCenters]:
        """The supervised-DA class centres (None before the first batch)."""
        return self._centers

    # ------------------------------------------------------------------
    @property
    def in_warmup(self) -> bool:
        """True while the trainer is still in its clean warmup phase."""
        return self.epoch < self.warmup_epochs

    def compute_batch_loss(self, batch: Batch) -> Tensor:
        """Classification + UDA + SDA loss for one batch."""
        if self.in_warmup:
            return self.loss_fn(self.model(Tensor(batch.x)), batch.y)
        with tel.span("attack"):
            x_adv = self._attack.generate(batch.x, batch.y)

        clean_emb = self.model.embed(Tensor(batch.x))
        adv_emb = self.model.embed(Tensor(x_adv))
        clean_logits = self.model.head(clean_emb)
        adv_logits = self.model.head(adv_emb)

        alpha = self.clean_weight
        classification = (
            self.loss_fn(clean_logits, batch.y) * alpha
            + self.loss_fn(adv_logits, batch.y) * (1.0 - alpha)
        )

        uda = coral_loss(clean_emb, adv_emb) + mean_alignment_loss(
            clean_emb, adv_emb
        )

        centers = self._ensure_centers(clean_emb.shape[1])
        # Update centres from both domains before computing the margin term,
        # using detached embeddings (gradients do not flow into centres).
        centers.update(clean_emb.data, batch.y)
        centers.update(adv_emb.data, batch.y)
        sda = margin_center_loss(
            clean_emb, batch.y, centers.as_array(), margin=self.margin
        ) + margin_center_loss(
            adv_emb, batch.y, centers.as_array(), margin=self.margin
        )

        return (
            classification
            + uda * self.lambda_uda
            + sda * self.lambda_sda
        )
