"""Training callbacks: checkpointing and early stopping.

Callbacks observe the training loop through :meth:`on_epoch_end` and can
request a stop by returning ``True``.  They are deliberately minimal — the
experiments in this repo run fixed schedules, but downstream users training
to convergence (as the paper did) need both utilities.
"""

from __future__ import annotations

import os
from typing import Optional

from .. import telemetry as tel
from ..nn import Module
from ..utils.serialization import load_state_dict, save_state_dict

__all__ = ["Checkpointer", "EarlyStopping"]


class Checkpointer:
    """Persist model state during training.

    Parameters
    ----------
    directory:
        Where checkpoints are written.
    every:
        Save every ``every`` epochs (``0`` disables periodic saves).
    keep_best:
        Also track the best metric value and save ``best.npz``.
    mode:
        ``"max"`` if larger metric is better (accuracy), ``"min"`` for loss.
    """

    def __init__(
        self,
        directory: str,
        every: int = 0,
        keep_best: bool = True,
        mode: str = "max",
    ) -> None:
        if every < 0:
            raise ValueError(f"every must be non-negative, got {every}")
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.directory = directory
        self.every = every
        self.keep_best = keep_best
        self.mode = mode
        self.best_value: Optional[float] = None
        self.best_epoch: Optional[int] = None
        os.makedirs(directory, exist_ok=True)

    def _improved(self, value: float) -> bool:
        if self.best_value is None:
            return True
        if self.mode == "max":
            return value > self.best_value
        return value < self.best_value

    def on_epoch_end(
        self, epoch: int, model: Module, metric: Optional[float] = None
    ) -> bool:
        """Save periodic and best checkpoints; never requests a stop.

        Each save emits a ``checkpoint.saved`` telemetry event (printed by
        verbose trainers, recorded in ``--telemetry`` run records).
        """
        if self.every and epoch % self.every == 0:
            path = os.path.join(self.directory, f"epoch_{epoch:04d}.npz")
            save_state_dict(path, model.state_dict())
            tel.event(
                "checkpoint.saved", epoch=epoch, path=path, kind="periodic"
            )
            tel.counter("checkpoint.saved")
        if self.keep_best and metric is not None and self._improved(metric):
            self.best_value = float(metric)
            self.best_epoch = epoch
            path = os.path.join(self.directory, "best.npz")
            save_state_dict(path, model.state_dict())
            tel.event(
                "checkpoint.saved", epoch=epoch, path=path, kind="best",
                metric=float(metric),
            )
            tel.counter("checkpoint.saved")
        return False

    def load_best(self, model: Module) -> Module:
        """Restore the best checkpoint into ``model`` (in place)."""
        path = os.path.join(self.directory, "best.npz")
        model.load_state_dict(load_state_dict(path))
        return model


class EarlyStopping:
    """Stop training when a metric stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving observations tolerated.
    min_delta:
        Minimum change that counts as an improvement.
    mode:
        ``"max"`` (accuracy-like) or ``"min"`` (loss-like).
    """

    def __init__(
        self, patience: int = 5, min_delta: float = 0.0, mode: str = "max"
    ) -> None:
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        if min_delta < 0:
            raise ValueError(
                f"min_delta must be non-negative, got {min_delta}"
            )
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best_value: Optional[float] = None
        self.stale = 0

    def _improved(self, value: float) -> bool:
        if self.best_value is None:
            return True
        if self.mode == "max":
            return value > self.best_value + self.min_delta
        return value < self.best_value - self.min_delta

    def on_epoch_end(
        self, epoch: int, model: Module, metric: Optional[float] = None
    ) -> bool:
        """Return ``True`` when training should stop.

        Triggering emits an ``early_stop.triggered`` telemetry event
        (printed by verbose trainers, recorded in run records).
        """
        if metric is None:
            return False
        if self._improved(metric):
            self.best_value = float(metric)
            self.stale = 0
            return False
        self.stale += 1
        if self.stale >= self.patience:
            tel.event(
                "early_stop.triggered", epoch=epoch, best=self.best_value,
                patience=self.patience,
            )
            tel.counter("early_stop.triggered")
            return True
        return False
