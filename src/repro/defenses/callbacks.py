"""Training callbacks: checkpointing and early stopping.

Callbacks observe the training loop through :meth:`on_epoch_end` and can
request a stop by returning ``True``.  They are deliberately minimal — the
experiments in this repo run fixed schedules, but downstream users training
to convergence (as the paper did) need both utilities.
"""

from __future__ import annotations

import os
from typing import Optional

from ..nn import Module
from ..utils.serialization import load_state_dict, save_state_dict

__all__ = ["Checkpointer", "EarlyStopping"]


class Checkpointer:
    """Persist model state during training.

    Parameters
    ----------
    directory:
        Where checkpoints are written.
    every:
        Save every ``every`` epochs (``0`` disables periodic saves).
    keep_best:
        Also track the best metric value and save ``best.npz``.
    mode:
        ``"max"`` if larger metric is better (accuracy), ``"min"`` for loss.
    """

    def __init__(
        self,
        directory: str,
        every: int = 0,
        keep_best: bool = True,
        mode: str = "max",
    ) -> None:
        if every < 0:
            raise ValueError(f"every must be non-negative, got {every}")
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.directory = directory
        self.every = every
        self.keep_best = keep_best
        self.mode = mode
        self.best_value: Optional[float] = None
        self.best_epoch: Optional[int] = None
        os.makedirs(directory, exist_ok=True)

    def _improved(self, value: float) -> bool:
        if self.best_value is None:
            return True
        if self.mode == "max":
            return value > self.best_value
        return value < self.best_value

    def on_epoch_end(
        self, epoch: int, model: Module, metric: Optional[float] = None
    ) -> bool:
        """Save periodic and best checkpoints; never requests a stop."""
        if self.every and epoch % self.every == 0:
            save_state_dict(
                os.path.join(self.directory, f"epoch_{epoch:04d}.npz"),
                model.state_dict(),
            )
        if self.keep_best and metric is not None and self._improved(metric):
            self.best_value = float(metric)
            self.best_epoch = epoch
            save_state_dict(
                os.path.join(self.directory, "best.npz"), model.state_dict()
            )
        return False

    def load_best(self, model: Module) -> Module:
        """Restore the best checkpoint into ``model`` (in place)."""
        path = os.path.join(self.directory, "best.npz")
        model.load_state_dict(load_state_dict(path))
        return model


class EarlyStopping:
    """Stop training when a metric stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving observations tolerated.
    min_delta:
        Minimum change that counts as an improvement.
    mode:
        ``"max"`` (accuracy-like) or ``"min"`` (loss-like).
    """

    def __init__(
        self, patience: int = 5, min_delta: float = 0.0, mode: str = "max"
    ) -> None:
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        if min_delta < 0:
            raise ValueError(
                f"min_delta must be non-negative, got {min_delta}"
            )
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best_value: Optional[float] = None
        self.stale = 0

    def _improved(self, value: float) -> bool:
        if self.best_value is None:
            return True
        if self.mode == "max":
            return value > self.best_value + self.min_delta
        return value < self.best_value - self.min_delta

    def on_epoch_end(
        self, epoch: int, model: Module, metric: Optional[float] = None
    ) -> bool:
        """Return ``True`` when training should stop."""
        if metric is None:
            return False
        if self._improved(metric):
            self.best_value = float(metric)
            self.stale = 0
            return False
        self.stale += 1
        return self.stale >= self.patience
