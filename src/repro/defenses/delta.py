"""Out-of-core storage for the epochwise defense's carried perturbations.

The epoch-wise trainer used to keep its cross-epoch cache as one dense
``(N, *example)`` array of *adversarial examples* — a second copy of the
whole dataset, which is exactly the fits-in-memory assumption the
streaming pipeline removes.  This module replaces it with a
:class:`DeltaStore`:

* it carries **perturbations** (``delta = x_adv - x_clean``), not
  examples — the clean example is reconstructed by the data pipeline on
  demand, so the store is the only epochwise state and it is bounded by
  an explicit byte budget;
* deltas live in fixed-size **blocks** keyed by ``index // block_size``,
  held in a :class:`~repro.data.source.ShardCache` so least-recently
  touched blocks are evicted first when the budget binds (those examples
  simply restart from clean — graceful degradation, not an error);
* block buffers are drawn from and returned to the workspace pool, so a
  budget-bounded run recycles the same few buffers per epoch.

Reconstruction is ``clip(x_clean + delta, 0, 1)``, which matches the
stored iterate exactly in exact arithmetic (the attack projection already
produced ``x_adv`` inside the box) and to the last ulp in floating point.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..data.source import ShardCache
from ..runtime import compute_dtype
from ..runtime.workspace import get_workspace

__all__ = ["DeltaStore", "DEFAULT_BLOCK_SIZE"]

# Block granularity: 256 28x28 float64 deltas ~ 1.6 MB — fine-grained
# enough that a few-MB budget holds several blocks, coarse enough that
# per-block bookkeeping is negligible next to the attack step.
DEFAULT_BLOCK_SIZE = 256


class DeltaStore:
    """Blocked, byte-budgeted map from dataset index to carried delta.

    Parameters
    ----------
    block_size:
        Dataset indices per block; block ``b`` covers
        ``[b * block_size, (b+1) * block_size)``.
    budget_bytes:
        Total byte budget for resident blocks; ``None`` is unbounded
        (the in-memory behaviour, minus the second copy of the clean
        data).  When it binds, LRU blocks are dropped and their examples
        restart from the clean image at the next epoch.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        budget_bytes: Optional[int] = None,
    ) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = int(block_size)
        self._blocks = ShardCache(
            budget_bytes=budget_bytes, on_evict=self._dispose_block
        )
        self._example_shape: Optional[Tuple[int, ...]] = None
        self._dtype: Optional[np.dtype] = None

    # -- lifecycle -------------------------------------------------------
    @staticmethod
    def _dispose_block(block_id, entry) -> None:
        delta, has = entry
        workspace = get_workspace()
        workspace.release(delta)
        workspace.release(has)

    def clear(self) -> None:
        """Drop every carried delta (the epoch-wise cache reset)."""
        self._blocks.clear()

    # -- geometry upkeep -------------------------------------------------
    def _align(self, example_shape: Tuple[int, ...]) -> np.dtype:
        """Track the (shape, dtype) regime; changes invalidate or recast.

        A changed example shape means the store is being reused against a
        different dataset — carried deltas are meaningless, drop them.  A
        changed compute dtype (precision policy switched mid-run) keeps
        the carried state by recasting the few resident blocks.
        """
        dtype = np.dtype(compute_dtype())
        if (
            self._example_shape is not None
            and self._example_shape != example_shape
        ):
            self.clear()
        self._example_shape = example_shape
        if self._dtype is not None and self._dtype != dtype:
            workspace = get_workspace()
            for block_id, (delta, has) in list(self._blocks.items()):
                cast = workspace.acquire(delta.shape, dtype)
                np.copyto(cast, delta, casting="unsafe")
                workspace.release(delta)
                self._blocks.put(
                    block_id, (cast, has), cast.nbytes + has.nbytes
                )
        self._dtype = dtype
        return dtype

    def _new_block(self, dtype: np.dtype):
        # Evict ahead of the allocation so displaced block buffers land
        # in the workspace pool in time to be recycled for this one.
        row = int(np.prod(self._example_shape)) * dtype.itemsize + 1
        self._blocks.reserve(self.block_size * row)
        workspace = get_workspace()
        delta = workspace.acquire(
            (self.block_size, *self._example_shape), dtype
        )
        has = workspace.acquire((self.block_size,), np.bool_)
        has.fill(False)
        return delta, has

    # -- reads -----------------------------------------------------------
    def lookup(self, indices: np.ndarray, x_clean: np.ndarray) -> np.ndarray:
        """Reconstruct the carried iterates for a batch.

        Returns a fresh array: ``clip(x_clean + delta, 0, 1)`` where a
        delta is carried, the clean example where none is (first touch,
        post-reset, or evicted block).
        """
        idx = np.asarray(indices, dtype=np.intp)
        x_clean = np.asarray(x_clean)
        out = x_clean.copy()
        if len(self._blocks) == 0 or idx.size == 0:
            return out
        block_ids = idx // self.block_size
        for block_id in np.unique(block_ids):
            entry = self._blocks.get(int(block_id))
            if entry is None:
                continue
            delta, has = entry
            rows = np.flatnonzero(block_ids == block_id)
            local = idx[rows] - int(block_id) * self.block_size
            carried = has[local]
            if not carried.any():
                continue
            rows = rows[carried]
            local = local[carried]
            out[rows] = np.clip(x_clean[rows] + delta[local], 0.0, 1.0)
        return out

    # -- writes ----------------------------------------------------------
    def store(
        self, indices: np.ndarray, x_adv: np.ndarray, x_clean: np.ndarray
    ) -> None:
        """Carry ``x_adv - x_clean`` for a batch into the store."""
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            return
        x_adv = np.asarray(x_adv)
        dtype = self._align(tuple(x_adv.shape[1:]))
        batch_delta = np.subtract(x_adv, x_clean, dtype=dtype)
        block_ids = idx // self.block_size
        for block_id in np.unique(block_ids):
            entry = self._blocks.get(int(block_id))
            if entry is None:
                entry = self._new_block(dtype)
            delta, has = entry
            rows = np.flatnonzero(block_ids == block_id)
            local = idx[rows] - int(block_id) * self.block_size
            delta[local] = batch_delta[rows]
            has[local] = True
            # (Re-)insert: bumps recency and re-evaluates the budget.
            self._blocks.put(
                int(block_id), (delta, has), delta.nbytes + has.nbytes
            )

    # -- mapping-style access (diagnostics, tests) -----------------------
    def has(self, index: int) -> bool:
        """Whether a delta is carried for one dataset index."""
        entry = self._blocks.peek(int(index) // self.block_size)
        if entry is None:
            return False
        return bool(entry[1][int(index) % self.block_size])

    def delta(self, index: int) -> np.ndarray:
        """The carried delta row for one dataset index (KeyError if none)."""
        entry = self._blocks.peek(int(index) // self.block_size)
        if entry is None or not entry[1][int(index) % self.block_size]:
            raise KeyError(index)
        return entry[0][int(index) % self.block_size]

    def indices(self) -> Iterator[int]:
        """All dataset indices with a carried delta, ascending per block."""
        for block_id, (_, has) in sorted(self._blocks.items()):
            base = int(block_id) * self.block_size
            for local in np.flatnonzero(has):
                yield base + int(local)

    # -- accounting ------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of dataset indices with a carried delta."""
        return int(
            sum(int(has.sum()) for _, (_, has) in self._blocks.items())
        )

    @property
    def nbytes(self) -> int:
        return self._blocks.bytes

    @property
    def peak_bytes(self) -> int:
        return self._blocks.peak_bytes

    @property
    def evictions(self) -> int:
        return self._blocks.evictions

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def telemetry_gauges(self, prefix: str = "epochwise.cache") -> dict:
        """Store statistics keyed by their telemetry gauge names."""
        return {
            f"{prefix}_bytes": self.nbytes,
            f"{prefix}_peak_bytes": self.peak_bytes,
            f"{prefix}_blocks": self.num_blocks,
            f"{prefix}_evictions": self.evictions,
        }

    def __repr__(self) -> str:
        budget = self._blocks.budget_bytes
        return (
            f"DeltaStore(block_size={self.block_size}, "
            f"blocks={self.num_blocks}, bytes={self.nbytes}, "
            f"budget={'∞' if budget is None else budget})"
        )
