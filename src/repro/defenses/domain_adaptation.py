"""Domain-adaptation losses used by the ATDA baseline (Song et al., 2018).

ATDA treats clean and adversarial examples as two *domains* and regularises
the classifier's embedding so the domains align:

* **Unsupervised DA** — :func:`coral_loss` aligns second moments
  (covariances) and :func:`mean_alignment_loss` aligns first moments of the
  two embedding distributions.
* **Supervised DA** — :func:`margin_center_loss` pulls each embedding
  toward its class centre and pushes it at least ``margin`` away from every
  other centre; :class:`ClassCenters` maintains the centres with an
  exponential moving average (updated outside the autograd graph).

All losses are differentiable w.r.t. the embeddings.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, as_tensor, relu
from ..runtime import compute_dtype, ensure_float_array
from ..utils.validation import check_positive

__all__ = [
    "covariance",
    "coral_loss",
    "mean_alignment_loss",
    "margin_center_loss",
    "ClassCenters",
]


def covariance(embeddings: Tensor) -> Tensor:
    """Sample covariance matrix of an ``(N, D)`` embedding batch."""
    embeddings = as_tensor(embeddings)
    if embeddings.ndim != 2:
        raise ValueError(
            f"embeddings must be (N, D), got shape {embeddings.shape}"
        )
    n = embeddings.shape[0]
    centered = embeddings - embeddings.mean(axis=0, keepdims=True)
    denom = max(n - 1, 1)
    return (centered.transpose() @ centered) * (1.0 / denom)


def coral_loss(clean_emb: Tensor, adv_emb: Tensor) -> Tensor:
    """CORAL covariance-alignment loss, L1 form normalised by d^2."""
    clean_emb = as_tensor(clean_emb)
    adv_emb = as_tensor(adv_emb)
    if clean_emb.shape[1] != adv_emb.shape[1]:
        raise ValueError(
            "embedding dimensions disagree: "
            f"{clean_emb.shape[1]} vs {adv_emb.shape[1]}"
        )
    d = clean_emb.shape[1]
    diff = covariance(clean_emb) - covariance(adv_emb)
    return diff.abs().sum() * (1.0 / (d * d))


def mean_alignment_loss(clean_emb: Tensor, adv_emb: Tensor) -> Tensor:
    """First-moment alignment: L1 distance of the domain means over d."""
    clean_emb = as_tensor(clean_emb)
    adv_emb = as_tensor(adv_emb)
    d = clean_emb.shape[1]
    diff = clean_emb.mean(axis=0) - adv_emb.mean(axis=0)
    return diff.abs().sum() * (1.0 / d)


class ClassCenters:
    """Per-class embedding centres maintained with an EMA.

    Centres live outside the autograd graph: gradients flow into the
    embeddings through the margin loss, not into the centres (matching the
    ATDA training procedure).
    """

    def __init__(
        self, num_classes: int, dim: int, momentum: float = 0.9
    ) -> None:
        check_positive("num_classes", num_classes)
        check_positive("dim", dim)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.num_classes = num_classes
        self.dim = dim
        self.momentum = momentum
        self.centers = np.zeros((num_classes, dim), dtype=compute_dtype())
        self._initialized = np.zeros(num_classes, dtype=bool)

    def update(self, embeddings: np.ndarray, labels: np.ndarray) -> None:
        """EMA-update centres from a batch of (detached) embeddings."""
        embeddings = np.asarray(
            embeddings.data if isinstance(embeddings, Tensor) else embeddings
        )
        labels = np.asarray(labels)
        for cls in np.unique(labels):
            batch_mean = embeddings[labels == cls].mean(axis=0)
            if self._initialized[cls]:
                self.centers[cls] = (
                    self.momentum * self.centers[cls]
                    + (1.0 - self.momentum) * batch_mean
                )
            else:
                self.centers[cls] = batch_mean
                self._initialized[cls] = True

    def as_array(self) -> np.ndarray:
        """Copy of the current centre matrix ``(num_classes, dim)``."""
        return self.centers.copy()


def margin_center_loss(
    embeddings: Tensor,
    labels: np.ndarray,
    centers: np.ndarray,
    margin: float = 1.0,
) -> Tensor:
    """Supervised domain-adaptation margin loss.

    For each example with embedding ``e`` and class ``y``::

        sum_{k != y} max(0, margin + ||e - c_y||_1/d - ||e - c_k||_1/d)

    averaged over examples and the ``K - 1`` negative classes.
    """
    embeddings = as_tensor(embeddings)
    labels = np.asarray(labels)
    centers = ensure_float_array(centers)
    n, d = embeddings.shape
    k = centers.shape[0]
    if k < 2:
        raise ValueError("margin loss needs at least two classes")
    # (N, K): mean L1 distance from each embedding to each centre.
    expanded = embeddings.reshape(n, 1, d) - Tensor(centers.reshape(1, k, d))
    distances = expanded.abs().mean(axis=2)
    own = distances[np.arange(n), labels].reshape(n, 1)
    violations = relu(own + margin - distances)
    # Zero out the own-class column (margin vs itself is meaningless).
    mask = np.ones((n, k), dtype=centers.dtype)
    mask[np.arange(n), labels] = 0.0
    violations = violations * Tensor(mask)
    return violations.sum() * (1.0 / (n * (k - 1)))
