"""The paper's proposed defense: epoch-wise single-step adversarial training.

This is the contribution of Section IV (Figure 3b).  Instead of running the
BIM inner loop to completion inside every epoch (Iter-Adv, Figure 3a), the
trainer:

1. keeps a **per-example cache** of adversarial examples carried across
   epochs — the BIM iteration is amortised over the training epochs
   (empirical property 2: intermediate iterates already reveal most blind
   spots);
2. applies exactly **one** perturbation step per example per epoch, using a
   **relatively large per-step perturbation** (empirical property 1: tiny
   steps stop paying off) so the cached examples quickly reach the full
   budget;
3. **resets** the cache to the clean examples every ``reset_interval``
   epochs, so the accumulated perturbations track the long-term drift of
   the classifier's parameters.

Paper hyper-parameters: per-step size ``eps / 10``, reset every 20 epochs.
Per-epoch cost is one extra forward/backward — the same as FGSM-Adv and far
below BIM(k)-Adv's ``k`` — which yields Table I's timing column.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Optional

import numpy as np

from .. import telemetry as tel
from ..attacks import (
    AttackLoop,
    BackpropGradient,
    GradientStep,
    LinfBoxProjection,
    SignStep,
)
from ..autograd import Tensor
from ..data.loader import Batch
from ..nn import Module, cross_entropy
from ..optim import Optimizer
from ..runtime import compute_dtype, ensure_float_array
from ..utils.validation import check_in_unit_interval, check_positive
from .trainer import Trainer

__all__ = ["EpochwiseAdvTrainer"]


class _ExampleCache(Mapping):
    """Read-only dict-like view over the vectorised adversarial cache.

    The trainer stores cached iterates in one dense ``(N, *example)``
    array plus an occupancy mask (batch assembly and storage are then
    single fancy-index operations instead of per-row dict traffic); this
    view preserves the historical ``trainer._cache`` mapping interface
    for tests and diagnostics.
    """

    __slots__ = ("_x", "_has")

    def __init__(self, x: Optional[np.ndarray], has: Optional[np.ndarray]):
        self._x = x
        self._has = has

    def __getitem__(self, index: int) -> np.ndarray:
        index = int(index)
        has = self._has
        if has is not None and 0 <= index < len(has) and has[index]:
            return self._x[index]
        raise KeyError(index)

    def __iter__(self):
        if self._has is None:
            return iter(())
        return iter(np.flatnonzero(self._has).tolist())

    def __len__(self) -> int:
        return 0 if self._has is None else int(self._has.sum())


class EpochwiseAdvTrainer(Trainer):
    """Proposed Single-Adv method (Liu et al., 2019).

    Parameters
    ----------
    model, optimizer, loss_fn, scheduler:
        As in :class:`~repro.defenses.trainer.Trainer`.
    epsilon:
        Total l_inf budget; cached perturbations are always projected into
        the epsilon-ball around the clean example and into the image box.
    step_size:
        Per-epoch perturbation step — the paper's "relatively large per
        step perturbation".  The paper used ``epsilon / 10`` on a 60k-image
        dataset trained for many epochs; on this repo's smaller, faster-
        drifting substrate the calibrated equivalent is ``epsilon`` (the
        default).  The ablation benchmark sweeps this factor and shows the
        paper's property 1 trend: too-small steps cripple the defense.
    reset_interval:
        Cache reset period in epochs (paper: 20).  ``0`` disables resets.
    clean_weight:
        Mixture weight of the clean loss (0.5 as in the other defenses).
    """

    name = "epochwise_adv"

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        epsilon: float,
        step_size: Optional[float] = None,
        reset_interval: int = 20,
        clean_weight: float = 0.5,
        warmup_epochs: int = 0,
        loss_fn: Callable = cross_entropy,
        scheduler=None,
    ) -> None:
        super().__init__(model, optimizer, loss_fn=loss_fn, scheduler=scheduler)
        check_positive("epsilon", epsilon)
        if reset_interval < 0:
            raise ValueError(
                f"reset_interval must be non-negative, got {reset_interval}"
            )
        if warmup_epochs < 0:
            raise ValueError(
                f"warmup_epochs must be non-negative, got {warmup_epochs}"
            )
        check_in_unit_interval("clean_weight", clean_weight)
        self.warmup_epochs = int(warmup_epochs)
        self.epsilon = float(epsilon)
        self.step_size = (
            float(step_size) if step_size is not None else self.epsilon
        )
        check_positive("step_size", self.step_size)
        self.reset_interval = int(reset_interval)
        self.clean_weight = clean_weight
        # dataset index -> current adversarial example (carried across
        # epochs), stored densely: one (N, *example) array plus an
        # occupancy mask so batch assembly is a fancy-index gather.
        self._cache_x: Optional[np.ndarray] = None
        self._cache_has: Optional[np.ndarray] = None
        # The paper's method IS the attack engine run with carried state:
        # the per-example cache plays the initializer role (the iterate is
        # resumed, not restarted), and each epoch applies exactly one
        # engine step — a BIM step composition (backprop gradient, sign
        # rule, fused l_inf+box projection) with the clean example as the
        # projection anchor.
        self._stepper = AttackLoop(
            self.model,
            GradientStep(
                BackpropGradient(self.model, self.loss_fn),
                SignStep(self.step_size),
                LinfBoxProjection(self.epsilon),
            ),
            num_steps=1,
        )

    # ------------------------------------------------------------------
    @property
    def _cache(self) -> _ExampleCache:
        """Mapping view of the cache (dataset index -> cached iterate)."""
        return _ExampleCache(self._cache_x, self._cache_has)

    def reset_cache(self) -> None:
        """Forget all cached adversarial examples (epoch-wise restart)."""
        self._cache_x = None
        self._cache_has = None

    @property
    def cache_size(self) -> int:
        """Number of examples with a cached adversarial iterate."""
        has = self._cache_has
        return 0 if has is None else int(has.sum())

    @property
    def in_warmup(self) -> bool:
        """True while the trainer is still in its clean warmup phase."""
        return self.epoch < self.warmup_epochs

    def on_epoch_start(self, epoch: int) -> None:
        """Reset the cache every ``reset_interval`` adversarial epochs."""
        adv_epoch = epoch - self.warmup_epochs
        if (
            self.reset_interval
            and adv_epoch > 0
            and adv_epoch % self.reset_interval == 0
        ):
            dropped = self.cache_size
            self.reset_cache()
            tel.counter("epochwise.cache_resets")
            tel.event(
                "epochwise.cache_reset", epoch=epoch, dropped=dropped
            )

    # ------------------------------------------------------------------
    def _ensure_capacity(self, capacity: int, example_shape: tuple) -> None:
        """Size the dense cache to hold dataset indices below ``capacity``."""
        dtype = np.dtype(compute_dtype())
        x, has = self._cache_x, self._cache_has
        if (
            x is not None
            and x.dtype == dtype
            and x.shape[1:] == tuple(example_shape)
            and has.shape[0] >= capacity
        ):
            return
        old = 0 if has is None else has.shape[0]
        # Grow geometrically so an epoch of sequential stores stays O(N).
        size = max(capacity, old + (old >> 2), 64)
        new_x = np.zeros((size, *example_shape), dtype)
        new_has = np.zeros(size, dtype=bool)
        if has is not None and x.shape[1:] == tuple(example_shape):
            new_x[:old] = x.astype(dtype, copy=False)
            new_has[:old] = has
        self._cache_x, self._cache_has = new_x, new_has

    def _cached_batch(self, batch: Batch) -> np.ndarray:
        """Assemble the carried-over adversarial batch (clean on first use)."""
        x_clean = ensure_float_array(batch.x)
        has_all = self._cache_has
        if has_all is None:
            return x_clean.copy() if x_clean is batch.x else x_clean
        idx = np.asarray(batch.indices, dtype=np.intp)
        valid = idx < has_all.shape[0]
        if valid.all():
            has = has_all[idx]
        else:
            has = np.zeros(idx.shape[0], dtype=bool)
            has[valid] = has_all[idx[valid]]
        hits = int(has.sum())
        if hits == 0:
            return x_clean.copy() if x_clean is batch.x else x_clean
        cache_x = self._cache_x
        if hits == has.shape[0]:
            return cache_x[idx]
        # Mixed batch: promote exactly as stacking mixed-dtype rows would.
        dtype = np.result_type(x_clean.dtype, cache_x.dtype)
        out = x_clean.astype(dtype, copy=True)
        out[has] = cache_x[idx[has]]
        return out

    def _store_batch(self, batch: Batch, x_adv: np.ndarray) -> None:
        # The cross-epoch cache lives in the policy compute dtype; storing
        # anything wider would double its memory footprint for no benefit.
        x_adv = np.asarray(x_adv, dtype=compute_dtype())
        idx = np.asarray(batch.indices, dtype=np.intp)
        if idx.size == 0:
            return
        self._ensure_capacity(int(idx.max()) + 1, x_adv.shape[1:])
        self._cache_x[idx] = x_adv
        self._cache_has[idx] = True

    def adversarial_batch(self, batch: Batch) -> np.ndarray:
        """One perturbation step from the cached iterate (Figure 3b)."""
        with tel.span("attack"):
            x_start = self._cached_batch(batch)
            x_clean = ensure_float_array(batch.x)
            x_adv = self._stepper.step(x_start, x_clean, batch.y)
            self._store_batch(batch, x_adv)
            return x_adv

    def compute_batch_loss(self, batch: Batch) -> Tensor:
        """Mixture of clean loss and cached-adversarial loss."""
        if self.in_warmup:
            return self.loss_fn(self.model(Tensor(batch.x)), batch.y)
        x_adv = self.adversarial_batch(batch)
        clean_loss = self.loss_fn(self.model(Tensor(batch.x)), batch.y)
        adv_loss = self.loss_fn(self.model(Tensor(x_adv)), batch.y)
        alpha = self.clean_weight
        return clean_loss * alpha + adv_loss * (1.0 - alpha)

    def _compiled_batch(self, batch: Batch):
        """Compiled mixture step; the single cached-iterate perturbation
        step keeps its own path (its gradient estimator compiles too)."""
        if (
            type(self).compute_batch_loss
            is not EpochwiseAdvTrainer.compute_batch_loss
        ):
            return None
        from ._compiled import clean_batch_loss, mixture_batch_loss

        if self.in_warmup:
            return clean_batch_loss(self, batch)
        x_adv = self.adversarial_batch(batch)
        return mixture_batch_loss(self, batch, x_adv)
