"""The paper's proposed defense: epoch-wise single-step adversarial training.

This is the contribution of Section IV (Figure 3b).  Instead of running the
BIM inner loop to completion inside every epoch (Iter-Adv, Figure 3a), the
trainer:

1. keeps a **per-example cache** of adversarial examples carried across
   epochs — the BIM iteration is amortised over the training epochs
   (empirical property 2: intermediate iterates already reveal most blind
   spots);
2. applies exactly **one** perturbation step per example per epoch, using a
   **relatively large per-step perturbation** (empirical property 1: tiny
   steps stop paying off) so the cached examples quickly reach the full
   budget;
3. **resets** the cache to the clean examples every ``reset_interval``
   epochs, so the accumulated perturbations track the long-term drift of
   the classifier's parameters.

Paper hyper-parameters: per-step size ``eps / 10``, reset every 20 epochs.
Per-epoch cost is one extra forward/backward — the same as FGSM-Adv and far
below BIM(k)-Adv's ``k`` — which yields Table I's timing column.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Optional

import numpy as np

from .. import telemetry as tel
from ..attacks import (
    AttackLoop,
    BackpropGradient,
    GradientStep,
    LinfBoxProjection,
    SignStep,
)
from ..autograd import Tensor
from ..data.loader import Batch
from ..nn import Module, cross_entropy
from ..optim import Optimizer
from ..runtime import ensure_float_array
from ..utils.validation import check_in_unit_interval, check_positive
from .delta import DEFAULT_BLOCK_SIZE, DeltaStore
from .trainer import Trainer

__all__ = ["EpochwiseAdvTrainer"]


class _DeltaView(Mapping):
    """Read-only dict-like view over the carried perturbations.

    The trainer stores carried state in a blocked
    :class:`~repro.defenses.delta.DeltaStore` (perturbations, not
    examples); this view preserves the historical ``trainer._cache``
    mapping interface for tests and diagnostics — keys are dataset
    indices, values are the carried **delta** rows (``x_adv - x_clean``).
    """

    __slots__ = ("_store",)

    def __init__(self, store: DeltaStore):
        self._store = store

    def __getitem__(self, index: int) -> np.ndarray:
        return self._store.delta(index)

    def __iter__(self):
        return self._store.indices()

    def __len__(self) -> int:
        return self._store.count


class EpochwiseAdvTrainer(Trainer):
    """Proposed Single-Adv method (Liu et al., 2019).

    Parameters
    ----------
    model, optimizer, loss_fn, scheduler:
        As in :class:`~repro.defenses.trainer.Trainer`.
    epsilon:
        Total l_inf budget; cached perturbations are always projected into
        the epsilon-ball around the clean example and into the image box.
    step_size:
        Per-epoch perturbation step — the paper's "relatively large per
        step perturbation".  The paper used ``epsilon / 10`` on a 60k-image
        dataset trained for many epochs; on this repo's smaller, faster-
        drifting substrate the calibrated equivalent is ``epsilon`` (the
        default).  The ablation benchmark sweeps this factor and shows the
        paper's property 1 trend: too-small steps cripple the defense.
    reset_interval:
        Cache reset period in epochs (paper: 20).  ``0`` disables resets.
    clean_weight:
        Mixture weight of the clean loss (0.5 as in the other defenses).
    delta_block_size:
        Dataset indices per delta-store block (see
        :class:`~repro.defenses.delta.DeltaStore`).
    delta_budget_bytes:
        Byte budget for the carried perturbations; ``None`` is unbounded.
        Under a binding budget, least-recently-trained blocks are dropped
        and their examples restart from clean — the streaming analogue of
        a partial cache reset.
    """

    name = "epochwise_adv"

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        epsilon: float,
        step_size: Optional[float] = None,
        reset_interval: int = 20,
        clean_weight: float = 0.5,
        warmup_epochs: int = 0,
        loss_fn: Callable = cross_entropy,
        scheduler=None,
        delta_block_size: int = DEFAULT_BLOCK_SIZE,
        delta_budget_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(model, optimizer, loss_fn=loss_fn, scheduler=scheduler)
        check_positive("epsilon", epsilon)
        if reset_interval < 0:
            raise ValueError(
                f"reset_interval must be non-negative, got {reset_interval}"
            )
        if warmup_epochs < 0:
            raise ValueError(
                f"warmup_epochs must be non-negative, got {warmup_epochs}"
            )
        check_in_unit_interval("clean_weight", clean_weight)
        self.warmup_epochs = int(warmup_epochs)
        self.epsilon = float(epsilon)
        self.step_size = (
            float(step_size) if step_size is not None else self.epsilon
        )
        check_positive("step_size", self.step_size)
        self.reset_interval = int(reset_interval)
        self.clean_weight = clean_weight
        # dataset index -> carried perturbation (delta, not the absolute
        # adversarial example), held in budget-bounded blocks; the clean
        # example is re-supplied by the data pipeline every epoch, so the
        # trainer never holds a second copy of the dataset.
        self._delta = DeltaStore(
            block_size=delta_block_size, budget_bytes=delta_budget_bytes
        )
        # The paper's method IS the attack engine run with carried state:
        # the per-example cache plays the initializer role (the iterate is
        # resumed, not restarted), and each epoch applies exactly one
        # engine step — a BIM step composition (backprop gradient, sign
        # rule, fused l_inf+box projection) with the clean example as the
        # projection anchor.
        self._stepper = AttackLoop(
            self.model,
            GradientStep(
                BackpropGradient(self.model, self.loss_fn),
                SignStep(self.step_size),
                LinfBoxProjection(self.epsilon),
            ),
            num_steps=1,
        )

    # ------------------------------------------------------------------
    @property
    def _cache(self) -> _DeltaView:
        """Mapping view of the store (dataset index -> carried delta)."""
        return _DeltaView(self._delta)

    @property
    def delta_store(self) -> DeltaStore:
        """The carried-perturbation store (diagnostics, benchmarks)."""
        return self._delta

    def reset_cache(self) -> None:
        """Forget all carried perturbations (epoch-wise restart)."""
        self._delta.clear()

    @property
    def cache_size(self) -> int:
        """Number of examples with a carried perturbation."""
        return self._delta.count

    @property
    def cache_bytes(self) -> int:
        """Resident bytes of the carried-perturbation store."""
        return self._delta.nbytes

    @property
    def in_warmup(self) -> bool:
        """True while the trainer is still in its clean warmup phase."""
        return self.epoch < self.warmup_epochs

    def on_epoch_start(self, epoch: int) -> None:
        """Reset the cache every ``reset_interval`` adversarial epochs."""
        adv_epoch = epoch - self.warmup_epochs
        if (
            self.reset_interval
            and adv_epoch > 0
            and adv_epoch % self.reset_interval == 0
        ):
            dropped = self.cache_size
            self.reset_cache()
            tel.counter("epochwise.cache_resets")
            tel.event(
                "epochwise.cache_reset", epoch=epoch, dropped=dropped
            )

    # ------------------------------------------------------------------
    def adversarial_batch(self, batch: Batch) -> np.ndarray:
        """One perturbation step from the carried iterate (Figure 3b).

        The carried iterate is reconstructed as ``clip(clean + delta)``
        from the delta store (clean where nothing is carried), stepped
        once, and the new delta is carried forward.
        """
        with tel.span("attack"):
            x_clean = ensure_float_array(batch.x)
            x_start = self._delta.lookup(batch.indices, x_clean)
            x_adv = self._stepper.step(x_start, x_clean, batch.y)
            self._delta.store(batch.indices, x_adv, x_clean)
            if tel.enabled():
                tel.gauge("epochwise.cache_bytes", self._delta.nbytes)
                tel.gauge(
                    "epochwise.cache_peak_bytes", self._delta.peak_bytes
                )
                tel.gauge(
                    "epochwise.cache_evictions", self._delta.evictions
                )
            return x_adv

    def compute_batch_loss(self, batch: Batch) -> Tensor:
        """Mixture of clean loss and cached-adversarial loss."""
        if self.in_warmup:
            return self.loss_fn(self.model(Tensor(batch.x)), batch.y)
        x_adv = self.adversarial_batch(batch)
        clean_loss = self.loss_fn(self.model(Tensor(batch.x)), batch.y)
        adv_loss = self.loss_fn(self.model(Tensor(x_adv)), batch.y)
        alpha = self.clean_weight
        return clean_loss * alpha + adv_loss * (1.0 - alpha)

    def _compiled_batch(self, batch: Batch):
        """Compiled mixture step; the single cached-iterate perturbation
        step keeps its own path (its gradient estimator compiles too)."""
        if (
            type(self).compute_batch_loss
            is not EpochwiseAdvTrainer.compute_batch_loss
        ):
            return None
        from ._compiled import clean_batch_loss, mixture_batch_loss

        if self.in_warmup:
            return clean_batch_loss(self, batch)
        x_adv = self.adversarial_batch(batch)
        return mixture_batch_loss(self, batch, x_adv)
