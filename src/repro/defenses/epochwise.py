"""The paper's proposed defense: epoch-wise single-step adversarial training.

This is the contribution of Section IV (Figure 3b).  Instead of running the
BIM inner loop to completion inside every epoch (Iter-Adv, Figure 3a), the
trainer:

1. keeps a **per-example cache** of adversarial examples carried across
   epochs — the BIM iteration is amortised over the training epochs
   (empirical property 2: intermediate iterates already reveal most blind
   spots);
2. applies exactly **one** perturbation step per example per epoch, using a
   **relatively large per-step perturbation** (empirical property 1: tiny
   steps stop paying off) so the cached examples quickly reach the full
   budget;
3. **resets** the cache to the clean examples every ``reset_interval``
   epochs, so the accumulated perturbations track the long-term drift of
   the classifier's parameters.

Paper hyper-parameters: per-step size ``eps / 10``, reset every 20 epochs.
Per-epoch cost is one extra forward/backward — the same as FGSM-Adv and far
below BIM(k)-Adv's ``k`` — which yields Table I's timing column.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .. import telemetry as tel
from ..attacks import (
    AttackLoop,
    BackpropGradient,
    GradientStep,
    LinfBoxProjection,
    SignStep,
)
from ..autograd import Tensor
from ..data.loader import Batch
from ..nn import Module, cross_entropy
from ..optim import Optimizer
from ..runtime import compute_dtype, ensure_float_array
from ..utils.validation import check_in_unit_interval, check_positive
from .trainer import Trainer

__all__ = ["EpochwiseAdvTrainer"]


class EpochwiseAdvTrainer(Trainer):
    """Proposed Single-Adv method (Liu et al., 2019).

    Parameters
    ----------
    model, optimizer, loss_fn, scheduler:
        As in :class:`~repro.defenses.trainer.Trainer`.
    epsilon:
        Total l_inf budget; cached perturbations are always projected into
        the epsilon-ball around the clean example and into the image box.
    step_size:
        Per-epoch perturbation step — the paper's "relatively large per
        step perturbation".  The paper used ``epsilon / 10`` on a 60k-image
        dataset trained for many epochs; on this repo's smaller, faster-
        drifting substrate the calibrated equivalent is ``epsilon`` (the
        default).  The ablation benchmark sweeps this factor and shows the
        paper's property 1 trend: too-small steps cripple the defense.
    reset_interval:
        Cache reset period in epochs (paper: 20).  ``0`` disables resets.
    clean_weight:
        Mixture weight of the clean loss (0.5 as in the other defenses).
    """

    name = "epochwise_adv"

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        epsilon: float,
        step_size: Optional[float] = None,
        reset_interval: int = 20,
        clean_weight: float = 0.5,
        warmup_epochs: int = 0,
        loss_fn: Callable = cross_entropy,
        scheduler=None,
    ) -> None:
        super().__init__(model, optimizer, loss_fn=loss_fn, scheduler=scheduler)
        check_positive("epsilon", epsilon)
        if reset_interval < 0:
            raise ValueError(
                f"reset_interval must be non-negative, got {reset_interval}"
            )
        if warmup_epochs < 0:
            raise ValueError(
                f"warmup_epochs must be non-negative, got {warmup_epochs}"
            )
        check_in_unit_interval("clean_weight", clean_weight)
        self.warmup_epochs = int(warmup_epochs)
        self.epsilon = float(epsilon)
        self.step_size = (
            float(step_size) if step_size is not None else self.epsilon
        )
        check_positive("step_size", self.step_size)
        self.reset_interval = int(reset_interval)
        self.clean_weight = clean_weight
        # dataset index -> current adversarial example (carried across epochs)
        self._cache: Dict[int, np.ndarray] = {}
        # The paper's method IS the attack engine run with carried state:
        # the per-example cache plays the initializer role (the iterate is
        # resumed, not restarted), and each epoch applies exactly one
        # engine step — a BIM step composition (backprop gradient, sign
        # rule, fused l_inf+box projection) with the clean example as the
        # projection anchor.
        self._stepper = AttackLoop(
            self.model,
            GradientStep(
                BackpropGradient(self.model, self.loss_fn),
                SignStep(self.step_size),
                LinfBoxProjection(self.epsilon),
            ),
            num_steps=1,
        )

    # ------------------------------------------------------------------
    def reset_cache(self) -> None:
        """Forget all cached adversarial examples (epoch-wise restart)."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of examples with a cached adversarial iterate."""
        return len(self._cache)

    @property
    def in_warmup(self) -> bool:
        """True while the trainer is still in its clean warmup phase."""
        return self.epoch < self.warmup_epochs

    def on_epoch_start(self, epoch: int) -> None:
        """Reset the cache every ``reset_interval`` adversarial epochs."""
        adv_epoch = epoch - self.warmup_epochs
        if (
            self.reset_interval
            and adv_epoch > 0
            and adv_epoch % self.reset_interval == 0
        ):
            dropped = self.cache_size
            self.reset_cache()
            tel.counter("epochwise.cache_resets")
            tel.event(
                "epochwise.cache_reset", epoch=epoch, dropped=dropped
            )

    # ------------------------------------------------------------------
    def _cached_batch(self, batch: Batch) -> np.ndarray:
        """Assemble the carried-over adversarial batch (clean on first use)."""
        rows = []
        for row, index in enumerate(batch.indices):
            cached = self._cache.get(int(index))
            rows.append(cached if cached is not None else batch.x[row])
        return ensure_float_array(np.stack(rows))

    def _store_batch(self, batch: Batch, x_adv: np.ndarray) -> None:
        # The cross-epoch cache lives in the policy compute dtype; storing
        # anything wider would double its memory footprint for no benefit.
        x_adv = np.asarray(x_adv, dtype=compute_dtype())
        for row, index in enumerate(batch.indices):
            self._cache[int(index)] = x_adv[row]

    def adversarial_batch(self, batch: Batch) -> np.ndarray:
        """One perturbation step from the cached iterate (Figure 3b)."""
        with tel.span("attack"):
            x_start = self._cached_batch(batch)
            x_clean = ensure_float_array(batch.x)
            x_adv = self._stepper.step(x_start, x_clean, batch.y)
            self._store_batch(batch, x_adv)
            return x_adv

    def compute_batch_loss(self, batch: Batch) -> Tensor:
        """Mixture of clean loss and cached-adversarial loss."""
        if self.in_warmup:
            return self.loss_fn(self.model(Tensor(batch.x)), batch.y)
        x_adv = self.adversarial_batch(batch)
        clean_loss = self.loss_fn(self.model(Tensor(batch.x)), batch.y)
        adv_loss = self.loss_fn(self.model(Tensor(x_adv)), batch.y)
        alpha = self.clean_weight
        return clean_loss * alpha + adv_loss * (1.0 - alpha)
