"""Free adversarial training (Shafahi et al., 2019) — extension.

The paper's future work asks for a "deeper understanding of Single-Adv and
Iter-Adv"; free adversarial training is the closest published relative of
the proposed epoch-wise method, so it is included as an extension baseline.

Idea: replay each minibatch ``m`` times.  Every replay performs ONE
backward pass whose gradients are used **twice** — the parameter gradients
update the model, and the input gradient updates a persistent perturbation
``delta``.  Attack generation is thus "free": no extra passes beyond normal
training.  Like the paper's method, the perturbation is carried (here
across replays and batch visits) instead of being regenerated from scratch.

Cost per epoch equals ``m`` vanilla epochs; robustness approaches Iter-Adv
with ``m`` comparable to the BIM step count, at roughly a ``2x`` saving
over BIM(m)-Adv (which pays m attack passes *plus* the training pass).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .. import telemetry as tel
from ..attacks import SignStep, clip_to_box
from ..autograd import Tensor
from ..data.loader import Batch
from ..nn import Module, cross_entropy
from ..optim import Optimizer
from ..runtime import compute_dtype, ensure_float_array
from ..utils.validation import check_positive
from .trainer import Trainer

__all__ = ["FreeAdvTrainer"]


class FreeAdvTrainer(Trainer):
    """Free-m adversarial training.

    Parameters
    ----------
    epsilon:
        l_inf budget for the persistent perturbation.
    replays:
        The "m" parameter: replays per minibatch.  Each replay costs one
        forward/backward, so an epoch costs ``m`` vanilla epochs.
    step_size:
        Perturbation update step; defaults to ``epsilon`` (the original
        paper uses the full budget per update).
    warmup_epochs:
        Clean epochs (no replays, no perturbation) before free training.
    """

    name = "free_adv"

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        epsilon: float,
        replays: int = 4,
        step_size: float = None,
        warmup_epochs: int = 0,
        loss_fn: Callable = cross_entropy,
        scheduler=None,
    ) -> None:
        super().__init__(model, optimizer, loss_fn=loss_fn, scheduler=scheduler)
        check_positive("epsilon", epsilon)
        if replays <= 0:
            raise ValueError(f"replays must be positive, got {replays}")
        if warmup_epochs < 0:
            raise ValueError(
                f"warmup_epochs must be non-negative, got {warmup_epochs}"
            )
        self.epsilon = float(epsilon)
        self.replays = int(replays)
        self.step_size = (
            float(step_size) if step_size is not None else self.epsilon
        )
        check_positive("step_size", self.step_size)
        self.warmup_epochs = int(warmup_epochs)
        # The ascent direction is the engine's sign rule; the loop driver
        # itself cannot apply here because free training shares ONE
        # backward pass between the parameter update and the perturbation
        # update — the engine would pay a second, redundant backward.
        self._ascent = SignStep(self.step_size)
        # dataset index -> persistent perturbation (delta), not the example.
        self._delta: Dict[int, np.ndarray] = {}

    @property
    def in_warmup(self) -> bool:
        """True while the trainer is still in its clean warmup phase."""
        return self.epoch < self.warmup_epochs

    # ------------------------------------------------------------------
    def _batch_delta(self, batch: Batch) -> np.ndarray:
        rows = []
        for row, index in enumerate(batch.indices):
            delta = self._delta.get(int(index))
            rows.append(
                delta if delta is not None else np.zeros_like(batch.x[row])
            )
        return np.stack(rows)

    def _store_delta(self, batch: Batch, delta: np.ndarray) -> None:
        # Persistent perturbations are cached in the policy compute dtype.
        delta = np.asarray(delta, dtype=compute_dtype())
        for row, index in enumerate(batch.indices):
            self._delta[int(index)] = delta[row]

    @property
    def delta_cache_size(self) -> int:
        """Number of examples with a persistent perturbation."""
        return len(self._delta)

    # ------------------------------------------------------------------
    def train_epoch(self, loader) -> float:
        """Free training needs custom inner-loop control (m replays with a
        shared backward pass), so it overrides the epoch loop wholesale."""
        if self.in_warmup:
            return super().train_epoch(loader)
        self.model.train()
        self.on_epoch_start(self.epoch)
        losses = []
        iterator = iter(loader)
        while True:
            with tel.span("data"):
                batch = next(iterator, None)
            if batch is None:
                break
            delta = self._batch_delta(batch)
            x_clean = ensure_float_array(batch.x)
            for _replay in range(self.replays):
                x_adv = clip_to_box(x_clean + delta)
                x_tensor = Tensor(x_adv, requires_grad=True)
                self.optimizer.zero_grad()
                with tel.span("forward"):
                    loss = self.loss_fn(self.model(x_tensor), batch.y)
                with tel.span("backward"):
                    loss.backward()
                # One backward, two uses: model update ...
                with tel.span("optimizer"):
                    self.optimizer.step()
                # ... and perturbation ascent (the engine's sign rule,
                # clamped to the budget in delta space).
                with tel.span("attack"):
                    delta = delta + self._ascent(x_tensor.grad, None)
                    np.clip(delta, -self.epsilon, self.epsilon, out=delta)
                losses.append(loss.item())
            self._store_delta(batch, delta)
        self.on_epoch_end(self.epoch)
        self.epoch += 1
        if self.scheduler is not None:
            self.scheduler.step()
        return float(np.mean(losses)) if losses else 0.0
