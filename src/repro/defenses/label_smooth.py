"""Label-smoothing defense baseline.

Training with smoothed labels (Szegedy et al., 2016; studied as a weak
defense by Warde-Farley & Goodfellow) slightly flattens the loss surface
and raises single-step robustness without any attack in the loop — a
useful *negative* baseline: like the paper's Vanilla/FGSM-Adv rows it must
fall to iterative attacks, demonstrating that resisting BIM requires
actual adversarial training.
"""

from __future__ import annotations

from ..autograd import Tensor
from ..data.loader import Batch
from ..nn import Module, cross_entropy
from ..optim import Optimizer
from ..utils.validation import check_in_unit_interval
from .trainer import Trainer

__all__ = ["LabelSmoothingTrainer"]


class LabelSmoothingTrainer(Trainer):
    """Vanilla training with a smoothed cross-entropy target.

    Parameters
    ----------
    smoothing:
        Mass moved from the true class to the uniform distribution.
    """

    name = "label_smooth"

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        smoothing: float = 0.1,
        scheduler=None,
    ) -> None:
        super().__init__(model, optimizer, scheduler=scheduler)
        check_in_unit_interval("smoothing", smoothing)
        self.smoothing = float(smoothing)

    def compute_batch_loss(self, batch: Batch) -> Tensor:
        """Smoothed cross-entropy on the clean batch."""
        logits = self.model(Tensor(batch.x))
        return cross_entropy(
            logits, batch.y, label_smoothing=self.smoothing
        )
