"""PGD adversarial training (Madry et al., 2017) — extension baseline.

Identical to :class:`~repro.defenses.adversarial.IterAdvTrainer` except the
inner attack uses a uniform random start inside the epsilon-ball, which
prevents the training attack from repeatedly probing the same boundary
point.  Included for the paper's future-work comparison of Iter-Adv
variants.
"""

from __future__ import annotations

from typing import Optional

from ..attacks import Attack, build_attack
from ..utils.rng import RngLike
from .adversarial import IterAdvTrainer

__all__ = ["PgdAdvTrainer"]


class PgdAdvTrainer(IterAdvTrainer):
    """Iter-Adv with PGD (random-start BIM) as the training attack."""

    name = "pgd_adv"

    def __init__(
        self,
        model,
        optimizer,
        epsilon: float,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        rng: RngLike = None,
        **kwargs,
    ) -> None:
        super().__init__(
            model,
            optimizer,
            epsilon,
            num_steps=num_steps,
            step_size=step_size,
            **kwargs,
        )
        self._rng = rng

    def make_attack(self) -> Attack:
        """Build the PGD training attack bound to the current model."""
        if self.attack_spec is not None:
            return super().make_attack()
        return build_attack(
            "pgd",
            self.model,
            epsilon=self.epsilon,
            num_steps=self.num_steps,
            step_size=self.step_size,
            rng=self._rng,
            loss_fn=self.loss_fn,
        )
