"""Defense registry: build any Table I method by its paper name.

Names follow the paper's rows:

* ``"vanilla"``      — undefended training
* ``"fgsm_adv"``     — Single-Adv, Goodfellow et al.
* ``"atda"``         — Single-Adv SOTA baseline, Song et al.
* ``"proposed"``     — the paper's epoch-wise Single-Adv method
* ``"bim10_adv"``    — Iter-Adv with BIM(10)
* ``"bim30_adv"``    — Iter-Adv with BIM(30)
"""

from __future__ import annotations

from typing import Optional

from ..nn import Module
from ..optim import Adam, Optimizer
from .adversarial import FgsmAdvTrainer, IterAdvTrainer
from .atda import AtdaTrainer
from .epochwise import EpochwiseAdvTrainer
from .free import FreeAdvTrainer
from .label_smooth import LabelSmoothingTrainer
from .pgd_adv import PgdAdvTrainer
from .trades import TradesTrainer
from .trainer import Trainer

__all__ = ["DEFENSE_NAMES", "EXTENSION_NAMES", "build_trainer"]

# The Table I rows.
DEFENSE_NAMES = (
    "vanilla",
    "fgsm_adv",
    "atda",
    "proposed",
    "bim10_adv",
    "bim30_adv",
)

# Extension baselines beyond the paper (future-work section).
EXTENSION_NAMES = ("pgd_adv", "free_adv", "trades", "label_smooth")


def build_trainer(
    name: str,
    model: Module,
    epsilon: float,
    optimizer: Optional[Optimizer] = None,
    lr: float = 1e-3,
    **kwargs,
) -> Trainer:
    """Construct the trainer for a Table I method.

    Parameters
    ----------
    name:
        One of :data:`DEFENSE_NAMES`.
    model:
        The classifier to train.
    epsilon:
        Dataset perturbation budget (0.3 digits / 0.2 fashion in the paper).
    optimizer:
        Optional pre-built optimizer; defaults to Adam(lr).
    kwargs:
        Forwarded to the trainer constructor (e.g. ``reset_interval``).
    """
    if optimizer is None:
        optimizer = Adam(model.parameters(), lr=lr)
    if name == "vanilla":
        return Trainer(model, optimizer, **kwargs)
    if name == "fgsm_adv":
        return FgsmAdvTrainer(model, optimizer, epsilon=epsilon, **kwargs)
    if name == "atda":
        return AtdaTrainer(model, optimizer, epsilon=epsilon, **kwargs)
    if name == "proposed":
        return EpochwiseAdvTrainer(model, optimizer, epsilon=epsilon, **kwargs)
    if name == "bim10_adv":
        return IterAdvTrainer(
            model, optimizer, epsilon=epsilon, num_steps=10, **kwargs
        )
    if name == "bim30_adv":
        return IterAdvTrainer(
            model, optimizer, epsilon=epsilon, num_steps=30, **kwargs
        )
    if name == "pgd_adv":
        return PgdAdvTrainer(model, optimizer, epsilon=epsilon, **kwargs)
    if name == "free_adv":
        return FreeAdvTrainer(model, optimizer, epsilon=epsilon, **kwargs)
    if name == "trades":
        return TradesTrainer(model, optimizer, epsilon=epsilon, **kwargs)
    if name == "label_smooth":
        # Label smoothing takes no attack budget.
        return LabelSmoothingTrainer(model, optimizer, **kwargs)
    raise KeyError(
        f"unknown defense {name!r}; choose from "
        f"{DEFENSE_NAMES + EXTENSION_NAMES}"
    )
