"""Defense registry: build any Table I method by its paper name.

Names follow the paper's rows:

* ``"vanilla"``      — undefended training
* ``"fgsm_adv"``     — Single-Adv, Goodfellow et al.
* ``"atda"``         — Single-Adv SOTA baseline, Song et al.
* ``"proposed"``     — the paper's epoch-wise Single-Adv method
* ``"bim10_adv"``    — Iter-Adv with BIM(10)
* ``"bim30_adv"``    — Iter-Adv with BIM(30)

The registry is table-driven: each defense registers one builder, and the
Iter-Adv families are a single *pattern* rather than one row per step
count — any ``bim{N}_adv`` or ``pgd{N}_adv`` name resolves to the
corresponding trainer with ``num_steps=N``, so ``bim7_adv`` works exactly
like the paper's ``bim10_adv``/``bim30_adv`` columns.  Attack *names*
inside the trainers are no longer spelled here at all; the trainers build
their training attacks through the canonical attack registry
(:func:`repro.attacks.build_attack`).

``DEFENSE_NAMES`` and ``EXTENSION_NAMES`` are kept as deprecated module
attributes (module ``__getattr__``); new code should call
:func:`defense_names` or use :data:`PAPER_DEFENSES` /
:data:`EXTENSION_DEFENSES`.
"""

from __future__ import annotations

import re
import warnings
from typing import Callable, Dict, Optional, Tuple

from ..nn import Module
from ..optim import Adam, Optimizer
from .adversarial import FgsmAdvTrainer, IterAdvTrainer
from .atda import AtdaTrainer
from .epochwise import EpochwiseAdvTrainer
from .free import FreeAdvTrainer
from .label_smooth import LabelSmoothingTrainer
from .pgd_adv import PgdAdvTrainer
from .trades import TradesTrainer
from .trainer import Trainer

__all__ = [
    "PAPER_DEFENSES",
    "EXTENSION_DEFENSES",
    "defense_names",
    "register_defense",
    "build_trainer",
]

# The Table I rows.
PAPER_DEFENSES = (
    "vanilla",
    "fgsm_adv",
    "atda",
    "proposed",
    "bim10_adv",
    "bim30_adv",
)

# Extension baselines beyond the paper (future-work section).
EXTENSION_DEFENSES = ("pgd_adv", "free_adv", "trades", "label_smooth")

# Deprecated aliases for the two tuples above, served via __getattr__.
_DEPRECATED_CONSTANTS = {
    "DEFENSE_NAMES": PAPER_DEFENSES,
    "EXTENSION_NAMES": EXTENSION_DEFENSES,
}


def __getattr__(name: str):
    if name in _DEPRECATED_CONSTANTS:
        warnings.warn(
            f"repro.defenses.{name} is deprecated; use "
            "defense_names() / PAPER_DEFENSES / EXTENSION_DEFENSES",
            DeprecationWarning,
            stacklevel=2,
        )
        return _DEPRECATED_CONSTANTS[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# name -> builder(model, optimizer, epsilon, kwargs) -> Trainer
_BUILDERS: Dict[str, Callable[..., Trainer]] = {}

# Iter-Adv families: ``bim{N}_adv`` / ``pgd{N}_adv`` with any step count.
_ITER_FAMILIES: Dict[str, type] = {"bim": IterAdvTrainer, "pgd": PgdAdvTrainer}
_ITER_PATTERN = re.compile(r"(?P<family>[a-z]+)(?P<steps>\d+)_adv")


def register_defense(
    name: str, builder: Callable[..., Trainer]
) -> Callable[..., Trainer]:
    """Register ``builder(model, optimizer, epsilon, **kwargs)`` under a name."""
    _BUILDERS[name.strip().lower()] = builder
    return builder


def defense_names(include_extensions: bool = True) -> Tuple[str, ...]:
    """Canonical defense names (Table I rows, then extensions)."""
    if include_extensions:
        return PAPER_DEFENSES + EXTENSION_DEFENSES
    return PAPER_DEFENSES


register_defense(
    "vanilla", lambda model, optimizer, epsilon, **kw: Trainer(
        model, optimizer, **kw
    )
)
register_defense(
    "fgsm_adv", lambda model, optimizer, epsilon, **kw: FgsmAdvTrainer(
        model, optimizer, epsilon=epsilon, **kw
    )
)
register_defense(
    "atda", lambda model, optimizer, epsilon, **kw: AtdaTrainer(
        model, optimizer, epsilon=epsilon, **kw
    )
)
register_defense(
    "proposed", lambda model, optimizer, epsilon, **kw: EpochwiseAdvTrainer(
        model, optimizer, epsilon=epsilon, **kw
    )
)
register_defense(
    "pgd_adv", lambda model, optimizer, epsilon, **kw: PgdAdvTrainer(
        model, optimizer, epsilon=epsilon, **kw
    )
)
register_defense(
    "free_adv", lambda model, optimizer, epsilon, **kw: FreeAdvTrainer(
        model, optimizer, epsilon=epsilon, **kw
    )
)
register_defense(
    "trades", lambda model, optimizer, epsilon, **kw: TradesTrainer(
        model, optimizer, epsilon=epsilon, **kw
    )
)
# Label smoothing takes no attack budget.
register_defense(
    "label_smooth", lambda model, optimizer, epsilon, **kw: (
        LabelSmoothingTrainer(model, optimizer, **kw)
    )
)


def build_trainer(
    name: str,
    model: Module,
    epsilon: float,
    optimizer: Optional[Optimizer] = None,
    lr: float = 1e-3,
    **kwargs,
) -> Trainer:
    """Construct the trainer for a Table I method.

    Parameters
    ----------
    name:
        One of :func:`defense_names`, or any Iter-Adv pattern name
        ``bim{N}_adv`` / ``pgd{N}_adv``.
    model:
        The classifier to train.
    epsilon:
        Dataset perturbation budget (0.3 digits / 0.2 fashion in the paper).
    optimizer:
        Optional pre-built optimizer; defaults to Adam(lr).
    kwargs:
        Forwarded to the trainer constructor (e.g. ``reset_interval``).
    """
    if optimizer is None:
        optimizer = Adam(model.parameters(), lr=lr)
    key = name.strip().lower()
    builder = _BUILDERS.get(key)
    if builder is not None:
        return builder(model, optimizer, epsilon, **kwargs)
    match = _ITER_PATTERN.fullmatch(key)
    if match and match.group("family") in _ITER_FAMILIES:
        cls = _ITER_FAMILIES[match.group("family")]
        return cls(
            model,
            optimizer,
            epsilon=epsilon,
            num_steps=int(match.group("steps")),
            **kwargs,
        )
    raise KeyError(
        f"unknown defense {name!r}; choose from {defense_names()} "
        f"(bim{{N}}_adv / pgd{{N}}_adv accept any step count)"
    )
