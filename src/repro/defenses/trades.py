"""TRADES (Zhang et al., 2019) — robustness/accuracy trade-off baseline.

A modern Iter-Adv relative included for the paper's future-work comparison.
TRADES optimises::

    CE(f(x), y) + beta * KL( f(x_adv) || f(x) )

where ``x_adv`` maximises the KL term inside the epsilon-ball (found here
with BIM steps on the KL objective).  Unlike the mixture losses used by
the Table I methods, the robust term is a *consistency* regulariser: it
pushes the classifier to be stable inside the ball rather than correct on
specific adversarial points.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import telemetry as tel
from ..attacks import (
    AttackLoop,
    BackpropGradient,
    GradientStep,
    LinfBoxProjection,
    SignStep,
)
from ..autograd import Tensor, log_softmax, softmax
from ..data.loader import Batch
from ..nn import Module, cross_entropy
from ..optim import Optimizer
from ..runtime import ensure_float_array
from ..utils.validation import check_positive
from .trainer import Trainer

__all__ = ["kl_divergence", "TradesTrainer"]


def kl_divergence(p_logits: Tensor, q_logits: Tensor) -> Tensor:
    """Mean KL( softmax(p) || softmax(q) ) over a batch of logit rows."""
    p_log = log_softmax(p_logits, axis=-1)
    q_log = log_softmax(q_logits, axis=-1)
    p = softmax(p_logits, axis=-1)
    per_example = (p * (p_log - q_log)).sum(axis=-1)
    return per_example.mean()


class TradesTrainer(Trainer):
    """Adversarial training with the TRADES objective.

    Parameters
    ----------
    epsilon:
        l_inf ball radius.
    beta:
        Weight of the KL consistency term (paper: 1-6).
    num_steps:
        Inner maximisation steps (cost scales like Iter-Adv).
    step_size:
        Inner step size; defaults to ``epsilon / num_steps * 2`` so the
        iterate can traverse the ball.
    warmup_epochs:
        Clean epochs before the TRADES objective kicks in.
    """

    name = "trades"

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        epsilon: float,
        beta: float = 3.0,
        num_steps: int = 10,
        step_size: Optional[float] = None,
        warmup_epochs: int = 0,
        loss_fn: Callable = cross_entropy,
        scheduler=None,
    ) -> None:
        super().__init__(model, optimizer, loss_fn=loss_fn, scheduler=scheduler)
        check_positive("epsilon", epsilon)
        check_positive("beta", beta)
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if warmup_epochs < 0:
            raise ValueError(
                f"warmup_epochs must be non-negative, got {warmup_epochs}"
            )
        self.epsilon = float(epsilon)
        self.beta = float(beta)
        self.num_steps = int(num_steps)
        self.step_size = (
            float(step_size)
            if step_size is not None
            else 2.0 * self.epsilon / self.num_steps
        )
        check_positive("step_size", self.step_size)
        self.warmup_epochs = int(warmup_epochs)

    @property
    def in_warmup(self) -> bool:
        """True while the trainer is still in its clean warmup phase."""
        return self.epoch < self.warmup_epochs

    # ------------------------------------------------------------------
    def _maximise_kl(self, x: np.ndarray, clean_logits: np.ndarray):
        """Inner loop: find x_adv maximising KL(f(x_adv) || f(x)).

        Runs on the attack engine: a BIM-shaped composition whose objective
        is KL(clean || adv) — the direction used by the reference TRADES
        implementation (torch ``kl_div(log_softmax(adv), softmax(clean))``)
        — instead of cross-entropy, so labels are ignored entirely.
        """
        clean = Tensor(clean_logits)
        loop = AttackLoop(
            self.model,
            GradientStep(
                BackpropGradient(
                    self.model,
                    lambda adv_logits, _y: kl_divergence(clean, adv_logits),
                ),
                SignStep(self.step_size),
                LinfBoxProjection(self.epsilon),
            ),
            num_steps=self.num_steps,
        )
        # Labels are unused by the KL objective; pass placeholder zeros.
        y_unused = np.zeros(len(x), dtype=np.int64)
        return loop.run(x, y_unused, start=ensure_float_array(x, copy=True))

    def compute_batch_loss(self, batch: Batch) -> Tensor:
        """Natural CE plus beta-weighted KL consistency term."""
        clean_logits = self.model(Tensor(batch.x))
        natural = self.loss_fn(clean_logits, batch.y)
        if self.in_warmup:
            return natural
        with tel.span("attack"):
            x_adv = self._maximise_kl(batch.x, clean_logits.data)
        adv_logits = self.model(Tensor(x_adv))
        robust = kl_divergence(clean_logits, adv_logits)
        return natural + robust * self.beta
