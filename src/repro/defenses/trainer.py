"""Vanilla training loop — the base every defense builds on.

The trainer owns the epoch loop, per-epoch wall-clock timing (the paper's
efficiency metric), optional evaluation hooks, and a ``compute_batch_loss``
extension point which the adversarial-training subclasses override.

Control-flow note (Figure 3a reproduction): for Iter-Adv subclasses the
expensive inner interaction between the example generator and the classifier
happens inside ``compute_batch_loss`` every epoch; the proposed method
(:class:`~repro.defenses.epochwise.EpochwiseAdvTrainer`) replaces that inner
loop with a single step plus a cross-epoch cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import telemetry as tel
from ..autograd import Tensor
from ..data.loader import Batch, DataLoader
from ..nn import Module, cross_entropy
from ..optim import LRScheduler, Optimizer
from ..runtime.compiled import compiled_enabled
from ..runtime.workspace import get_workspace
from ..telemetry import ConsoleEvents
from ..utils.timing import EpochTimer

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Record of one training run.

    Attributes
    ----------
    losses:
        Mean training loss per epoch.
    epoch_seconds:
        Wall-clock duration of each epoch (training only, evaluation
        excluded) — Table I's "training time per epoch".
    eval_accuracy:
        Clean test accuracy measured at requested epochs.
    """

    losses: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    eval_accuracy: Dict[int, float] = field(default_factory=dict)

    @property
    def time_per_epoch(self) -> float:
        """Mean seconds per epoch across the run."""
        if not self.epoch_seconds:
            return 0.0
        return float(np.mean(self.epoch_seconds))

    @property
    def total_time(self) -> float:
        """Total training seconds across recorded epochs."""
        return float(np.sum(self.epoch_seconds))


class Trainer:
    """Vanilla (undefended) training on clean examples.

    Parameters
    ----------
    model:
        Classifier to train.
    optimizer:
        Optimizer bound to the model's parameters.
    loss_fn:
        Classification loss; defaults to softmax cross-entropy.
    scheduler:
        Optional LR scheduler stepped after every epoch.
    """

    name = "vanilla"

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable = cross_entropy,
        scheduler: Optional[LRScheduler] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.scheduler = scheduler
        self.epoch = 0
        self.timer = EpochTimer()

    # ------------------------------------------------------------------
    # extension points
    # ------------------------------------------------------------------
    def compute_batch_loss(self, batch: Batch) -> Tensor:
        """Loss for one batch.  Subclasses add adversarial terms here."""
        logits = self.model(Tensor(batch.x))
        return self.loss_fn(logits, batch.y)

    def _compiled_batch(self, batch: Batch) -> Optional[float]:
        """Run one batch through the compiled tape; ``None`` keeps eager.

        Only the loss expression this class defines is compiled: a
        subclass that overrides :meth:`compute_batch_loss` with its own
        objective falls back to eager automatically.
        """
        if type(self).compute_batch_loss is not Trainer.compute_batch_loss:
            return None
        from ._compiled import clean_batch_loss

        return clean_batch_loss(self, batch)

    def on_epoch_start(self, epoch: int) -> None:
        """Hook invoked before each epoch's first batch."""

    def on_epoch_end(self, epoch: int) -> None:
        """Hook invoked after each epoch's last batch."""

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def train_epoch(self, loader: DataLoader) -> float:
        """One pass over the loader; returns the mean batch loss.

        Each batch is traced through telemetry phase spans — ``data``
        (loader fetch), ``forward`` (loss computation; adversarial
        generation nests inside it as ``attack``), ``backward`` and
        ``optimizer`` — which aggregate into the surrounding ``epoch``
        span opened by :meth:`fit`.
        """
        self.model.train()
        self.on_epoch_start(self.epoch)
        losses = []
        iterator = iter(loader)
        while True:
            with tel.span("data"):
                batch = next(iterator, None)
            if batch is None:
                break
            self.optimizer.zero_grad()
            # The compiled tape fuses forward+backward into one traced
            # replay; when it declines (toggle off, unsupported objective)
            # the eager spans below run unchanged.
            loss_value = (
                self._compiled_batch(batch) if compiled_enabled() else None
            )
            if loss_value is None:
                with tel.span("forward"):
                    loss = self.compute_batch_loss(batch)
                with tel.span("backward"):
                    loss.backward()
                loss_value = loss.item()
            with tel.span("optimizer"):
                self.optimizer.step()
            losses.append(loss_value)
        self.on_epoch_end(self.epoch)
        self.epoch += 1
        if self.scheduler is not None:
            self.scheduler.step()
        return float(np.mean(losses)) if losses else 0.0

    def fit(
        self,
        loader: DataLoader,
        epochs: int,
        eval_fn: Optional[Callable[[Module], float]] = None,
        eval_every: int = 0,
        callbacks: Optional[list] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes.

        Parameters
        ----------
        loader:
            Training batches.
        epochs:
            Number of epochs.
        eval_fn:
            Optional callback ``model -> accuracy``; invoked every
            ``eval_every`` epochs (and after the last epoch).
        eval_every:
            Evaluation period; ``0`` disables periodic evaluation.
        callbacks:
            Objects with ``on_epoch_end(epoch, model, metric) -> bool``
            (e.g. :class:`~repro.defenses.callbacks.Checkpointer`,
            :class:`~repro.defenses.callbacks.EarlyStopping`); returning
            ``True`` stops training early.
        verbose:
            Print a per-epoch progress line.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        callbacks = list(callbacks or [])
        history = TrainingHistory()
        # Verbose fits surface rare telemetry events (checkpoints saved,
        # early stopping) as console lines alongside the progress log.
        events_sink = None
        if verbose:
            events_sink = ConsoleEvents((
                "checkpoint.saved",
                "early_stop.triggered",
                "epochwise.cache_reset",
            ))
            tel.add_sink(events_sink)
        try:
            self._fit_loop(
                loader, epochs, history, eval_fn, eval_every, callbacks,
                verbose,
            )
        finally:
            if events_sink is not None:
                tel.remove_sink(events_sink)
        self.model.eval()
        return history

    def _fit_loop(
        self, loader, epochs, history, eval_fn, eval_every, callbacks, verbose
    ) -> None:
        # Step-parameterised trainers report their paper-style row name
        # (bim10_adv, not iter_adv) so run records keep the rows distinct.
        trainer_name = getattr(self, "name_with_steps", self.name)
        for local_epoch in range(epochs):
            epoch_index = self.epoch
            # The epoch span wraps exactly the EpochTimer region, so the
            # telemetry run record reproduces Table I's time-per-epoch.
            with tel.span(
                "epoch", emit=True, trainer=trainer_name, epoch=epoch_index
            ) as epoch_span:
                self.timer.begin_epoch()
                mean_loss = self.train_epoch(loader)
                elapsed = self.timer.end_epoch()
                epoch_span.note(loss=mean_loss)
            if tel.enabled():
                for name, value in get_workspace().telemetry_gauges().items():
                    tel.gauge(name, value)
            history.losses.append(mean_loss)
            history.epoch_seconds.append(elapsed)
            should_eval = eval_fn is not None and (
                (eval_every and (local_epoch + 1) % eval_every == 0)
                or local_epoch == epochs - 1
            )
            metric = None
            if should_eval:
                self.model.eval()
                metric = float(eval_fn(self.model))
                history.eval_accuracy[self.epoch] = metric
                self.model.train()
            if verbose:
                note = f" acc={metric:.3f}" if metric is not None else ""
                print(
                    f"[{self.name}] epoch {self.epoch}: "
                    f"loss={mean_loss:.4f} ({elapsed:.2f}s){note}"
                )
            stop = False
            for callback in callbacks:
                if callback.on_epoch_end(self.epoch, self.model, metric):
                    stop = True
            if stop:
                break
