"""Evaluation: metrics, robustness protocols, diagnostics and reports."""

from .curves import security_curve, security_curves
from .diagnostics import MaskingReport, gradient_masking_report
from .metrics import (
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    random_guess_accuracy,
)
from .reports import format_curve, format_percent, format_table
from .robustness import (
    RobustnessEvaluator,
    attack_iteration_sweep,
    clean_accuracy,
    intermediate_iterate_curve,
    robust_accuracy,
)
from .transfer import transfer_accuracy, transfer_matrix

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "random_guess_accuracy",
    "clean_accuracy",
    "robust_accuracy",
    "attack_iteration_sweep",
    "intermediate_iterate_curve",
    "RobustnessEvaluator",
    "security_curve",
    "security_curves",
    "transfer_accuracy",
    "transfer_matrix",
    "MaskingReport",
    "gradient_masking_report",
    "format_table",
    "format_curve",
    "format_percent",
]
