"""Security curves: robust accuracy as a function of the attack budget.

The standard way to compare defenses beyond a single epsilon (and another
sanity check against gradient masking: accuracy must fall monotonically to
zero as the budget grows).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..attacks import Attack
from ..nn import Module
from .robustness import robust_accuracy

__all__ = ["security_curve", "security_curves"]


def security_curve(
    model: Module,
    attack_builder: Callable[[Module, float], Attack],
    x: np.ndarray,
    y: np.ndarray,
    epsilons: Sequence[float],
    batch_size: int = 256,
) -> List[float]:
    """Robust accuracy of ``model`` at each budget in ``epsilons``.

    ``attack_builder(model, eps)`` must return the attack instance for a
    given budget, e.g. ``lambda m, e: BIM(m, e, num_steps=10)``.
    """
    if not epsilons:
        raise ValueError("epsilons must be non-empty")
    curve = []
    for eps in epsilons:
        if eps <= 0:
            raise ValueError(f"epsilons must be positive, got {eps}")
        attack = attack_builder(model, float(eps))
        curve.append(
            robust_accuracy(model, attack, x, y, batch_size=batch_size)
        )
    return curve


def security_curves(
    models: Dict[str, Module],
    attack_builder: Callable[[Module, float], Attack],
    x: np.ndarray,
    y: np.ndarray,
    epsilons: Sequence[float],
    batch_size: int = 256,
) -> Dict[str, List[float]]:
    """Security curve per named model (for defense comparisons)."""
    return {
        name: security_curve(
            model, attack_builder, x, y, epsilons, batch_size=batch_size
        )
        for name, model in models.items()
    }
