"""Gradient-masking diagnostics (Athalye et al., 2018 sanity checks).

Adversarial training is valued precisely because it does *not* rely on
obfuscated gradients (the paper cites [1] for this).  These diagnostics
codify the standard red flags so any defense trained with this library can
be checked:

1. single-step attack outperforming iterative attacks;
2. random noise hurting nearly as much as gradient attacks;
3. larger epsilon failing to monotonically decrease accuracy;
4. iterative attacks failing to reach ~0 accuracy on an *undefended* model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..attacks import build_attack
from ..nn import Module
from .robustness import clean_accuracy, robust_accuracy

__all__ = ["MaskingReport", "gradient_masking_report"]


@dataclass
class MaskingReport:
    """Outcome of the gradient-masking checks.

    Attributes
    ----------
    clean, fgsm, bim, noise:
        Accuracies at the probe epsilon.
    epsilon_sweep:
        Accuracy under FGSM at increasing budgets.
    flags:
        Human-readable red flags; empty means no masking indicators.
    """

    epsilon: float
    clean: float
    fgsm: float
    bim: float
    noise: float
    epsilon_sweep: List[float] = field(default_factory=list)
    flags: List[str] = field(default_factory=list)

    @property
    def suspicious(self) -> bool:
        """True when any masking red flag fired."""
        return bool(self.flags)

    def render(self) -> str:
        """Render the diagnostics as plain text."""
        lines = [
            f"gradient-masking diagnostics (eps={self.epsilon})",
            f"  clean={self.clean:.3f} fgsm={self.fgsm:.3f} "
            f"bim={self.bim:.3f} noise={self.noise:.3f}",
        ]
        if self.flags:
            lines.append("  RED FLAGS:")
            lines.extend(f"    - {flag}" for flag in self.flags)
        else:
            lines.append("  no gradient-masking indicators found")
        return "\n".join(lines)


def gradient_masking_report(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    num_steps: int = 10,
    batch_size: int = 256,
    rng=0,
) -> MaskingReport:
    """Run the masking checks against ``model`` at budget ``epsilon``."""
    clean = clean_accuracy(model, x, y, batch_size=batch_size)
    fgsm = robust_accuracy(
        model, build_attack("fgsm", model, epsilon=epsilon), x, y,
        batch_size=batch_size,
    )
    bim = robust_accuracy(
        model,
        build_attack("bim", model, epsilon=epsilon, num_steps=num_steps),
        x,
        y,
        batch_size=batch_size,
    )
    noise = robust_accuracy(
        model, build_attack("noise", model, epsilon=epsilon, rng=rng), x, y,
        batch_size=batch_size,
    )
    sweep = [
        robust_accuracy(
            model, build_attack("fgsm", model, epsilon=eps), x, y,
            batch_size=batch_size,
        )
        for eps in (epsilon * 0.5, epsilon, epsilon * 2.0)
    ]

    report = MaskingReport(
        epsilon=epsilon,
        clean=clean,
        fgsm=fgsm,
        bim=bim,
        noise=noise,
        epsilon_sweep=sweep,
    )
    if bim > fgsm + 0.05:
        report.flags.append(
            "iterative attack is WEAKER than single-step "
            f"(bim={bim:.3f} > fgsm={fgsm:.3f}): classic masking signature"
        )
    if fgsm - noise < 0.02 and clean - noise > 0.1:
        report.flags.append(
            "gradient attack barely beats random noise "
            f"(fgsm={fgsm:.3f}, noise={noise:.3f}): gradients uninformative"
        )
    if not all(a >= b - 0.05 for a, b in zip(sweep, sweep[1:])):
        report.flags.append(
            "accuracy does not decrease monotonically with epsilon "
            f"(sweep={['%.3f' % v for v in sweep]})"
        )
    return report
