"""Classification metrics."""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "random_guess_accuracy",
]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct hard predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs "
            f"labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(predictions == labels))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``(num_classes, num_classes)`` count matrix, rows = true class."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> Dict[int, float]:
    """Accuracy restricted to each true class (NaN-free: absent class -> 0)."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    totals = matrix.sum(axis=1)
    result = {}
    for cls in range(num_classes):
        result[cls] = (
            float(matrix[cls, cls] / totals[cls]) if totals[cls] else 0.0
        )
    return result


def random_guess_accuracy(num_classes: int) -> float:
    """The paper's "random guessing" reference line (10% for 10 classes)."""
    if num_classes <= 0:
        raise ValueError(f"num_classes must be positive, got {num_classes}")
    return 1.0 / num_classes
