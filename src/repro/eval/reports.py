"""Plain-text rendering of experiment results (tables and curves).

The benchmark harness prints the same rows/series the paper reports; these
helpers format them consistently for terminals and for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_curve", "format_percent"]


def format_percent(value: float) -> str:
    """Render a [0, 1] accuracy as the paper's percent style (``94.21%``)."""
    return f"{100.0 * value:.2f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row cells (already stringified).
    title:
        Optional caption printed above the table.
    """
    rows = [[str(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are "
                f"{len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(divider)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve(
    xs: Sequence, ys: Sequence[float], x_label: str, y_label: str,
    title: str = "",
) -> str:
    """Render an (x, y) series as a two-column table plus a unicode sparkline."""
    if len(xs) != len(ys):
        raise ValueError(
            f"xs and ys disagree on length: {len(xs)} vs {len(ys)}"
        )
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    spark = "".join(
        blocks[min(int((y - lo) / span * (len(blocks) - 1)), len(blocks) - 1)]
        for y in ys
    )
    table = format_table(
        [x_label, y_label],
        [[str(x), format_percent(y)] for x, y in zip(xs, ys)],
        title=title,
    )
    return f"{table}\n{spark}"
