"""Robustness evaluation: model-versus-attack accuracy grids and curves.

These helpers implement the measurement protocols behind the paper's
artefacts:

* :func:`robust_accuracy` — one (model, attack) cell of Table I.
* :func:`attack_iteration_sweep` — Figure 1: accuracy vs BIM iteration
  count ``N`` with ``eps_step = eps / N``.
* :func:`intermediate_iterate_curve` — Figure 2: accuracy after every
  iterate of a fixed BIM(N) run.
* :class:`RobustnessEvaluator` — a full model x attack grid.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry as tel
from ..attacks import (
    Attack,
    build_attack,
    canonical_attack_name,
    parse_attack_spec,
)
from ..nn import Module
from .metrics import accuracy

__all__ = [
    "clean_accuracy",
    "robust_accuracy",
    "attack_iteration_sweep",
    "intermediate_iterate_curve",
    "RobustnessEvaluator",
]


def _batched(x: np.ndarray, y: np.ndarray, batch_size: int):
    for start in range(0, len(x), batch_size):
        yield x[start : start + batch_size], y[start : start + batch_size]


def clean_accuracy(
    model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> float:
    """Accuracy on unperturbed examples."""
    model.eval()
    predictions = np.concatenate(
        [model.predict(bx) for bx, _by in _batched(x, y, batch_size)]
    )
    return accuracy(predictions, np.asarray(y))


def robust_accuracy(
    model: Module,
    attack: Attack,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Accuracy of ``model`` on ``attack``-perturbed examples.

    The attack runs white-box against the *same* model that is then used to
    classify (the paper's threat model).
    """
    model.eval()
    correct = 0
    for bx, by in _batched(np.asarray(x), np.asarray(y), batch_size):
        x_adv = attack.generate(bx, by)
        correct += int(np.sum(model.predict(x_adv) == by))
    return correct / len(x)


def attack_iteration_sweep(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    iteration_counts: Sequence[int],
    batch_size: int = 256,
    attack: str = "bim",
) -> Dict[int, float]:
    """Figure 1 protocol: accuracy vs ``N`` with ``step = epsilon / N``.

    ``attack`` is any registry spec whose class takes ``num_steps``
    (default BIM, the paper's protocol).  Returns ``{N: accuracy}`` for
    each requested iteration count.
    """
    results: Dict[int, float] = {}
    for n in iteration_counts:
        built = build_attack(
            attack, model, epsilon=epsilon, num_steps=int(n)
        )
        results[int(n)] = robust_accuracy(
            model, built, x, y, batch_size=batch_size
        )
    return results


def intermediate_iterate_curve(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    num_steps: int = 10,
    batch_size: int = 256,
) -> List[float]:
    """Figure 2 protocol: accuracy after each iterate of one BIM(N) run.

    ``result[i]`` is the accuracy on the batch perturbed for ``i + 1``
    iterations with fixed per-step size ``epsilon / num_steps``.
    """
    model.eval()
    attack = build_attack("bim", model, epsilon=epsilon, num_steps=num_steps)
    x = np.asarray(x)
    y = np.asarray(y)
    correct = np.zeros(num_steps, dtype=np.int64)
    for bx, by in _batched(x, y, batch_size):
        iterates = attack.generate_with_intermediates(bx, by)
        for step, x_adv in enumerate(iterates):
            correct[step] += int(np.sum(model.predict(x_adv) == by))
    return [float(c / len(x)) for c in correct]


class RobustnessEvaluator:
    """Evaluate a model against a named suite of attacks (a Table I row).

    Parameters
    ----------
    attack_builders:
        Mapping from attack name to a factory ``model -> Attack``.  Factories
        receive the model so the suite can be reused across models.
    batch_size:
        Evaluation batch size.
    """

    def __init__(
        self,
        attack_builders: Dict[str, Callable[[Module], Optional[Attack]]],
        batch_size: int = 256,
    ) -> None:
        if not attack_builders:
            raise ValueError("attack suite must not be empty")
        self.attack_builders = dict(attack_builders)
        self.batch_size = batch_size

    def evaluate(
        self, model: Module, x: np.ndarray, y: np.ndarray
    ) -> Dict[str, float]:
        """Return ``{attack_name: accuracy}``; ``None`` factories mean clean.

        Each (model, attack) cell runs inside an emitted ``eval.cell``
        telemetry span tagged with the attack name and the measured
        accuracy, and counts evaluated examples into ``eval.examples``.
        """
        results: Dict[str, float] = {}
        for name, builder in self.attack_builders.items():
            with tel.span("eval.cell", emit=True, attack=name) as cell:
                attack = builder(model)
                if attack is None:
                    results[name] = clean_accuracy(
                        model, x, y, batch_size=self.batch_size
                    )
                else:
                    results[name] = robust_accuracy(
                        model, attack, x, y, batch_size=self.batch_size
                    )
                cell.note(accuracy=results[name])
            if tel.enabled():
                tel.counter("eval.examples", len(x))
        return results

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[str],
        epsilon: Optional[float] = None,
        batch_size: int = 256,
    ) -> "RobustnessEvaluator":
        """Build a suite from attack-registry spec strings.

        Each spec (``"fgsm"``, ``"bim:num_steps=30"``, ``"original"`` for
        clean accuracy, ...) becomes one column keyed by the spec string
        itself; ``epsilon`` supplies the budget for specs that need one
        and do not set it explicitly.
        """
        builders: Dict[str, Callable[[Module], Optional[Attack]]] = {}
        for spec in specs:
            parsed = parse_attack_spec(spec)
            canonical_attack_name(parsed.name)  # fail fast on unknown names
            builders[str(spec)] = (
                lambda model, _parsed=parsed: build_attack(
                    _parsed, model, epsilon=epsilon
                )
            )
        return cls(builders, batch_size=batch_size)

    @classmethod
    def paper_suite(cls, epsilon: float, batch_size: int = 256) -> "RobustnessEvaluator":
        """The Table I attack columns: clean, FGSM, BIM(10), BIM(30)."""
        return cls.from_specs(
            ("original", "fgsm", "bim10", "bim30"),
            epsilon=epsilon,
            batch_size=batch_size,
        )
