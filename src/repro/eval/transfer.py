"""Black-box transfer-attack evaluation.

White-box robustness (the paper's threat model) can overstate security when
a defense merely masks its gradients; transferred adversarial examples —
generated against an independently trained *surrogate* — are the standard
cross-check (Athalye et al., 2018).  This module measures accuracy of a
victim on examples crafted against a surrogate.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from ..attacks import Attack, AttackSpec, build_attack
from ..nn import Module
from .metrics import accuracy

__all__ = ["transfer_accuracy", "transfer_matrix"]


def _resolve_builder(
    attack_builder: Union[str, AttackSpec, Callable[[Module], Attack]],
    epsilon: Optional[float],
) -> Callable[[Module], Attack]:
    """Accept a registry spec string alongside the classic callable form."""
    if isinstance(attack_builder, (str, AttackSpec)):
        spec = attack_builder
        return lambda model: build_attack(spec, model, epsilon=epsilon)
    return attack_builder


def transfer_accuracy(
    victim: Module,
    surrogate_attack: Attack,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Victim accuracy on examples crafted against ``surrogate_attack.model``.

    ``surrogate_attack`` must be bound to the surrogate model; the victim
    never sees gradients, only the finished adversarial examples.
    """
    victim.eval()
    x = np.asarray(x)
    y = np.asarray(y)
    correct = 0
    for start in range(0, len(x), batch_size):
        bx = x[start : start + batch_size]
        by = y[start : start + batch_size]
        x_adv = surrogate_attack.generate(bx, by)
        correct += int(np.sum(victim.predict(x_adv) == by))
    return correct / len(x)


def transfer_matrix(
    models: Dict[str, Module],
    attack_builder: Union[str, AttackSpec, Callable[[Module], Attack]],
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 256,
    epsilon: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Full source x target transfer grid.

    ``attack_builder`` is either a factory ``model -> Attack`` or an
    attack-registry spec string (``"bim:num_steps=10"``), in which case
    ``epsilon`` supplies the budget.  ``result[source][target]`` is the
    accuracy of ``target`` on examples crafted against ``source``.  The
    diagonal is the usual white-box robust accuracy.
    """
    if not models:
        raise ValueError("transfer matrix needs at least one model")
    builder = _resolve_builder(attack_builder, epsilon)
    result: Dict[str, Dict[str, float]] = {}
    for source_name, source in models.items():
        attack = builder(source)
        row: Dict[str, float] = {}
        x_adv_batches = []
        for start in range(0, len(x), batch_size):
            bx = x[start : start + batch_size]
            by = y[start : start + batch_size]
            x_adv_batches.append(attack.generate(bx, by))
        x_adv = np.concatenate(x_adv_batches)
        for target_name, target in models.items():
            target.eval()
            predictions = np.concatenate(
                [
                    target.predict(x_adv[start : start + batch_size])
                    for start in range(0, len(x_adv), batch_size)
                ]
            )
            row[target_name] = accuracy(predictions, y)
        result[source_name] = row
    return result
