"""Experiment runners reproducing the paper's figures and table.

* :func:`run_figure1` — accuracy vs BIM iteration count (Figure 1).
* :func:`run_figure2` — accuracy on intermediate iterates (Figure 2).
* :func:`run_table1` — full defense comparison (Table I).
* :func:`run_step_size_ablation` / :func:`run_reset_interval_ablation` —
  design-choice sweeps for the proposed method.
"""

from .ablations import (
    AblationResult,
    run_reset_interval_ablation,
    run_step_size_ablation,
)
from .config import ExperimentConfig, paper_scale, smoke_scale
from .crossover import CrossoverResult, run_crossover_study
from .figure1 import FIGURE1_CLASSIFIERS, Figure1Result, run_figure1
from .figure2 import Figure2Result, run_figure2
from .runner import ClassifierPool, TrainedDefense
from .table1 import ATTACK_COLUMNS, TABLE1_METHODS, Table1Result, run_table1
from .variance import VarianceResult, run_variance_study

__all__ = [
    "ExperimentConfig",
    "paper_scale",
    "smoke_scale",
    "ClassifierPool",
    "TrainedDefense",
    "Figure1Result",
    "run_figure1",
    "FIGURE1_CLASSIFIERS",
    "Figure2Result",
    "run_figure2",
    "Table1Result",
    "run_table1",
    "TABLE1_METHODS",
    "ATTACK_COLUMNS",
    "AblationResult",
    "run_step_size_ablation",
    "run_reset_interval_ablation",
    "VarianceResult",
    "run_variance_study",
    "CrossoverResult",
    "run_crossover_study",
]
