"""Ablations over the proposed method's two design choices.

Section IV motivates two knobs:

* the per-epoch step size ("relatively large per step perturbation" —
  empirical property 1 says don't make it tiny);
* the reset interval (re-syncing the cached examples with the drifting
  classifier).

These sweeps quantify both on this repo's substrate and are exposed as
benchmarks (``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..eval import RobustnessEvaluator, format_percent, format_table
from ..parallel import parallel_map
from ..utils.serialization import save_json
from .config import ExperimentConfig
from .runner import ClassifierPool

__all__ = [
    "AblationResult",
    "run_step_size_ablation",
    "run_reset_interval_ablation",
]

DEFAULT_STEP_FRACTIONS = (1 / 10, 1 / 5, 1 / 2, 1.0)
DEFAULT_RESET_INTERVALS = (5, 10, 20, 0)  # 0 = never reset


@dataclass
class AblationResult:
    """Robust accuracy of the proposed method across one swept knob."""

    dataset: str
    epsilon: float
    knob: str
    values: List[float] = field(default_factory=list)
    accuracy: List[Dict[str, float]] = field(default_factory=list)

    def render(self) -> str:
        """Render the result as an aligned plain-text artefact."""
        headers = [self.knob, "original", "fgsm", "bim10", "bim30"]
        rows = []
        for value, acc in zip(self.values, self.accuracy):
            rows.append(
                [
                    f"{value:g}",
                    *(
                        format_percent(acc[c])
                        for c in ("original", "fgsm", "bim10", "bim30")
                    ),
                ]
            )
        return format_table(
            headers,
            rows,
            title=(
                f"Ablation ({self.dataset}, eps={self.epsilon}): proposed "
                f"method vs {self.knob}"
            ),
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form of the result."""
        return {
            "dataset": self.dataset,
            "epsilon": self.epsilon,
            "knob": self.knob,
            "values": self.values,
            "accuracy": self.accuracy,
        }

    def save(self, path: str) -> None:
        """Write the result as JSON to ``path``."""
        save_json(path, self.to_dict())


def _evaluate_variant(
    pool: ClassifierPool, config: ExperimentConfig, **overrides
) -> Dict[str, float]:
    defense = pool.get("proposed", **overrides)
    suite = RobustnessEvaluator.paper_suite(
        pool.epsilon, batch_size=config.eval_batch_size
    )
    return suite.evaluate(defense.model, pool.test_x, pool.test_y)


def _sweep_variants(
    pool: ClassifierPool,
    config: ExperimentConfig,
    overrides_list: List[dict],
) -> List[Dict[str, float]]:
    """Train and evaluate one ablation variant per override dict.

    With ``config`` resolving to more than one worker the sweep runs one
    grid cell per worker process (:func:`repro.parallel.parallel_map`);
    each forked cell trains its variant *serially* — its pool config is
    forced to one worker — so grid parallelism and batch-level data
    parallelism never nest.  Serial sweeps keep batch-level parallelism
    available inside each cell instead.
    """
    workers = config.resolved_workers
    if workers > 1 and len(overrides_list) > 1:

        def cell(overrides: dict) -> Dict[str, float]:
            # Runs only inside a forked grid worker; the mutation is
            # child-local and prevents a nested batch-level worker pool.
            pool.config = pool.config.with_overrides(workers=1)
            return _evaluate_variant(pool, config, **overrides)

        return parallel_map(cell, overrides_list, num_workers=workers)
    return [
        _evaluate_variant(pool, config, **overrides)
        for overrides in overrides_list
    ]


def run_step_size_ablation(
    config: ExperimentConfig,
    pool: Optional[ClassifierPool] = None,
    step_fractions: Sequence[float] = DEFAULT_STEP_FRACTIONS,
    verbose: bool = False,
) -> AblationResult:
    """Sweep the per-epoch step as a fraction of epsilon."""
    pool = pool or ClassifierPool(config, verbose=verbose)
    result = AblationResult(
        dataset=config.dataset,
        epsilon=pool.epsilon,
        knob="step_size/epsilon",
    )
    accuracies = _sweep_variants(
        pool,
        config,
        [
            {"step_size": pool.epsilon * fraction}
            for fraction in step_fractions
        ],
    )
    for fraction, accuracy in zip(step_fractions, accuracies):
        result.values.append(float(fraction))
        result.accuracy.append(accuracy)
        if verbose:
            print(f"ablation step fraction {fraction:g}: {accuracy}")
    return result


def run_reset_interval_ablation(
    config: ExperimentConfig,
    pool: Optional[ClassifierPool] = None,
    reset_intervals: Sequence[int] = DEFAULT_RESET_INTERVALS,
    verbose: bool = False,
) -> AblationResult:
    """Sweep the epoch-wise cache reset interval (0 disables resets)."""
    pool = pool or ClassifierPool(config, verbose=verbose)
    result = AblationResult(
        dataset=config.dataset,
        epsilon=pool.epsilon,
        knob="reset_interval",
    )
    accuracies = _sweep_variants(
        pool,
        config,
        [{"reset_interval": int(interval)} for interval in reset_intervals],
    )
    for interval, accuracy in zip(reset_intervals, accuracies):
        result.values.append(float(interval))
        result.accuracy.append(accuracy)
        if verbose:
            print(f"ablation reset interval {interval}: {accuracy}")
    return result
