"""Experiment configuration.

A single :class:`ExperimentConfig` captures everything needed to rebuild a
paper artefact: dataset, model, training schedule, attack budget.  Presets
exist for the full-fidelity runs (``paper_scale``) and for quick smoke runs
used in tests (``smoke_scale``).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from typing import Optional

from ..data.synthetic import dataset_epsilon
from ..runtime import precision
from ..telemetry import capture

__all__ = ["ExperimentConfig", "paper_scale", "smoke_scale"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by all experiment runners.

    Attributes
    ----------
    dataset:
        ``"digits"`` (MNIST substitute) or ``"fashion"`` (Fashion-MNIST
        substitute).
    train_per_class, test_per_class:
        Per-class split sizes.
    model:
        Model-zoo name (see :mod:`repro.models`).
    epochs:
        Training epochs per defense.
    warmup_epochs:
        Clean warmup epochs for the adversarial trainers.
    batch_size, lr, seed:
        Optimisation and reproducibility knobs.
    epsilon:
        Total l_inf budget; ``None`` uses the dataset default.
    eval_batch_size:
        Batch size for robustness evaluation.
    dtype:
        Floating dtype for the whole experiment (``"float32"`` or
        ``"float64"``).  ``None`` inherits the ambient runtime policy.
    telemetry:
        Optional JSONL path; when set, :meth:`telemetry_scope` records the
        experiment's spans/counters/events as a run record renderable with
        ``repro report``.  ``None`` leaves telemetry in its ambient state.
    workers:
        Worker processes for the experiment (``--workers`` CLI flag).
        ``None`` defers to the ``REPRO_WORKERS`` environment variable
        (default 1 = serial).  Above 1, defended classifiers train
        data-parallel (:class:`~repro.parallel.DataParallelTrainer`) and
        the figure1/ablation sweeps run one grid cell per worker.
    stream:
        Train from a streaming :class:`~repro.data.SyntheticSource` that
        regenerates shards on the fly instead of materialising the train
        split (``--stream`` CLI flag).  The virtual training-set size is
        still ``num_classes * train_per_class``; evaluation keeps a small
        materialised test split either way.
    shard_size:
        Examples per streamed shard; ``None`` uses
        :data:`~repro.data.DEFAULT_SHARD_SIZE`.  Ignored unless
        ``stream`` is set.
    data_budget_mb:
        Memory budget (MiB) shared by the streaming pipeline's two
        resident stores — the loader's shard cache and the epochwise
        defense's delta store each get this budget.  ``None`` is
        unbounded.  Ignored unless ``stream`` is set.
    """

    dataset: str = "digits"
    train_per_class: int = 200
    test_per_class: int = 40
    model: str = "mnist_mlp"
    epochs: int = 80
    warmup_epochs: int = 5
    batch_size: int = 128
    lr: float = 1e-3
    seed: int = 0
    epsilon: Optional[float] = None
    eval_batch_size: int = 256
    dtype: Optional[str] = None
    telemetry: Optional[str] = None
    workers: Optional[int] = None
    stream: bool = False
    shard_size: Optional[int] = None
    data_budget_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.shard_size is not None and self.shard_size <= 0:
            raise ValueError(
                f"shard_size must be positive, got {self.shard_size}"
            )
        if self.data_budget_mb is not None and self.data_budget_mb <= 0:
            raise ValueError(
                f"data_budget_mb must be positive, got {self.data_budget_mb}"
            )
        if self.dtype is not None and self.dtype not in (
            "float32",
            "float64",
        ):
            raise ValueError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
        if self.train_per_class <= 0 or self.test_per_class <= 0:
            raise ValueError("split sizes must be positive")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.warmup_epochs < 0:
            raise ValueError(
                f"warmup_epochs must be non-negative, got {self.warmup_epochs}"
            )
        if self.warmup_epochs >= self.epochs:
            raise ValueError(
                "warmup_epochs must be below epochs "
                f"({self.warmup_epochs} >= {self.epochs})"
            )

    @property
    def resolved_epsilon(self) -> float:
        """The explicit epsilon, or the dataset's calibrated default."""
        if self.epsilon is not None:
            return self.epsilon
        return dataset_epsilon(self.dataset)

    def precision_scope(self):
        """Context manager activating this config's precision policy.

        A no-op when ``dtype`` is unset, so experiments run under whatever
        policy the caller (CLI flag, env var, library default) installed.
        """
        if self.dtype is None:
            return contextlib.nullcontext()
        return precision(self.dtype)

    def telemetry_scope(self):
        """Context manager recording this config's telemetry run record.

        A no-op when ``telemetry`` is unset; otherwise enables telemetry
        and streams every record to the configured JSONL path.
        """
        if self.telemetry is None:
            return contextlib.nullcontext()
        return capture(jsonl=self.telemetry)

    @property
    def resolved_shard_size(self) -> int:
        """The explicit shard size, or the pipeline default."""
        if self.shard_size is not None:
            return self.shard_size
        from ..data.source import DEFAULT_SHARD_SIZE

        return DEFAULT_SHARD_SIZE

    @property
    def budget_bytes(self) -> Optional[int]:
        """``data_budget_mb`` in bytes, or ``None`` when unbounded."""
        if self.data_budget_mb is None:
            return None
        return int(self.data_budget_mb * (1 << 20))

    @property
    def resolved_workers(self) -> int:
        """The explicit worker count, else ``REPRO_WORKERS``, else 1."""
        from ..parallel import resolve_workers

        return resolve_workers(self.workers)

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def paper_scale(dataset: str = "digits", **overrides) -> ExperimentConfig:
    """Full-fidelity configuration used by the benchmark harness."""
    return ExperimentConfig(dataset=dataset, **overrides)


def smoke_scale(dataset: str = "digits", **overrides) -> ExperimentConfig:
    """Tiny configuration for fast tests (seconds, not minutes)."""
    defaults = dict(
        train_per_class=20,
        test_per_class=10,
        epochs=4,
        warmup_epochs=1,
        batch_size=64,
    )
    defaults.update(overrides)
    return ExperimentConfig(dataset=dataset, **defaults)
