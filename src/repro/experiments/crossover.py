"""Budget-crossover study: proposed vs Iter-Adv across training budgets.

The reproduction brief cares about *where crossovers fall*: the proposed
Single-Adv method matches Iter-Adv at moderate budgets but the gap can
open as the budget grows (the cached single-step examples become a weaker
approximation of the inner maximisation).  This runner trains both methods
at a sweep of epsilon values and reports robust accuracy side by side,
locating the crossover (if any) on this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..attacks import build_attack
from ..eval import format_table, robust_accuracy
from ..utils.serialization import save_json
from .config import ExperimentConfig
from .runner import ClassifierPool

__all__ = ["CrossoverResult", "run_crossover_study"]

DEFAULT_METHODS = ("proposed", "bim10_adv")


@dataclass
class CrossoverResult:
    """Robust accuracy of each method at each training/eval budget."""

    dataset: str
    epsilons: List[float] = field(default_factory=list)
    # method -> list of robust accuracies aligned with epsilons
    accuracy: Dict[str, List[float]] = field(default_factory=dict)

    def gap(self, a: str, b: str) -> List[float]:
        """Pointwise accuracy difference ``a - b`` along the sweep."""
        return [
            x - y for x, y in zip(self.accuracy[a], self.accuracy[b])
        ]

    def crossover_epsilon(self, a: str, b: str) -> float:
        """First epsilon where ``a`` falls below ``b`` (NaN if never)."""
        for eps, difference in zip(self.epsilons, self.gap(a, b)):
            if difference < 0:
                return float(eps)
        return float("nan")

    def render(self) -> str:
        """Render the result as an aligned plain-text artefact."""
        headers = ["epsilon"] + list(self.accuracy)
        rows = []
        for i, eps in enumerate(self.epsilons):
            row = [f"{eps:g}"]
            for method in self.accuracy:
                row.append(f"{100 * self.accuracy[method][i]:.2f}%")
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                f"Crossover study ({self.dataset}): robust accuracy on "
                "BIM(10) at the training budget"
            ),
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form of the result."""
        return {
            "dataset": self.dataset,
            "epsilons": self.epsilons,
            "accuracy": self.accuracy,
        }

    def save(self, path: str) -> None:
        """Write the result as JSON to ``path``."""
        save_json(path, self.to_dict())


def run_crossover_study(
    config: ExperimentConfig,
    epsilons: Sequence[float],
    methods: Sequence[str] = DEFAULT_METHODS,
    attack_steps: int = 10,
    verbose: bool = False,
) -> CrossoverResult:
    """Train each method at every epsilon and evaluate at that epsilon.

    Each budget gets a fresh pool (training at epsilon e, attacking with
    BIM(attack_steps) at the same e), so the sweep compares like with like.
    """
    if not epsilons:
        raise ValueError("epsilons must be non-empty")
    result = CrossoverResult(dataset=config.dataset)
    result.epsilons = [float(e) for e in epsilons]
    result.accuracy = {m: [] for m in methods}
    for eps in result.epsilons:
        if eps <= 0:
            raise ValueError(f"epsilons must be positive, got {eps}")
        pool = ClassifierPool(
            config.with_overrides(epsilon=eps), verbose=verbose
        )
        for method in methods:
            defense = pool.get(method)
            attack = build_attack(
                "bim", defense.model, epsilon=eps, num_steps=attack_steps
            )
            accuracy = robust_accuracy(
                defense.model,
                attack,
                pool.test_x,
                pool.test_y,
                batch_size=config.eval_batch_size,
            )
            result.accuracy[method].append(accuracy)
            if verbose:
                print(f"crossover eps={eps} {method}: {accuracy:.3f}")
    return result
