"""Figure 1: test accuracy on BIM examples vs number of attack iterations.

Protocol (paper Section II): train Vanilla, FGSM-Adv, BIM(10)-Adv and
BIM(30)-Adv classifiers; attack each with BIM(N) for a sweep of iteration
counts ``N`` at fixed total budget ``eps`` and per-step size ``eps / N``.

Expected shape: Vanilla and FGSM-Adv collapse to (or below) random guessing
within a few iterations; the BIM-Adv classifiers plateau high; every curve
converges quickly in ``N`` — diminishing returns from tinier steps
(empirical property 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..eval import attack_iteration_sweep, format_curve
from ..parallel import parallel_map
from ..utils.serialization import save_json
from .config import ExperimentConfig
from .runner import ClassifierPool

__all__ = ["FIGURE1_CLASSIFIERS", "Figure1Result", "run_figure1"]

FIGURE1_CLASSIFIERS = ("vanilla", "fgsm_adv", "bim10_adv", "bim30_adv")

DEFAULT_ITERATIONS = (1, 2, 3, 4, 5, 8, 10, 15, 20, 30)


@dataclass
class Figure1Result:
    """Accuracy-vs-iterations curves for each classifier."""

    dataset: str
    epsilon: float
    iteration_counts: List[int]
    curves: Dict[str, List[float]] = field(default_factory=dict)

    def render(self) -> str:
        """Render the result as an aligned plain-text artefact."""
        parts = [
            f"Figure 1 ({self.dataset}, eps={self.epsilon}): "
            "test accuracy on BIM(N) examples"
        ]
        for name, ys in self.curves.items():
            parts.append(
                format_curve(
                    self.iteration_counts,
                    ys,
                    x_label="N",
                    y_label="accuracy",
                    title=f"-- {name} --",
                )
            )
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable form of the result."""
        return {
            "dataset": self.dataset,
            "epsilon": self.epsilon,
            "iteration_counts": self.iteration_counts,
            "curves": self.curves,
        }

    def save(self, path: str) -> None:
        """Write the result as JSON to ``path``."""
        save_json(path, self.to_dict())


def run_figure1(
    config: ExperimentConfig,
    pool: ClassifierPool = None,
    iteration_counts: Sequence[int] = DEFAULT_ITERATIONS,
    verbose: bool = False,
) -> Figure1Result:
    """Train the four classifiers and sweep the BIM iteration count."""
    pool = pool or ClassifierPool(config, verbose=verbose)
    result = Figure1Result(
        dataset=config.dataset,
        epsilon=pool.epsilon,
        iteration_counts=[int(n) for n in iteration_counts],
    )
    def sweep_one(name: str) -> List[float]:
        defense = pool.get(name)
        sweep = attack_iteration_sweep(
            defense.model,
            pool.test_x,
            pool.test_y,
            pool.epsilon,
            result.iteration_counts,
            batch_size=config.eval_batch_size,
        )
        return [sweep[n] for n in result.iteration_counts]

    workers = config.resolved_workers
    if workers > 1:
        # One grid worker per classifier: each forked cell trains and
        # sweeps its classifier serially (no nested batch-level pool) and
        # ships only the curve back.  The trained models stay in the
        # children, so the parent pool's cache is not populated — the
        # figure artefact is the curves, not the weights.
        def cell(name: str) -> List[float]:
            pool.config = pool.config.with_overrides(workers=1)
            return sweep_one(name)

        curves = parallel_map(
            cell, list(FIGURE1_CLASSIFIERS), num_workers=workers
        )
        for name, ys in zip(FIGURE1_CLASSIFIERS, curves):
            result.curves[name] = ys
            if verbose:
                print(f"figure1[{config.dataset}] swept {name}")
        return result

    for name in FIGURE1_CLASSIFIERS:
        result.curves[name] = sweep_one(name)
        if verbose:
            print(f"figure1[{config.dataset}] swept {name}")
    return result
