"""Figure 2: test accuracy on the intermediate iterates of a BIM(10) run.

Protocol (paper Section III): same four classifiers as Figure 1; generate
BIM with fixed ``N = 10`` (per-step ``eps / 10``) and measure accuracy
after *every* iteration, i.e. while the cumulative perturbation grows.

Expected shape: accuracy decreases monotonically (in trend) with the
iterate index; undefended classifiers fall below random guessing before the
attack finishes; most of the degradation happens within the first ~6
iterations (empirical property 2) — which is why intermediate iterates are
useful training material.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..eval import format_curve, intermediate_iterate_curve
from ..utils.serialization import save_json
from .config import ExperimentConfig
from .figure1 import FIGURE1_CLASSIFIERS
from .runner import ClassifierPool

__all__ = ["Figure2Result", "run_figure2"]


@dataclass
class Figure2Result:
    """Accuracy after each intermediate BIM iterate, per classifier."""

    dataset: str
    epsilon: float
    num_steps: int
    curves: Dict[str, List[float]] = field(default_factory=dict)

    def render(self) -> str:
        """Render the result as an aligned plain-text artefact."""
        steps = list(range(1, self.num_steps + 1))
        parts = [
            f"Figure 2 ({self.dataset}, eps={self.epsilon}): accuracy after "
            f"each of {self.num_steps} BIM iterations (step = eps/"
            f"{self.num_steps})"
        ]
        for name, ys in self.curves.items():
            parts.append(
                format_curve(
                    steps,
                    ys,
                    x_label="iteration",
                    y_label="accuracy",
                    title=f"-- {name} --",
                )
            )
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable form of the result."""
        return {
            "dataset": self.dataset,
            "epsilon": self.epsilon,
            "num_steps": self.num_steps,
            "curves": self.curves,
        }

    def save(self, path: str) -> None:
        """Write the result as JSON to ``path``."""
        save_json(path, self.to_dict())


def run_figure2(
    config: ExperimentConfig,
    pool: ClassifierPool = None,
    num_steps: int = 10,
    verbose: bool = False,
) -> Figure2Result:
    """Train the four classifiers and trace the intermediate iterates."""
    pool = pool or ClassifierPool(config, verbose=verbose)
    result = Figure2Result(
        dataset=config.dataset, epsilon=pool.epsilon, num_steps=num_steps
    )
    for name in FIGURE1_CLASSIFIERS:
        defense = pool.get(name)
        result.curves[name] = intermediate_iterate_curve(
            defense.model,
            pool.test_x,
            pool.test_y,
            pool.epsilon,
            num_steps=num_steps,
            batch_size=config.eval_batch_size,
        )
        if verbose:
            print(f"figure2[{config.dataset}] traced {name}")
    return result
