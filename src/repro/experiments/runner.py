"""Shared experiment machinery: build data, train defended classifiers.

The three paper artefacts (Figures 1-2, Table I) share the expensive part —
training a set of defended classifiers on a dataset.  :class:`ClassifierPool`
trains each defense lazily and caches the result so one pool can serve all
artefacts of a dataset.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

from ..data import DataLoader, SyntheticSource, load_dataset, load_test_split
from ..data.synthetic import dataset_num_classes
from ..defenses import TrainingHistory, build_trainer
from ..models import FeatureClassifier, build_model
from ..nn import Module
from ..parallel import DataParallelTrainer
from ..utils.serialization import (
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
)
from .config import ExperimentConfig

__all__ = ["TrainedDefense", "ClassifierPool"]


@dataclass
class TrainedDefense:
    """A defense trained to completion plus its training record."""

    name: str
    model: Module
    history: TrainingHistory

    @property
    def time_per_epoch(self) -> float:
        """Mean training seconds per epoch for this defense."""
        return self.history.time_per_epoch


class ClassifierPool:
    """Lazily trains and caches defended classifiers for one config.

    Parameters
    ----------
    config:
        Experiment configuration (dataset, model, schedule).
    verbose:
        Print per-epoch progress while training.
    """

    def __init__(self, config: ExperimentConfig, verbose: bool = False) -> None:
        self.config = config
        self.verbose = verbose
        self._cache: Dict[str, TrainedDefense] = {}
        with config.precision_scope():
            if config.stream:
                # Streaming mode never materialises the training split:
                # the source regenerates shards on demand, keyed by
                # (seed, shard_id).  Only the small test split is built.
                self.train_set = None
                self.train_source = SyntheticSource(
                    config.dataset,
                    num_examples=(
                        dataset_num_classes(config.dataset)
                        * config.train_per_class
                    ),
                    shard_size=config.resolved_shard_size,
                    seed=config.seed,
                )
                self.test_set = load_test_split(
                    config.dataset,
                    test_per_class=config.test_per_class,
                    seed=config.seed,
                )
            else:
                self.train_set, self.test_set = load_dataset(
                    config.dataset,
                    train_per_class=config.train_per_class,
                    test_per_class=config.test_per_class,
                    seed=config.seed,
                )
                self.train_source = None
            self.test_x, self.test_y = self.test_set.arrays()

    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """The pool's resolved perturbation budget."""
        return self.config.resolved_epsilon

    def _make_loader(self) -> DataLoader:
        config = self.config
        if config.stream:
            return DataLoader(
                self.train_source,
                batch_size=config.batch_size,
                rng=config.seed,
                budget_bytes=config.budget_bytes,
            )
        return DataLoader(
            self.train_set,
            batch_size=config.batch_size,
            rng=config.seed,
        )

    def _make_model(self) -> FeatureClassifier:
        return build_model(self.config.model, seed=self.config.seed)

    def _trainer_kwargs(self, name: str) -> dict:
        if name == "vanilla":
            return {}
        kwargs = {"warmup_epochs": self.config.warmup_epochs}
        if name == "proposed" and self.config.budget_bytes is not None:
            # The epochwise carried-perturbation store honours the same
            # byte budget as the loader's shard cache, with its blocks
            # aligned to the loader's shards so whole blocks age out
            # together with the shards that produced them.
            kwargs["delta_budget_bytes"] = self.config.budget_bytes
            kwargs["delta_block_size"] = self.config.resolved_shard_size
        return kwargs

    # ------------------------------------------------------------------
    def get(self, name: str, **trainer_overrides) -> TrainedDefense:
        """Return the trained defense ``name``, training it on first use.

        ``trainer_overrides`` (e.g. ``reset_interval=5``) bypass the cache:
        ablation variants are always trained fresh and not cached.
        """
        if not trainer_overrides and name in self._cache:
            return self._cache[name]
        with self.config.precision_scope():
            model = self._make_model()
            kwargs = self._trainer_kwargs(name)
            kwargs.update(trainer_overrides)
            trainer = build_trainer(
                name,
                model,
                epsilon=self.epsilon,
                lr=self.config.lr,
                **kwargs,
            )
            workers = self.config.resolved_workers
            if workers > 1:
                # Shard each batch across a forked worker pool; gradients
                # are all-reduced into this process's parameters, so the
                # trained model below is identical in ownership terms.
                trainer = DataParallelTrainer(trainer, num_workers=workers)
            try:
                history = trainer.fit(
                    self._make_loader(),
                    epochs=self.config.epochs,
                    verbose=self.verbose,
                )
            finally:
                if isinstance(trainer, DataParallelTrainer):
                    trainer.close()
        trained = TrainedDefense(name=name, model=model, history=history)
        if not trainer_overrides:
            self._cache[name] = trained
        return trained

    def get_many(self, names) -> Dict[str, TrainedDefense]:
        """Train (or fetch) several defenses, preserving order."""
        return {name: self.get(name) for name in names}

    # ------------------------------------------------------------------
    # persistence: avoid retraining across processes
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist every cached trained defense (weights + timings)."""
        os.makedirs(directory, exist_ok=True)
        for name, defense in self._cache.items():
            save_state_dict(
                os.path.join(directory, f"{name}.npz"),
                defense.model.state_dict(),
            )
            save_json(
                os.path.join(directory, f"{name}_history.json"),
                {
                    "losses": defense.history.losses,
                    "epoch_seconds": defense.history.epoch_seconds,
                    "eval_accuracy": defense.history.eval_accuracy,
                },
            )

    def load(self, directory: str) -> int:
        """Load previously saved defenses into the cache.

        Returns the number of defenses restored.  Entries whose files are
        missing are skipped (they will train lazily as usual).
        """
        restored = 0
        if not os.path.isdir(directory):
            return restored
        for filename in os.listdir(directory):
            if not filename.endswith(".npz"):
                continue
            name = filename[: -len(".npz")]
            with self.config.precision_scope():
                model = self._make_model()
            model.load_state_dict(
                load_state_dict(os.path.join(directory, filename))
            )
            model.eval()
            history = TrainingHistory()
            history_path = os.path.join(directory, f"{name}_history.json")
            if os.path.exists(history_path):
                payload = load_json(history_path)
                history.losses = list(payload.get("losses", []))
                history.epoch_seconds = list(
                    payload.get("epoch_seconds", [])
                )
                history.eval_accuracy = {
                    int(k): v
                    for k, v in payload.get("eval_accuracy", {}).items()
                }
            self._cache[name] = TrainedDefense(
                name=name, model=model, history=history
            )
            restored += 1
        return restored
