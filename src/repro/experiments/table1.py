"""Table I: defense comparison — robust accuracy and training time per epoch.

Protocol (paper Section V): train FGSM-Adv, ATDA, the proposed method,
BIM(10)-Adv and BIM(30)-Adv; evaluate each against clean examples, FGSM,
BIM(10) and BIM(30); record mean training time per epoch.

Expected shape (paper's headline):

* all methods retain high clean/FGSM accuracy;
* only ATDA / Proposed / BIM-Adv resist iterative attacks;
* Proposed beats ATDA on the BIM columns while training faster;
* Proposed is competitive with the Iter-Adv methods at a fraction
  (roughly ``3 / (k + 2)``) of their per-epoch cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..eval import RobustnessEvaluator, format_percent, format_table
from ..utils.serialization import save_json
from .config import ExperimentConfig
from .runner import ClassifierPool

__all__ = ["TABLE1_METHODS", "ATTACK_COLUMNS", "Table1Result", "run_table1"]

TABLE1_METHODS = ("fgsm_adv", "atda", "proposed", "bim10_adv", "bim30_adv")
ATTACK_COLUMNS = ("original", "fgsm", "bim10", "bim30")


@dataclass
class Table1Result:
    """Accuracy grid plus per-epoch training times for one dataset."""

    dataset: str
    epsilon: float
    accuracy: Dict[str, Dict[str, float]] = field(default_factory=dict)
    time_per_epoch: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Render the result as an aligned plain-text artefact."""
        headers = ["method", *ATTACK_COLUMNS, "s/epoch"]
        rows = []
        for method in self.accuracy:
            cells = [method]
            cells.extend(
                format_percent(self.accuracy[method][col])
                for col in ATTACK_COLUMNS
            )
            cells.append(f"{self.time_per_epoch[method]:.2f}")
            rows.append(cells)
        return format_table(
            headers,
            rows,
            title=(
                f"Table I ({self.dataset}, eps={self.epsilon}): accuracy "
                "under attack and training cost"
            ),
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form of the result."""
        return {
            "dataset": self.dataset,
            "epsilon": self.epsilon,
            "accuracy": self.accuracy,
            "time_per_epoch": self.time_per_epoch,
        }

    def save(self, path: str) -> None:
        """Write the result as JSON to ``path``."""
        save_json(path, self.to_dict())

    # convenience accessors used by the benchmarks/tests -----------------
    def improvement_over(
        self, method: str, baseline: str, column: str
    ) -> float:
        """Accuracy gain of ``method`` over ``baseline`` on one column."""
        return (
            self.accuracy[method][column] - self.accuracy[baseline][column]
        )

    def speedup_over(self, method: str, baseline: str) -> float:
        """Per-epoch time reduction of ``method`` relative to ``baseline``.

        Matches the paper's phrasing "reduces training time by 28.75%":
        ``1 - time(method) / time(baseline)``.
        """
        return 1.0 - self.time_per_epoch[method] / self.time_per_epoch[baseline]


def run_table1(
    config: ExperimentConfig,
    pool: ClassifierPool = None,
    methods: Sequence[str] = TABLE1_METHODS,
    verbose: bool = False,
) -> Table1Result:
    """Train all Table I methods on one dataset and evaluate the grid."""
    pool = pool or ClassifierPool(config, verbose=verbose)
    suite = RobustnessEvaluator.paper_suite(
        pool.epsilon, batch_size=config.eval_batch_size
    )
    result = Table1Result(dataset=config.dataset, epsilon=pool.epsilon)
    for name in methods:
        defense = pool.get(name)
        result.accuracy[name] = suite.evaluate(
            defense.model, pool.test_x, pool.test_y
        )
        result.time_per_epoch[name] = defense.time_per_epoch
        if verbose:
            print(f"table1[{config.dataset}] evaluated {name}")
    return result
