"""Multi-seed variance study of the key Table I comparison.

The paper reports single-run numbers ("preliminary evaluation"); its
future-work section asks for deeper understanding.  This runner repeats
the central comparison — proposed vs ATDA vs the Iter-Adv reference —
across seeds and reports mean ± std of the BIM robust accuracy, so the
headline gap can be judged against run-to-run noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..eval import RobustnessEvaluator, format_table
from ..utils.serialization import save_json
from .config import ExperimentConfig
from .runner import ClassifierPool

__all__ = ["VarianceResult", "run_variance_study"]

DEFAULT_METHODS = ("atda", "proposed", "bim10_adv")


@dataclass
class VarianceResult:
    """Per-seed accuracy grids plus summary statistics."""

    dataset: str
    epsilon: float
    seeds: List[int] = field(default_factory=list)
    # method -> column -> list of per-seed accuracies
    runs: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def mean(self, method: str, column: str) -> float:
        """Mean accuracy of ``method`` on ``column`` across seeds."""
        return float(np.mean(self.runs[method][column]))

    def std(self, method: str, column: str) -> float:
        """Std of ``method`` on ``column`` across seeds."""
        return float(np.std(self.runs[method][column]))

    def gap_significant(
        self, better: str, worse: str, column: str
    ) -> bool:
        """True when the mean gap exceeds the combined 1-sigma noise."""
        gap = self.mean(better, column) - self.mean(worse, column)
        noise = self.std(better, column) + self.std(worse, column)
        return gap > noise

    def render(self) -> str:
        """Render the result as an aligned plain-text artefact."""
        columns = ("original", "fgsm", "bim10", "bim30")
        headers = ["method"] + [f"{c} (mean±std)" for c in columns]
        rows = []
        for method in self.runs:
            row = [method]
            for column in columns:
                row.append(
                    f"{100 * self.mean(method, column):.2f}"
                    f"±{100 * self.std(method, column):.2f}%"
                )
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                f"Variance study ({self.dataset}, eps={self.epsilon}, "
                f"{len(self.seeds)} seeds)"
            ),
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form of the result."""
        return {
            "dataset": self.dataset,
            "epsilon": self.epsilon,
            "seeds": self.seeds,
            "runs": self.runs,
        }

    def save(self, path: str) -> None:
        """Write the result as JSON to ``path``."""
        save_json(path, self.to_dict())


def run_variance_study(
    config: ExperimentConfig,
    seeds: Sequence[int] = (0, 1, 2),
    methods: Sequence[str] = DEFAULT_METHODS,
    verbose: bool = False,
) -> VarianceResult:
    """Repeat training/evaluation of ``methods`` across ``seeds``.

    Each seed gets its own data split, model init and batch order (all
    derived from the seed), so the spread captures the full pipeline
    variance.
    """
    if not seeds:
        raise ValueError("seeds must be non-empty")
    result = VarianceResult(
        dataset=config.dataset, epsilon=config.resolved_epsilon
    )
    result.seeds = [int(s) for s in seeds]
    for method in methods:
        result.runs[method] = {
            c: [] for c in ("original", "fgsm", "bim10", "bim30")
        }
    for seed in result.seeds:
        seeded = config.with_overrides(seed=seed)
        pool = ClassifierPool(seeded, verbose=verbose)
        suite = RobustnessEvaluator.paper_suite(
            pool.epsilon, batch_size=config.eval_batch_size
        )
        for method in methods:
            defense = pool.get(method)
            accuracy = suite.evaluate(
                defense.model, pool.test_x, pool.test_y
            )
            for column, value in accuracy.items():
                result.runs[method][column].append(float(value))
            if verbose:
                print(f"variance[{seed}] {method}: {accuracy}")
    return result
