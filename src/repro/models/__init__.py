"""Model zoo: classifier wrapper and architecture factories."""

from .classifier import FeatureClassifier
from .zoo import MODEL_BUILDERS, build_model, mnist_cnn, mnist_mlp, small_cnn

__all__ = [
    "FeatureClassifier",
    "mnist_cnn",
    "mnist_mlp",
    "small_cnn",
    "MODEL_BUILDERS",
    "build_model",
]
