"""Classifier wrapper separating feature extractor and classification head.

The split matters for ATDA (Song et al., 2018), which regularises the
*embedding* (penultimate representation) of clean vs adversarial examples;
``embed`` exposes exactly that representation.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, as_tensor, no_grad
from ..nn import Module

__all__ = ["FeatureClassifier"]


class FeatureClassifier(Module):
    """A classifier composed of a feature extractor and a linear head.

    Parameters
    ----------
    features:
        Module mapping input batches to ``(N, D)`` embeddings.
    head:
        Module mapping embeddings to ``(N, num_classes)`` logits.
    num_classes:
        Number of output classes (kept for validation/reporting).
    """

    def __init__(
        self, features: Module, head: Module, num_classes: int
    ) -> None:
        super().__init__()
        if num_classes <= 1:
            raise ValueError(
                f"num_classes must be at least 2, got {num_classes}"
            )
        self.features = features
        self.head = head
        self.num_classes = num_classes

    def embed(self, x) -> Tensor:
        """Penultimate-layer embedding of a batch."""
        return self.features(as_tensor(x))

    def forward(self, x) -> Tensor:
        """Raw class logits of a batch."""
        return self.head(self.embed(x))

    def predict(self, x) -> np.ndarray:
        """Hard class predictions, computed without building a graph."""
        with no_grad():
            logits = self.forward(as_tensor(x))
        return np.argmax(logits.data, axis=1)

    def predict_proba(self, x) -> np.ndarray:
        """Softmax class probabilities, computed without a graph."""
        with no_grad():
            logits = self.forward(as_tensor(x)).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
