"""Model factories used across experiments.

All factories take a ``seed`` so that the paper's protocol — "train four
different NN classifiers with the same structure and hyper-parameter
setting" — is reproducible: same seed, same initial weights.
"""

from __future__ import annotations

from ..nn import (
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    MaxPool2d,
    ReLU,
    Sequential,
)
from ..utils.rng import ensure_rng, spawn_rngs
from .classifier import FeatureClassifier

__all__ = ["mnist_cnn", "mnist_mlp", "small_cnn", "MODEL_BUILDERS", "build_model"]


def mnist_cnn(
    num_classes: int = 10,
    in_channels: int = 1,
    image_size: int = 28,
    seed: int = 0,
) -> FeatureClassifier:
    """Small ConvNet matching the depth class of the paper's MNIST nets.

    conv3x3(16) - ReLU - maxpool2 - conv3x3(32) - ReLU - maxpool2 -
    flatten - dense(128) - ReLU - dense(num_classes)
    """
    rngs = spawn_rngs(ensure_rng(seed), 4)
    pooled = image_size // 4
    features = Sequential(
        Conv2d(in_channels, 16, kernel_size=3, padding=1, rng=rngs[0]),
        ReLU(),
        MaxPool2d(2),
        Conv2d(16, 32, kernel_size=3, padding=1, rng=rngs[1]),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense(32 * pooled * pooled, 128, rng=rngs[2]),
        ReLU(),
    )
    head = Dense(128, num_classes, rng=rngs[3])
    return FeatureClassifier(features, head, num_classes)


def mnist_mlp(
    num_classes: int = 10,
    in_channels: int = 1,
    image_size: int = 28,
    seed: int = 0,
    hidden: int = 256,
    dropout: float = 0.0,
) -> FeatureClassifier:
    """MLP baseline: flatten - dense(hidden) - ReLU - dense(hidden/2) - ReLU."""
    rngs = spawn_rngs(ensure_rng(seed), 4)
    input_dim = in_channels * image_size * image_size
    layers = [
        Flatten(),
        Dense(input_dim, hidden, rng=rngs[0]),
        ReLU(),
    ]
    if dropout > 0:
        layers.append(Dropout(dropout, rng=rngs[3]))
    layers.extend([Dense(hidden, hidden // 2, rng=rngs[1]), ReLU()])
    features = Sequential(*layers)
    head = Dense(hidden // 2, num_classes, rng=rngs[2])
    return FeatureClassifier(features, head, num_classes)


def small_cnn(
    num_classes: int = 10,
    in_channels: int = 1,
    image_size: int = 28,
    seed: int = 0,
) -> FeatureClassifier:
    """Tiny ConvNet for fast tests: one conv block plus a small dense stack."""
    rngs = spawn_rngs(ensure_rng(seed), 3)
    pooled = image_size // 2
    features = Sequential(
        Conv2d(in_channels, 8, kernel_size=3, padding=1, rng=rngs[0]),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense(8 * pooled * pooled, 32, rng=rngs[1]),
        ReLU(),
    )
    head = Dense(32, num_classes, rng=rngs[2])
    return FeatureClassifier(features, head, num_classes)


MODEL_BUILDERS = {
    "mnist_cnn": mnist_cnn,
    "mnist_mlp": mnist_mlp,
    "small_cnn": small_cnn,
}


def build_model(name: str, **kwargs) -> FeatureClassifier:
    """Instantiate a model factory by name."""
    if name not in MODEL_BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; choose from {sorted(MODEL_BUILDERS)}"
        )
    return MODEL_BUILDERS[name](**kwargs)
