"""Neural-network library built on :mod:`repro.autograd`.

Provides the module system, layers, losses and initializers used to build
the classifiers that the paper trains and attacks.
"""

from . import init
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    LayerNorm,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Reshape,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)
from .losses import (
    CrossEntropyLoss,
    MSELoss,
    NLLLoss,
    cross_entropy,
    cross_entropy_reference,
    mse_loss,
    nll_loss,
    one_hot,
)
from .module import Module, Parameter

__all__ = [
    "Module",
    "Parameter",
    "init",
    # layers
    "Dense",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "Flatten",
    "Reshape",
    "Sequential",
    # losses
    "cross_entropy",
    "cross_entropy_reference",
    "nll_loss",
    "mse_loss",
    "one_hot",
    "CrossEntropyLoss",
    "NLLLoss",
    "MSELoss",
]
