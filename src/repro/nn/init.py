"""Weight-initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is deterministic given a seed.  Arrays are emitted in the
active precision policy's compute dtype (:mod:`repro.runtime`); sampling
itself always happens in float64 so that a given seed produces the same
weights (up to rounding) at every precision.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..runtime import compute_dtype
from ..utils.rng import RngLike, ensure_rng

__all__ = [
    "zeros",
    "ones",
    "uniform",
    "normal",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "kaiming_normal",
    "compute_fans",
]


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for dense or convolutional weights.

    Dense weights are ``(in, out)``; conv weights are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def zeros(shape) -> np.ndarray:
    """All-zeros array of ``shape`` in the policy compute dtype."""
    return np.zeros(shape, dtype=compute_dtype())


def ones(shape) -> np.ndarray:
    """All-ones array of ``shape`` in the policy compute dtype."""
    return np.ones(shape, dtype=compute_dtype())


def uniform(shape, low: float, high: float, rng: RngLike = None) -> np.ndarray:
    """Uniform samples in ``[low, high)`` in the policy compute dtype."""
    samples = ensure_rng(rng).uniform(low, high, size=shape)
    return samples.astype(compute_dtype(), copy=False)


def normal(shape, mean: float = 0.0, std: float = 1.0, rng: RngLike = None) -> np.ndarray:
    """Gaussian samples with the given mean/std in the policy compute dtype."""
    samples = ensure_rng(rng).normal(mean, std, size=shape)
    return samples.astype(compute_dtype(), copy=False)


def xavier_uniform(shape, gain: float = 1.0, rng: RngLike = None) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = compute_fans(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, -bound, bound, rng=rng)


def xavier_normal(shape, gain: float = 1.0, rng: RngLike = None) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = compute_fans(tuple(shape))
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return normal(shape, 0.0, std, rng=rng)


def kaiming_uniform(shape, rng: RngLike = None) -> np.ndarray:
    """He uniform, appropriate for ReLU networks."""
    fan_in, _fan_out = compute_fans(tuple(shape))
    bound = np.sqrt(6.0 / fan_in)
    return uniform(shape, -bound, bound, rng=rng)


def kaiming_normal(shape, rng: RngLike = None) -> np.ndarray:
    """He normal, appropriate for ReLU networks."""
    fan_in, _fan_out = compute_fans(tuple(shape))
    std = np.sqrt(2.0 / fan_in)
    return normal(shape, 0.0, std, rng=rng)
