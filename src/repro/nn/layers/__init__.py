"""Neural-network layers."""

from .activations import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .container import Sequential
from .conv import Conv2d
from .dense import Dense
from .dropout import Dropout
from .layernorm import LayerNorm
from .norm import BatchNorm1d, BatchNorm2d
from .pooling import AvgPool2d, MaxPool2d
from .shape import Flatten, Reshape

__all__ = [
    "Dense",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "Flatten",
    "Reshape",
    "Sequential",
]
