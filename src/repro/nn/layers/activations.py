"""Activation layers (stateless wrappers over the functional ops)."""

from __future__ import annotations

from ...autograd import Tensor, leaky_relu, relu, sigmoid, softmax, tanh
from ..module import Module

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax"]


class ReLU(Module):
    """Rectified linear unit ``max(x, 0)``."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        return relu(x)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        """Apply the activation to ``x``."""
        return leaky_relu(x, negative_slope=self.negative_slope)

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply the activation to ``x``."""
        return sigmoid(x)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply the activation to ``x``."""
        return tanh(x)


class Softmax(Module):
    """Softmax along a configurable axis (default: class axis)."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        """Apply the activation to ``x``."""
        return softmax(x, axis=self.axis)

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return f"axis={self.axis}"
