"""Container modules."""

from __future__ import annotations

from typing import Iterator, List

from ...autograd import Tensor
from ..module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Chain of modules applied in order.

    Children are registered under their integer index so that parameter
    names look like ``0.weight``, ``2.bias`` — stable across runs as long as
    the architecture is unchanged.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "Sequential":
        """Append a module, registering it under its index."""
        if not isinstance(module, Module):
            raise TypeError(
                f"Sequential children must be Module, got {type(module)!r}"
            )
        index = len(self._layers)
        self._layers.append(module)
        self._modules[str(index)] = module
        return self

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]
