"""2-D convolution layer (NCHW layout)."""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor, conv2d
from ...utils.rng import RngLike, ensure_rng
from .. import init
from ..module import Module, Parameter

__all__ = ["Conv2d"]


class Conv2d(Module):
    """2-D cross-correlation with learnable kernel and optional bias.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel side length.
    stride, padding:
        Standard convolution hyper-parameters (symmetric zero padding).
    bias:
        Whether to learn a per-output-channel bias.
    rng:
        Seed or generator for He-uniform weight initialization.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        for name, value in (
            ("in_channels", in_channels),
            ("out_channels", out_channels),
            ("kernel_size", kernel_size),
            ("stride", stride),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        generator = ensure_rng(rng)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng=generator))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected NCHW input with {self.in_channels} "
                f"channels, got shape {x.shape}"
            )
        return conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
        )

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return (
            f"in_channels={self.in_channels}, "
            f"out_channels={self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None}"
        )
