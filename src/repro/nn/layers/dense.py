"""Fully connected (dense/linear) layer."""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor
from ...utils.rng import RngLike, ensure_rng
from .. import init
from ..module import Module, Parameter

__all__ = ["Dense"]


class Dense(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to learn an additive bias.
    weight_init:
        One of ``"kaiming_uniform"`` (default; suits the ReLU nets used in
        the paper), ``"xavier_uniform"``, ``"xavier_normal"``.
    rng:
        Seed or generator used for initialization.
    """

    _INITS = {
        "kaiming_uniform": init.kaiming_uniform,
        "kaiming_normal": init.kaiming_normal,
        "xavier_uniform": init.xavier_uniform,
        "xavier_normal": init.xavier_normal,
    }

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: str = "kaiming_uniform",
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                "in_features and out_features must be positive, got "
                f"{in_features} and {out_features}"
            )
        if weight_init not in self._INITS:
            raise ValueError(
                f"unknown weight_init {weight_init!r}; "
                f"choose from {sorted(self._INITS)}"
            )
        self.in_features = in_features
        self.out_features = out_features
        generator = ensure_rng(rng)
        self.weight = Parameter(
            self._INITS[weight_init]((in_features, out_features), rng=generator)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Dense expected last dim {self.in_features}, "
                f"got input shape {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return (
            f"in_features={self.in_features}, "
            f"out_features={self.out_features}, "
            f"bias={self.bias is not None}"
        )
