"""Inverted dropout layer."""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor, dropout_mask
from ...runtime import compute_dtype
from ...utils.rng import RngLike, ensure_rng
from ...utils.validation import check_probability
from ..module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: active in training mode, identity in eval mode.

    During training each element is zeroed with probability ``rate`` and the
    survivors are scaled by ``1 / (1 - rate)`` so that expectations match
    between train and eval.
    """

    def __init__(self, rate: float = 0.5, rng: RngLike = None) -> None:
        super().__init__()
        check_probability("rate", rate)
        self.rate = rate
        self._rng = ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (
            self._rng.random(x.shape) < keep
        ).astype(x.dtype if np.issubdtype(x.dtype, np.floating) else compute_dtype())
        mask /= keep
        return dropout_mask(x, mask)

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return f"rate={self.rate}"
