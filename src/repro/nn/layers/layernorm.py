"""Layer normalization (Ba et al., 2016).

Normalises over the feature dimensions of each example independently —
batch-size agnostic, so it behaves identically in train and eval mode
(useful for the small-batch adversarial loops where batch-norm statistics
are noisy).
"""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor
from ..module import Module, Parameter

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Normalise the trailing ``len(normalized_shape)`` dimensions.

    Parameters
    ----------
    normalized_shape:
        Shape of the normalised suffix (an int is treated as a 1-tuple).
    eps:
        Variance floor.
    affine:
        Learn per-element gain/bias of shape ``normalized_shape``.
    """

    def __init__(
        self, normalized_shape, eps: float = 1e-5, affine: bool = True
    ) -> None:
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(int(s) for s in normalized_shape)
        if any(s <= 0 for s in self.normalized_shape):
            raise ValueError(
                f"normalized_shape must be positive, got {normalized_shape}"
            )
        self.eps = eps
        self.affine = affine
        if affine:
            self.gamma = Parameter(np.ones(self.normalized_shape))
            self.beta = Parameter(np.zeros(self.normalized_shape))
        else:
            self.gamma = None
            self.beta = None

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        suffix = x.shape[x.ndim - len(self.normalized_shape):]
        if suffix != self.normalized_shape:
            raise ValueError(
                f"LayerNorm expected trailing shape {self.normalized_shape},"
                f" got input shape {x.shape}"
            )
        axes = tuple(
            range(x.ndim - len(self.normalized_shape), x.ndim)
        )
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        normalized = (x - mean) / (var + self.eps).sqrt()
        if self.affine:
            normalized = normalized * self.gamma + self.beta
        return normalized

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return (
            f"normalized_shape={self.normalized_shape}, eps={self.eps}, "
            f"affine={self.affine}"
        )
