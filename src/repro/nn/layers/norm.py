"""Batch normalization layers.

Running statistics are kept as registered buffers (persisted in state
dicts); normalization statistics come from the batch in training mode and
from the running estimates in eval mode.
"""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor
from ...autograd.engine import active_tracer
from ...runtime import compute_dtype
from ..module import Module, Parameter

__all__ = ["BatchNorm1d", "BatchNorm2d"]


class _BatchNorm(Module):
    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        affine: bool = True,
    ) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(
                f"num_features must be positive, got {num_features}"
            )
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must lie in (0, 1], got {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.affine = affine
        if affine:
            self.gamma = Parameter(np.ones(num_features))
            self.beta = Parameter(np.zeros(num_features))
        else:
            self.gamma = None
            self.beta = None
        self.register_buffer(
            "running_mean", np.zeros(num_features, dtype=compute_dtype())
        )
        self.register_buffer(
            "running_var", np.ones(num_features, dtype=compute_dtype())
        )

    def _reduction_axes(self, x: Tensor) -> tuple:
        raise NotImplementedError

    def _param_shape(self, x: Tensor) -> tuple:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        tracer = active_tracer()
        if tracer is not None:
            # Running statistics are read and updated outside the autograd
            # graph: a replayed tape would freeze them at their trace-time
            # values (eval) or skip the update entirely (train).
            tracer.poison(
                "batch normalization keeps running statistics outside the "
                "graph and cannot be replayed"
            )
        axes = self._reduction_axes(x)
        shape = self._param_shape(x)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            # Update running stats outside the graph.
            m = self.momentum
            self._update_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mean.data.reshape(-1),
            )
            self._update_buffer(
                "running_var",
                (1 - m) * self.running_var + m * var.data.reshape(-1),
            )
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        normalized = (x - mean) / (var + self.eps).sqrt()
        if self.affine:
            gamma = self.gamma.reshape(shape)
            beta = self.beta.reshape(shape)
            normalized = normalized * gamma + beta
        return normalized

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return (
            f"num_features={self.num_features}, momentum={self.momentum}, "
            f"eps={self.eps}, affine={self.affine}"
        )


class BatchNorm1d(_BatchNorm):
    """Batch norm over ``(N, C)`` feature matrices."""

    def _reduction_axes(self, x: Tensor) -> tuple:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected (N, {self.num_features}), "
                f"got shape {x.shape}"
            )
        return (0,)

    def _param_shape(self, x: Tensor) -> tuple:
        return (1, self.num_features)


class BatchNorm2d(_BatchNorm):
    """Batch norm over ``(N, C, H, W)`` image batches (per-channel)."""

    def _reduction_axes(self, x: Tensor) -> tuple:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expected (N, {self.num_features}, H, W), "
                f"got shape {x.shape}"
            )
        return (0, 2, 3)

    def _param_shape(self, x: Tensor) -> tuple:
        return (1, self.num_features, 1, 1)
