"""Spatial pooling layers."""

from __future__ import annotations

from ...autograd import Tensor, avg_pool2d, max_pool2d
from ..module import Module

__all__ = ["MaxPool2d", "AvgPool2d"]


class _Pool2d(Module):
    def __init__(self, kernel_size: int = 2, stride=None, padding: int = 0) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return (
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}"
        )


class MaxPool2d(_Pool2d):
    """Max pooling over square windows of an NCHW batch."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        return max_pool2d(
            x, kernel_size=self.kernel_size, stride=self.stride,
            padding=self.padding,
        )


class AvgPool2d(_Pool2d):
    """Average pooling over square windows of an NCHW batch."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        return avg_pool2d(
            x, kernel_size=self.kernel_size, stride=self.stride,
            padding=self.padding,
        )
