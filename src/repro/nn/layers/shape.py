"""Shape-adapting layers."""

from __future__ import annotations

from ...autograd import Tensor, flatten, reshape
from ..module import Module

__all__ = ["Flatten", "Reshape"]


class Flatten(Module):
    """Collapse all dimensions after ``start_axis`` (default: keep batch)."""

    def __init__(self, start_axis: int = 1) -> None:
        super().__init__()
        self.start_axis = start_axis

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        return flatten(x, start_axis=self.start_axis)

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return f"start_axis={self.start_axis}"


class Reshape(Module):
    """Reshape trailing dimensions to a fixed target (batch preserved)."""

    def __init__(self, *shape: int) -> None:
        super().__init__()
        self.shape = tuple(shape)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer to ``x``."""
        return reshape(x, (x.shape[0],) + self.shape)

    def extra_repr(self) -> str:
        """Hyper-parameter summary for repr()."""
        return f"shape={self.shape}"
