"""Loss functions.

All classification losses operate on raw logits and integer class labels;
softmax/log-softmax is folded into the loss for numerical stability (the
standard practice that also matters for attack gradients: FGSM/BIM
differentiate exactly this loss w.r.t. the input).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, as_tensor, log_softmax, softmax_cross_entropy
from ..runtime import compute_dtype, hotpaths_enabled
from ..utils.validation import check_in_unit_interval
from .module import Module

__all__ = [
    "cross_entropy",
    "cross_entropy_reference",
    "nll_loss",
    "mse_loss",
    "CrossEntropyLoss",
    "NLLLoss",
    "MSELoss",
    "one_hot",
]


def one_hot(labels, num_classes: int) -> np.ndarray:
    """Return a float one-hot encoding of integer ``labels``."""
    labels = np.asarray(
        labels.data if isinstance(labels, Tensor) else labels
    ).astype(np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range for {num_classes} classes: "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=compute_dtype())
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def _reduce(value: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return value.mean()
    if reduction == "sum":
        return value.sum()
    if reduction == "none":
        return value
    raise ValueError(
        f"unknown reduction {reduction!r}; choose 'mean', 'sum' or 'none'"
    )


def cross_entropy(
    logits: Tensor,
    labels,
    reduction: str = "mean",
    label_smoothing: float = 0.0,
) -> Tensor:
    """Softmax cross-entropy between ``logits`` and integer ``labels``.

    Parameters
    ----------
    logits:
        ``(N, C)`` raw scores.
    labels:
        ``(N,)`` integer class indices.
    reduction:
        ``"mean"`` (default), ``"sum"`` or ``"none"``.
    label_smoothing:
        Mixes the one-hot target with the uniform distribution; ``0``
        recovers plain cross-entropy.

    Notes
    -----
    On the hot path (the default) this dispatches to the fused
    :func:`repro.autograd.softmax_cross_entropy` node — one graph node with
    a closed-form ``(softmax - target) * scale`` backward — which every
    trainer and attack therefore inherits.  With hot paths disabled
    (``runtime.hotpaths(False)``) the composed
    :func:`cross_entropy_reference` formulation is used instead.
    """
    if hotpaths_enabled():
        return softmax_cross_entropy(
            logits,
            labels,
            reduction=reduction,
            label_smoothing=label_smoothing,
        )
    return cross_entropy_reference(
        logits, labels, reduction=reduction, label_smoothing=label_smoothing
    )


def cross_entropy_reference(
    logits: Tensor,
    labels,
    reduction: str = "mean",
    label_smoothing: float = 0.0,
) -> Tensor:
    """Composed ``log_softmax``-based cross-entropy.

    Ground truth for the fused kernel's parity/gradcheck tests and the
    pre-overhaul baseline timed by the benchmark speedup gate; same
    signature and semantics as :func:`cross_entropy`.
    """
    logits = as_tensor(logits)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
    check_in_unit_interval("label_smoothing", label_smoothing)
    num_classes = logits.shape[1]
    target = one_hot(labels, num_classes)
    if label_smoothing > 0.0:
        target = (
            (1.0 - label_smoothing) * target
            + label_smoothing / num_classes
        )
    log_probs = log_softmax(logits, axis=-1)
    per_example = -(log_probs * Tensor(target)).sum(axis=-1)
    return _reduce(per_example, reduction)


def nll_loss(log_probs: Tensor, labels, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood given precomputed log-probabilities."""
    log_probs = as_tensor(log_probs)
    target = one_hot(labels, log_probs.shape[1])
    per_example = -(log_probs * Tensor(target)).sum(axis=-1)
    return _reduce(per_example, reduction)


def mse_loss(prediction: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: prediction {prediction.shape} vs "
            f"target {target.shape}"
        )
    diff = prediction - target
    return _reduce(diff * diff, reduction)


class CrossEntropyLoss(Module):
    """Module wrapper around :func:`cross_entropy`."""

    def __init__(
        self, reduction: str = "mean", label_smoothing: float = 0.0
    ) -> None:
        super().__init__()
        self.reduction = reduction
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, labels) -> Tensor:
        """Compute the loss (see the matching functional)."""
        return cross_entropy(
            logits,
            labels,
            reduction=self.reduction,
            label_smoothing=self.label_smoothing,
        )


class NLLLoss(Module):
    """Module wrapper around :func:`nll_loss`."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, log_probs: Tensor, labels) -> Tensor:
        """Compute the loss (see the matching functional)."""
        return nll_loss(log_probs, labels, reduction=self.reduction)


class MSELoss(Module):
    """Module wrapper around :func:`mse_loss`."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, prediction: Tensor, target) -> Tensor:
        """Compute the loss (see the matching functional)."""
        return mse_loss(prediction, target, reduction=self.reduction)
