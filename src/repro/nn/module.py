"""Module/Parameter system: the backbone of the NN library.

A :class:`Module` owns :class:`Parameter` tensors and child modules, found
automatically through attribute assignment (the familiar torch-style
pattern).  Modules provide:

* recursive parameter iteration (for optimizers),
* train/eval mode switching (dropout, batch norm),
* state-dict export/import (checkpointing),
* gradient zeroing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from ..autograd import Tensor
from ..runtime import compute_dtype

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module.

    Created in the active precision policy's compute dtype; use
    :meth:`Module.to_dtype` to cast an existing module after construction
    (e.g. after loading a float64 checkpoint into a float32 session).
    """

    def __init__(self, data) -> None:
        super().__init__(
            np.asarray(data, dtype=compute_dtype()), requires_grad=True
        )

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, dtype={self.dtype})"


class Module:
    """Base class for all neural-network building blocks."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # attribute-based registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:
        """Compute the module's output; must be overridden."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement forward()"
        )

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # parameter/module iteration
    # ------------------------------------------------------------------
    def named_parameters(
        self, prefix: str = ""
    ) -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        for _name, param in self.named_parameters():
            yield param

    def named_modules(
        self, prefix: str = ""
    ) -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` including ``self`` first."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        """Yield direct child modules."""
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------
    # training mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Recursively set training mode (affects dropout, batch norm)."""
        object.__setattr__(self, "training", bool(mode))
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------
    # precision
    # ------------------------------------------------------------------
    def to_dtype(self, dtype) -> "Module":
        """Cast all parameters, gradients and float buffers to ``dtype``.

        In-place (parameter identity is preserved, so optimizers holding
        references keep working; their state buffers re-sync on the next
        ``step``).  Integer/bool buffers are left untouched.  Returns
        ``self`` for chaining — the cast-after-load path::

            model.load_state_dict(checkpoint)   # float64 checkpoint
            model.to_dtype("float32")
        """
        dtype = np.dtype(dtype)
        if not np.issubdtype(dtype, np.floating):
            raise TypeError(
                f"to_dtype requires a floating dtype, got {dtype}"
            )
        for param in self.parameters():
            param.data = param.data.astype(dtype, copy=False)
            if param.grad is not None:
                param.grad = param.grad.astype(dtype, copy=False)
        for _prefix, module in self.named_modules():
            buffers = getattr(module, "_buffers", None)
            if not buffers:
                continue
            for buf_name, buf in list(buffers.items()):
                if np.issubdtype(np.asarray(buf).dtype, np.floating):
                    module._update_buffer(
                        buf_name, np.asarray(buf).astype(dtype, copy=False)
                    )
        return self

    # ------------------------------------------------------------------
    # gradients
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Export parameters (and buffers) as a flat name→array mapping."""
        state = OrderedDict(
            (name, param.data.copy())
            for name, param in self.named_parameters()
        )
        for prefix, module in self.named_modules():
            for buf_name, buf in getattr(module, "_buffers", {}).items():
                key = f"{prefix}.{buf_name}" if prefix else buf_name
                state[key] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters exported by :meth:`state_dict`.

        Raises ``KeyError`` on missing entries and ``ValueError`` on shape
        mismatch — silent partial loads hide bugs.
        """
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"state dict is missing parameter {name!r}")
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.shape}, got {value.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=True)
        for prefix, module in self.named_modules():
            buffers = getattr(module, "_buffers", None)
            if not buffers:
                continue
            for buf_name in list(buffers):
                key = f"{prefix}.{buf_name}" if prefix else buf_name
                if key in state:
                    module._update_buffer(
                        buf_name, np.asarray(state[key]).copy()
                    )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable persistent state (e.g. BN running stats)."""
        if not hasattr(self, "_buffers"):
            object.__setattr__(self, "_buffers", OrderedDict())
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace a registered buffer's value."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def extra_repr(self) -> str:
        """Extra ``repr`` details; override to describe hyper-parameters."""
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        if len(lines) == 1:
            return lines[0] + ")"
        lines.append(")")
        return "\n".join(lines)
