"""Optimizers and learning-rate schedulers."""

from .adam import Adam, AdamW, RMSprop
from .optimizer import Optimizer
from .schedulers import (
    CosineAnnealingLR,
    ExponentialLR,
    LRScheduler,
    StepLR,
    WarmupLR,
)
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSprop",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "WarmupLR",
]
