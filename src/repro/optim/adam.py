"""Adam-family optimizers."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam", "AdamW", "RMSprop"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moment estimates."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def _apply_weight_decay(self, param: Parameter, grad: np.ndarray):
        """Classic (coupled) L2: decay added to the gradient."""
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def _decoupled_decay(self, param: Parameter) -> None:
        """Hook for AdamW; no-op in plain Adam."""

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for index, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            grad = self._apply_weight_decay(param, grad)
            m = self._state_buffer(self._m, index, param)
            v = self._state_buffer(self._v, index, param)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            self._decoupled_decay(param)
            self._assign(
                param,
                param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps),
            )


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _apply_weight_decay(self, param: Parameter, grad: np.ndarray):
        return grad  # decay handled decoupled in _decoupled_decay

    def _decoupled_decay(self, param: Parameter) -> None:
        if self.weight_decay:
            param.data = param.data - self.lr * self.weight_decay * param.data


class RMSprop(Optimizer):
    """RMSprop with optional momentum."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must lie in [0, 1), got {alpha}")
        self.alpha = alpha
        self.eps = eps
        self.momentum = momentum
        self._avg = [np.zeros_like(p.data) for p in self.params]
        self._buf = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for index, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            avg = self._state_buffer(self._avg, index, param)
            avg *= self.alpha
            avg += (1.0 - self.alpha) * grad * grad
            update = grad / (np.sqrt(avg) + self.eps)
            if self.momentum:
                buf = self._state_buffer(self._buf, index, param)
                buf *= self.momentum
                buf += update
                update = buf
            self._assign(param, param.data - self.lr * update)
