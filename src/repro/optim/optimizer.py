"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: holds the parameter list and the update contract.

    Subclasses implement :meth:`step`, reading ``param.grad`` and updating
    ``param.data`` in place.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError

    def _grads(self):
        """Yield ``(param, grad)`` for parameters that received gradients."""
        for param in self.params:
            if param.grad is not None:
                yield param, param.grad

    @staticmethod
    def _state_buffer(store, index, param):
        """Return ``store[index]``, re-synced to the parameter's dtype.

        Keeps moment/velocity buffers in agreement with the parameter after
        a ``Module.to_dtype`` cast performed post-construction.
        """
        buf = store[index]
        if buf.dtype != param.data.dtype:
            buf = store[index] = buf.astype(param.data.dtype)
        return buf

    @staticmethod
    def _assign(param, new_data) -> None:
        """Write an update back without changing the parameter's dtype.

        Gradients may accumulate in a wider dtype than the parameters
        (``Policy.accum_dtype``); the cast here stops that width from
        leaking into the weights.
        """
        param.data = np.asarray(new_data).astype(param.data.dtype, copy=False)
