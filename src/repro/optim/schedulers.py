"""Learning-rate schedulers.

Schedulers mutate ``optimizer.lr`` in place; call :meth:`step` once per
epoch (after the epoch completes).
"""

from __future__ import annotations

import math

from .optimizer import Optimizer

__all__ = [
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "WarmupLR",
]


class LRScheduler:
    """Base scheduler tracking epoch count and the initial learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        """Learning rate for the current epoch counter."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        new_lr = self.get_lr()
        self.optimizer.lr = new_lr
        return new_lr


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(
        self, optimizer: Optimizer, step_size: int, gamma: float = 0.1
    ) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        """Learning rate for the current epoch counter."""
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class ExponentialLR(LRScheduler):
    """Multiply the LR by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        """Learning rate for the current epoch counter."""
        return self.base_lr * self.gamma ** self.epoch


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(
        self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0
    ) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError(
                f"total_epochs must be positive, got {total_epochs}"
            )
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        """Learning rate for the current epoch counter."""
        progress = min(self.epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLR(LRScheduler):
    """Linear warmup to the base LR, then delegate to an inner scheduler."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_epochs: int,
        after: LRScheduler = None,
    ) -> None:
        super().__init__(optimizer)
        if warmup_epochs <= 0:
            raise ValueError(
                f"warmup_epochs must be positive, got {warmup_epochs}"
            )
        self.warmup_epochs = warmup_epochs
        self.after = after

    def get_lr(self) -> float:
        """Learning rate for the current epoch counter."""
        if self.epoch <= self.warmup_epochs:
            return self.base_lr * self.epoch / self.warmup_epochs
        if self.after is not None:
            self.after.epoch = self.epoch - self.warmup_epochs
            return self.after.get_lr()
        return self.base_lr
