"""Stochastic gradient descent with momentum, Nesterov and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD update ``p <- p - lr * (g + wd * p)`` with optional momentum.

    Parameters
    ----------
    params:
        Parameters to optimize.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient; ``0`` disables the velocity buffer.
    nesterov:
        Use Nesterov lookahead (requires ``momentum > 0``).
    weight_decay:
        L2 penalty coefficient applied as decoupled gradient term.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        if weight_decay < 0:
            raise ValueError(
                f"weight_decay must be non-negative, got {weight_decay}"
            )
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one SGD update from the accumulated gradients."""
        for index, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._state_buffer(self._velocity, index, param)
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            self._assign(param, param.data - self.lr * grad)
