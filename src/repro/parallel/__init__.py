"""repro.parallel — multi-process data-parallel execution engine.

Three layers:

* :mod:`repro.parallel.shm` — shared-memory numpy buffers created by the
  parent and inherited by forked workers.
* :mod:`repro.parallel.pool` — :class:`WorkerPool`, persistent forked
  workers with pipe control, crash detection and restart.
* :mod:`repro.parallel.trainer` — :class:`DataParallelTrainer`, sharding
  every batch across workers by dataset index, all-reducing gradients in
  deterministic worker order; plus :func:`parallel_map`
  (:mod:`repro.parallel.grid`) for one-config-per-worker experiment sweeps.

See ``docs/parallel.md`` for the architecture, the shared-memory layout
and the determinism guarantees (bit-for-bit at one worker, summation-order
bounded at N).
"""

from .grid import parallel_map
from .pool import WorkerCrash, WorkerError, WorkerPool, resolve_workers
from .shm import SharedArray
from .trainer import DataParallelTrainer

__all__ = [
    "DataParallelTrainer",
    "SharedArray",
    "WorkerCrash",
    "WorkerError",
    "WorkerPool",
    "parallel_map",
    "resolve_workers",
]
