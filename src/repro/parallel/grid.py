"""Parallel grid execution: one configuration per worker.

The experiment sweeps (figure1 defense curves, ablation knob grids) are
embarrassingly parallel: each grid cell trains and evaluates an independent
classifier.  :func:`parallel_map` fans a function over the grid using a
:class:`~repro.parallel.pool.WorkerPool` — the function and any state it
closes over (a :class:`~repro.experiments.runner.ClassifierPool`, datasets)
are inherited by the forked workers for free, and only the per-item inputs
and results cross the pipes (so both must be picklable: pass knob values
in, return accuracies/curves out, not live models).

Results come back in input order and are computed exactly as the serial
loop would compute them (same seeds, same kernels — just a different
process), so a parallel sweep reproduces the serial sweep's numbers.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from .pool import WorkerCrash, WorkerPool, resolve_workers

__all__ = ["parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    num_workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[R]:
    """Apply ``fn`` to every item across forked workers; preserve order.

    Parameters
    ----------
    fn:
        Callable executed in the worker processes.  Inherited through
        fork, so closures over parent state are fine; its return values
        travel back over a pipe and must be picklable.
    items:
        Work items, dispatched round-robin ahead of completion so workers
        stay busy.  Items are pickled into the control messages.
    num_workers:
        Worker count; ``None``/``0`` resolves ``REPRO_WORKERS`` (default 1).
        With one worker (or one item) the map degrades to a plain serial
        loop in the calling process.
    timeout:
        Optional per-item reply timeout in seconds.

    A crashed worker aborts the map with :class:`WorkerCrash` — grid cells
    are expensive and not idempotent-cheap, so the caller decides whether
    to re-run.
    """
    items = list(items)
    num_workers = resolve_workers(num_workers)
    if num_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    num_workers = min(num_workers, len(items))

    def handler(worker_id: int, message):
        _index, item = message
        return fn(item)

    pool = WorkerPool(num_workers, handler, name="repro-grid")
    results: List[R] = [None] * len(items)  # type: ignore[list-item]
    try:
        pool.start()
        pending = list(enumerate(items))
        in_flight = {}  # worker_id -> item index
        cursor = 0
        for worker_id in range(num_workers):
            index, item = pending[cursor]
            pool.send(worker_id, (index, item))
            in_flight[worker_id] = index
            cursor += 1
        while in_flight:
            # Round-robin poll the busy workers for the next finished cell.
            finished = None
            while finished is None:
                for worker_id in list(in_flight):
                    worker = pool._workers[worker_id]
                    if worker.conn.poll(0.02) or not worker.process.is_alive():
                        finished = worker_id
                        break
            try:
                payload = pool.recv(finished, timeout=timeout)
            except WorkerCrash as crash:
                index = in_flight[finished]
                raise WorkerCrash(
                    finished,
                    f"while computing grid item {index} ({items[index]!r})",
                ) from crash
            results[in_flight.pop(finished)] = payload
            if cursor < len(pending):
                index, item = pending[cursor]
                pool.send(finished, (index, item))
                in_flight[finished] = index
                cursor += 1
    finally:
        pool.shutdown()
    return results
