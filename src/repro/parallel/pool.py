"""Persistent forked worker pool with pipe control and crash recovery.

:class:`WorkerPool` forks ``num_workers`` long-lived child processes, each
running a message loop around a ``handler(worker_id, message)`` callable.
Because the start method is **fork**, the handler and everything it closes
over (trainer replicas, shared-memory views, datasets) is inherited by the
child directly — nothing is pickled except the small control messages that
travel over each worker's pipe.

Crash recovery
--------------
A worker that dies (killed, segfaulted, ``os._exit``) is detected by the
parent while waiting for its reply: :meth:`recv` raises
:class:`WorkerCrash`.  The caller decides what to do; :meth:`restart`
re-forks a replacement from the parent's *current* state (the fork hooks
registered by :mod:`repro.runtime.workspace` and :mod:`repro.telemetry`
give it a fresh buffer pool and clean telemetry locks) and the caller
re-dispatches the lost work.  Restarts are counted on the pool and, when
telemetry is enabled, in the ``parallel.worker_restarts`` counter.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from typing import Any, Callable, List, Optional

from .. import telemetry as tel
from ..telemetry import trace as teltrace

__all__ = ["WorkerCrash", "WorkerError", "WorkerPool", "resolve_workers"]

_FORK = multiprocessing.get_context("fork")
_STOP = "__stop__"
_TRACED = "__traced__"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else ``REPRO_WORKERS``, else 1.

    ``None``/``0`` defer to the environment; anything below 1 after
    resolution raises.
    """
    if workers in (None, 0):
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(raw) if raw else 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


class WorkerCrash(RuntimeError):
    """A worker process died before replying."""

    def __init__(self, worker_id: int, detail: str = "") -> None:
        self.worker_id = worker_id
        note = f" ({detail})" if detail else ""
        super().__init__(f"worker {worker_id} died{note}")


class WorkerError(RuntimeError):
    """A worker's handler raised; carries the remote traceback."""

    def __init__(self, worker_id: int, remote_traceback: str) -> None:
        self.worker_id = worker_id
        self.remote_traceback = remote_traceback
        super().__init__(
            f"worker {worker_id} raised:\n{remote_traceback}"
        )


def _worker_main(handler: Callable[[int, Any], Any], worker_id: int, conn):
    """Child-process message loop: recv → handle → reply, until stopped."""
    # Fork hooks already gave this process an empty workspace pool, a clean
    # span stack and fresh telemetry locks; the loop below only has to
    # serve messages.
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message == _STOP:
            break
        # Traced envelope from WorkerPool.send: adopt the parent's trace
        # context (so spans this handler emits join the parent's trace)
        # and make sure this process has a spool file to emit them into.
        ctx = None
        if (
            isinstance(message, tuple)
            and len(message) == 4
            and message[0] == _TRACED
        ):
            _, raw_ctx, spool, message = message
            ctx = tel.TraceContext(*raw_ctx)
            if spool is not None:
                teltrace.ensure_spool(spool)
        try:
            with tel.trace_context(ctx):
                reply = handler(worker_id, message)
        except Exception:
            conn.send(("error", traceback.format_exc()))
        else:
            conn.send(("ok", reply))
    conn.close()


class _Worker:
    __slots__ = ("id", "process", "conn")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn


class WorkerPool:
    """``num_workers`` persistent fork workers driven over per-worker pipes.

    Parameters
    ----------
    num_workers:
        Number of child processes.
    handler:
        ``handler(worker_id, message) -> reply``, executed in the child.
        Inherited through fork — closures over parent state are fine.
    name:
        Process-name prefix (diagnostics).
    """

    def __init__(
        self,
        num_workers: int,
        handler: Callable[[int, Any], Any],
        name: str = "repro-worker",
    ) -> None:
        if num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self.num_workers = int(num_workers)
        self.handler = handler
        self.name = name
        self.restarts = 0
        self._workers: List[Optional[_Worker]] = [None] * self.num_workers
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> _Worker:
        parent_conn, child_conn = _FORK.Pipe()
        process = _FORK.Process(
            target=_worker_main,
            args=(self.handler, worker_id, child_conn),
            name=f"{self.name}-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(worker_id, process, parent_conn)

    def start(self) -> "WorkerPool":
        """Fork the workers (idempotent)."""
        if not self._started:
            for worker_id in range(self.num_workers):
                self._workers[worker_id] = self._spawn(worker_id)
            self._started = True
        return self

    @property
    def started(self) -> bool:
        """Whether the workers have been forked."""
        return self._started

    def restart(self, worker_id: int) -> None:
        """Replace a dead (or wedged) worker with a fresh fork of the parent."""
        worker = self._workers[worker_id]
        if worker is not None:
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=5)
            worker.conn.close()
        self._workers[worker_id] = self._spawn(worker_id)
        self.restarts += 1
        tel.counter("parallel.worker_restarts")
        tel.event("parallel.worker_restart", worker=worker_id)

    def kill(self, worker_id: int) -> None:
        """SIGKILL a worker (crash-recovery tests)."""
        worker = self._workers[worker_id]
        if worker is not None and worker.process.is_alive():
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.join(timeout=5)

    def shutdown(self) -> None:
        """Stop every worker and reap the processes (idempotent)."""
        if not self._started:
            return
        for worker in self._workers:
            if worker is None:
                continue
            try:
                if worker.process.is_alive():
                    worker.conn.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            if worker is None:
                continue
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5)
            worker.conn.close()
        self._workers = [None] * self.num_workers
        self._started = False

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, worker_id: int, message: Any) -> None:
        """Dispatch one message to a worker (non-blocking).

        When telemetry is enabled and the caller sits inside a traced
        span, the message travels in a ``(_TRACED, ctx, spool, payload)``
        envelope: the worker adopts the trace context for the duration of
        the handler call, so every span it emits carries the parent's
        ``trace_id`` and parents onto the dispatching span.  The capture's
        spool directory rides along so the worker knows where to emit.
        """
        if tel.enabled():
            ctx = tel.current_context()
            if ctx is not None:
                message = (
                    _TRACED, tuple(ctx), teltrace.spool_dir(), message
                )
        worker = self._workers[worker_id]
        try:
            worker.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrash(worker_id, str(exc)) from exc

    def recv(self, worker_id: int, timeout: Optional[float] = None) -> Any:
        """Await one reply; raises :class:`WorkerCrash` if the worker died.

        Liveness is polled alongside the pipe so a SIGKILLed worker is
        detected promptly even when other processes still hold duplicated
        pipe ends (which would defeat EOF-based detection).
        """
        worker = self._workers[worker_id]
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if worker.conn.poll(0.05):
                    reply = worker.conn.recv()
                    break
            except (EOFError, OSError) as exc:
                raise WorkerCrash(worker_id, str(exc)) from exc
            if not worker.process.is_alive():
                # Drain any reply flushed just before death.
                try:
                    if worker.conn.poll(0):
                        reply = worker.conn.recv()
                        break
                except (EOFError, OSError):
                    pass
                raise WorkerCrash(
                    worker_id, f"exitcode={worker.process.exitcode}"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"worker {worker_id} did not reply within {timeout}s"
                )
        status, payload = reply
        if status == "error":
            raise WorkerError(worker_id, payload)
        return payload

    def call(self, worker_id: int, message: Any,
             timeout: Optional[float] = None) -> Any:
        """``send`` + ``recv`` in one round trip."""
        self.send(worker_id, message)
        return self.recv(worker_id, timeout=timeout)

    def broadcast(self, message: Any) -> None:
        """Send the same message to every worker."""
        for worker_id in range(self.num_workers):
            self.send(worker_id, message)

    def gather(self, timeout: Optional[float] = None) -> List[Any]:
        """Collect one reply per worker, in worker order."""
        return [
            self.recv(worker_id, timeout=timeout)
            for worker_id in range(self.num_workers)
        ]
