"""Shared-memory numpy buffers for the data-parallel engine.

:class:`SharedArray` wraps one ``multiprocessing.shared_memory`` segment as
a numpy array.  The parent process creates every segment **before** forking
its workers, so the children inherit the mapping directly — no name lookup,
no attach handshake, and a restarted worker (re-forked from the live
parent) sees the current contents automatically.

Ownership contract
------------------
The creating (parent) process owns the segment: only it calls
:meth:`SharedArray.close` (which also unlinks the backing file).  Forked
children treat their inherited view as borrowed and simply exit; the
segment stays valid until the parent releases it.  A ``weakref.finalize``
in the owner makes cleanup robust to abandoned objects, so a leaked
trainer cannot leave segments behind in ``/dev/shm``.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional

import numpy as np

__all__ = ["SharedArray"]


class SharedArray:
    """A numpy array backed by a shared-memory segment owned by its creator.

    Parameters
    ----------
    shape, dtype:
        Layout of the array view.  The segment is sized exactly for it
        (minimum one byte, since zero-length segments are not portable).
    """

    __slots__ = ("shape", "dtype", "array", "_shm", "__weakref__")

    def __init__(self, shape, dtype) -> None:
        self.shape = tuple(int(dim) for dim in shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.array: Optional[np.ndarray] = np.ndarray(
            self.shape, dtype=self.dtype, buffer=self._shm.buf
        )
        self.array.fill(0)

    @property
    def nbytes(self) -> int:
        """Size of the array view in bytes."""
        return int(np.prod(self.shape)) * self.dtype.itemsize

    def close(self) -> None:
        """Release the segment (owner only); safe to call twice.

        Drops the array view first — the memoryview export must die before
        the mapping can be closed — then closes and unlinks the segment.
        """
        self.array = None
        try:
            self._shm.close()
        except BufferError:  # a caller still holds a view; leave mapped
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return (
            f"SharedArray(shape={self.shape}, dtype={self.dtype.name}, "
            f"name={self._shm.name!r})"
        )
