"""Multi-process data-parallel training over shared-memory buffers.

:class:`DataParallelTrainer` wraps any :class:`~repro.defenses.trainer.Trainer`
(vanilla, mixed/FGSM, epochwise, TRADES, ...) and distributes every batch
across ``N`` persistent forked workers:

1. the parent writes the batch (examples, labels, dataset indices) and the
   current parameters into shared memory and broadcasts a ``step`` message;
2. each worker takes the shard of examples it **owns by dataset index** —
   whole source shards (``(index // shard_size) % N``) when the loader
   streams a sharded source with at least one shard per worker, else the
   legacy ``index % N`` striping — runs adversarial-example generation plus
   forward/backward on its own trainer replica — with its own workspace
   pool and, when enabled, its own compiled tape — and writes its
   shard-weighted gradients into its private shared-memory slot;
3. the parent all-reduces the per-worker slots **in worker order** (so the
   summation order, and therefore the result, is deterministic for a given
   worker count), installs the reduced gradients on the wrapped model and
   runs the optimizer step.

Sharding by dataset index rather than batch position keeps stateful
defenses correct: the epochwise trainer's per-example carried state lives
in the worker that owns the example, and ownership never migrates between
epochs (both ownership rules are pure functions of the dataset index and
the worker count).  Whole-shard ownership additionally aligns each
worker's delta-store blocks with the loader's source shards, so a
streaming run touches each worker's carried blocks in long contiguous
runs instead of striding across all of them every batch.  With one worker
the computation is **bit-for-bit** equal
to the serial trainer (the whole batch lands on worker 0 and gradients are
copied, not re-associated); with more workers results differ from serial
only by floating-point summation order, which the determinism tests bound.

Models whose forward pass mutates shared state outside parameters (batch
norm running stats) or draws fresh randomness per step (dropout) fall
outside the equivalence guarantees: replicas update their own copies.

A worker that crashes mid-epoch is re-forked from the live parent and the
lost shard is re-dispatched, so the epoch always completes; the restart is
visible in ``parallel.worker_restarts``.
"""

from __future__ import annotations

import weakref
from typing import List, Optional

import numpy as np

from .. import telemetry as tel
from ..data.loader import Batch, DataLoader
from ..defenses.trainer import Trainer
from ..runtime import accum_dtype
from ..runtime.compiled import compiled_enabled
from .pool import WorkerCrash, WorkerPool, resolve_workers
from .shm import SharedArray

__all__ = ["DataParallelTrainer"]

# How many times one batch may be re-dispatched after worker crashes
# before the epoch is abandoned (a deterministic crasher would loop
# forever otherwise).
_MAX_RETRIES_PER_BATCH = 2


class _ParamLayout:
    """Flat offsets of a model's parameters inside one shared buffer."""

    __slots__ = ("params", "offsets", "sizes", "shapes", "total", "dtype")

    def __init__(self, params) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("model has no parameters")
        dtypes = {p.data.dtype for p in self.params}
        if len(dtypes) != 1:
            raise ValueError(
                "data-parallel training requires a single parameter dtype, "
                f"got {sorted(d.name for d in dtypes)}"
            )
        self.dtype = self.params[0].data.dtype
        self.offsets: List[int] = []
        self.sizes: List[int] = []
        self.shapes: List[tuple] = []
        offset = 0
        for param in self.params:
            self.offsets.append(offset)
            self.sizes.append(param.data.size)
            self.shapes.append(param.data.shape)
            offset += param.data.size
        self.total = offset

    def segments(self, flat: np.ndarray):
        """Yield ``(param_index, shaped_view)`` over one flat buffer."""
        for index, (offset, size, shape) in enumerate(
            zip(self.offsets, self.sizes, self.shapes)
        ):
            yield index, flat[offset:offset + size].reshape(shape)


class _WorkerContext:
    """Everything a worker needs, built in the parent and inherited via fork.

    After the fork, ``self.trainer`` refers to the *child's* copy of the
    wrapped trainer — a true replica whose model, attack loop and any
    carried state (e.g. the epochwise adversarial cache) belong to that
    worker alone.  Only the :class:`SharedArray` views are shared.
    """

    def __init__(self, trainer, layout, num_workers,
                 x_sh, y_sh, idx_sh, param_sh, grad_sh) -> None:
        self.trainer = trainer
        self.layout = layout
        self.num_workers = num_workers
        self.x_sh = x_sh
        self.y_sh = y_sh
        self.idx_sh = idx_sh
        self.param_sh = param_sh
        self.grad_sh = grad_sh

    # -- message dispatch (runs in the child) --------------------------
    def handle(self, worker_id: int, message):
        kind = message[0]
        if kind == "step":
            _, n, epoch, tel_on, owner_block = message
            tel.set_enabled(tel_on)
            return self._step(worker_id, n, epoch, owner_block)
        if kind == "epoch_start":
            _, epoch, tel_on = message
            tel.set_enabled(tel_on)
            self.trainer.epoch = epoch
            self.trainer.model.train()
            self.trainer.on_epoch_start(epoch)
            return None
        if kind == "epoch_end":
            _, epoch = message
            self.trainer.on_epoch_end(epoch)
            self.trainer.epoch = epoch + 1
            return None
        if kind == "sync":
            # Mid-epoch resynchronisation of a restarted worker: set the
            # clock without re-running epoch hooks (no spurious cache
            # resets half-way through an epoch).
            _, epoch, tel_on = message
            tel.set_enabled(tel_on)
            self.trainer.epoch = epoch
            self.trainer.model.train()
            return None
        if kind == "ping":
            return worker_id
        raise ValueError(f"unknown worker message {kind!r}")

    def _load_params(self) -> None:
        flat = self.param_sh.array
        for index, segment in self.layout.segments(flat):
            np.copyto(self.layout.params[index].data, segment)

    def _step(self, worker_id: int, n: int, epoch: int, owner_block: int):
        trainer = self.trainer
        trainer.epoch = epoch
        self._load_params()
        indices = self.idx_sh.array[:n]
        # owner_block > 0: whole-shard ownership (aligned with the
        # loader's source shards); 0: legacy per-index striping.  Either
        # way ownership is a pure function of the dataset index, so the
        # per-example carried state of stateful defenses never migrates.
        owners = (
            (indices // owner_block) % self.num_workers
            if owner_block
            else indices % self.num_workers
        )
        rows = np.flatnonzero(owners == worker_id)
        slot = self.grad_sh.array[worker_id]
        n_shard = int(rows.size)
        if n_shard == 0:
            slot.fill(0)
            return (0, 0.0, [True] * len(self.layout.params), {})
        batch = Batch(
            x=self.x_sh.array[:n][rows],
            y=self.y_sh.array[:n][rows],
            indices=indices[rows].copy(),
        )
        # As a root span in the child the shard emits (to this worker's
        # spool file when the capture armed one), joining the parent's
        # trace via the context the pool envelope delivered; its children
        # still fold into the reply for the parent-side ``parallel`` fold.
        with tel.span(
            "shard", worker=worker_id, epoch=epoch, examples=n_shard
        ) as shard_span:
            trainer.optimizer.zero_grad()
            loss_value = (
                trainer._compiled_batch(batch) if compiled_enabled() else None
            )
            if loss_value is None:
                with tel.span("forward"):
                    loss = trainer.compute_batch_loss(batch)
                with tel.span("backward"):
                    loss.backward()
                loss_value = loss.item()
        # The serial loss is the batch mean: sum_w (n_w/n) * shard_mean_w.
        # Scaling the finished gradients (not the loss) keeps the shard's
        # backward pass identical to serial; with one worker the scale is
        # exactly 1 and the gradients are copied bitwise.
        scale = n_shard / n
        none_mask = []
        for index, segment in self.layout.segments(slot):
            grad = self.layout.params[index].grad
            none_mask.append(grad is None)
            if grad is None:
                segment[...] = 0
            elif scale == 1.0:
                np.copyto(segment, grad, casting="unsafe")
            else:
                np.multiply(grad, scale, out=segment, casting="unsafe")
        phases = dict(shard_span.children) if tel.enabled() else {}
        return (n_shard, float(loss_value), none_mask, phases)


def _release(pool: Optional[WorkerPool], arrays) -> None:
    """Shut the pool down and free the shared segments (finalizer body)."""
    if pool is not None:
        pool.shutdown()
    for shared in arrays:
        shared.close()


class DataParallelTrainer(Trainer):
    """Data-parallel wrapper over an existing trainer.

    Parameters
    ----------
    trainer:
        The wrapped trainer.  Its model/optimizer/scheduler stay authoritative
        in the parent: optimizer state and learning-rate schedule live here,
        workers only produce gradients (and carry per-example defense state
        for their shard).
    num_workers:
        Worker processes; ``None``/``0`` resolves ``REPRO_WORKERS`` (default
        1).  ``workers=1`` is the bit-for-bit serial-equivalent mode.

    Workers fork lazily on the first batch (so replicas inherit the exact
    pre-training state) and persist across epochs and ``fit`` calls until
    :meth:`close`.
    """

    def __init__(self, trainer: Trainer, num_workers: Optional[int] = None):
        num_workers = resolve_workers(num_workers)
        super().__init__(
            trainer.model,
            trainer.optimizer,
            loss_fn=trainer.loss_fn,
            scheduler=trainer.scheduler,
        )
        self.inner = trainer
        self.num_workers = num_workers
        self.name = trainer.name
        self.epoch = trainer.epoch
        self._layout: Optional[_ParamLayout] = None
        self._pool: Optional[WorkerPool] = None
        self._arrays: list = []
        self._capacity = 0
        self._grad_acc: Optional[np.ndarray] = None
        self._grad_bufs: List[np.ndarray] = []
        self._finalizer = None

    # ------------------------------------------------------------------
    @property
    def name_with_steps(self) -> str:
        """Paper-style row name of the wrapped trainer (run records)."""
        return getattr(self.inner, "name_with_steps", self.inner.name)

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _compatible(self, batch: Batch, n: int) -> bool:
        x_sh = self._arrays[0]
        return (
            n <= self._capacity
            and x_sh.shape[1:] == batch.x.shape[1:]
            and x_sh.dtype == batch.x.dtype
            and self._arrays[1].dtype == batch.y.dtype
        )

    def _ensure_pool(self, batch: Batch, capacity_hint: int) -> None:
        if self._pool is not None:
            if self._compatible(batch, len(batch.x)):
                return
            self.close()
        capacity = max(capacity_hint, len(batch.x))
        layout = _ParamLayout(self.model.parameters())
        grad_dtype = np.dtype(accum_dtype())
        x_sh = SharedArray((capacity, *batch.x.shape[1:]), batch.x.dtype)
        y_sh = SharedArray((capacity,), batch.y.dtype)
        idx_sh = SharedArray((capacity,), np.intp)
        param_sh = SharedArray((layout.total,), layout.dtype)
        grad_sh = SharedArray((self.num_workers, layout.total), grad_dtype)
        self._arrays = [x_sh, y_sh, idx_sh, param_sh, grad_sh]
        self._layout = layout
        self._capacity = capacity
        self._grad_acc = np.empty(layout.total, dtype=grad_dtype)
        self._grad_bufs = [
            np.empty(shape, dtype=grad_dtype) for shape in layout.shapes
        ]
        self._write_params()
        context = _WorkerContext(
            self.inner, layout, self.num_workers,
            x_sh, y_sh, idx_sh, param_sh, grad_sh,
        )
        self._pool = WorkerPool(
            self.num_workers, context.handle,
            name=f"repro-dp-{self.name}",
        )
        self._pool.start()
        self._finalizer = weakref.finalize(
            self, _release, self._pool, tuple(self._arrays)
        )
        # Workers forked mid-run (wrapping after some serial epochs) need
        # their clocks set before the first step.
        self._pool.broadcast(("sync", self.epoch, tel.enabled()))
        self._pool.gather()

    def close(self) -> None:
        """Stop the workers and release the shared-memory segments."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._pool = None
        self._arrays = []
        self._layout = None
        self._capacity = 0

    # ------------------------------------------------------------------
    # the parallel step
    # ------------------------------------------------------------------
    def _write_params(self) -> None:
        flat = self._arrays[3].array
        for index, segment in self._layout.segments(flat):
            np.copyto(segment, self._layout.params[index].data)

    def _write_batch(self, batch: Batch, n: int) -> None:
        x_sh, y_sh, idx_sh = self._arrays[0], self._arrays[1], self._arrays[2]
        np.copyto(x_sh.array[:n], batch.x, casting="same_kind")
        np.copyto(y_sh.array[:n], batch.y, casting="same_kind")
        np.copyto(
            idx_sh.array[:n],
            np.asarray(batch.indices, dtype=np.intp),
            casting="same_kind",
        )

    def _dispatch(self, worker_id: int, message) -> None:
        """Send one message, restarting the worker if the pipe is dead."""
        try:
            self._pool.send(worker_id, message)
        except WorkerCrash:
            self._pool.restart(worker_id)
            self._pool.call(worker_id, ("sync", self.epoch, tel.enabled()))
            self._pool.send(worker_id, message)

    def _broadcast_ctl(self, message) -> None:
        """Broadcast a control message; restart-and-retry dead workers."""
        for worker_id in range(self.num_workers):
            self._dispatch(worker_id, message)
        for worker_id in range(self.num_workers):
            try:
                self._pool.recv(worker_id)
            except WorkerCrash:
                self._pool.restart(worker_id)
                self._pool.call(worker_id, message)

    def _collect(self, message) -> list:
        """Gather one step reply per worker, restarting crashed workers.

        Replies are collected (and later reduced) in worker order, so the
        gradient summation order is a function of the worker count alone.
        """
        replies = [None] * self.num_workers
        for worker_id in range(self.num_workers):
            for attempt in range(_MAX_RETRIES_PER_BATCH + 1):
                try:
                    replies[worker_id] = self._pool.recv(worker_id)
                    break
                except WorkerCrash:
                    if attempt == _MAX_RETRIES_PER_BATCH:
                        raise
                    self._pool.restart(worker_id)
                    self._pool.call(
                        worker_id, ("sync", self.epoch, tel.enabled())
                    )
                    self._pool.send(worker_id, message)
        return replies

    def _reduce(self, none_masks) -> None:
        """Sum per-worker gradient slots (worker order) into ``param.grad``."""
        grad_sh = self._arrays[4]
        acc = self._grad_acc
        np.copyto(acc, grad_sh.array[0])
        for worker_id in range(1, self.num_workers):
            acc += grad_sh.array[worker_id]
        for index, segment in self._layout.segments(acc):
            # A parameter no worker produced a gradient for stays None,
            # exactly like the serial engine (optimizers skip it rather
            # than stepping a zero gradient through their state).
            if all(mask[index] for mask in none_masks):
                self._layout.params[index].grad = None
                continue
            np.copyto(self._grad_bufs[index], segment)
            self._layout.params[index].grad = self._grad_bufs[index]

    @staticmethod
    def _owner_block_for(loader, num_workers: int) -> int:
        """Shard-ownership block size for a loader, 0 for legacy striping.

        Whole-shard ownership requires a genuinely sharded loader with at
        least one shard per worker (fewer would idle workers); anything
        else — plain iterables, single-shard in-memory loaders — keeps
        the historical ``index % N`` rule.
        """
        shard_size = int(getattr(loader, "shard_size", 0) or 0)
        num_shards = int(getattr(loader, "num_shards", 1) or 1)
        if shard_size > 0 and num_shards > 1 and num_shards >= num_workers:
            return shard_size
        return 0

    def _parallel_step(self, batch: Batch, owner_block: int) -> float:
        n = len(batch.x)
        workers = self.num_workers
        with tel.span("parallel") as parallel_span:
            self._write_batch(batch, n)
            self._write_params()
            message = ("step", n, self.epoch, tel.enabled(), owner_block)
            for worker_id in range(workers):
                self._dispatch(worker_id, message)
            replies = self._collect(message)
            with tel.span("reduce"):
                self._reduce([reply[2] for reply in replies])
            if tel.enabled():
                grad_sh = self._arrays[4]
                tel.counter("parallel.steps")
                tel.counter("parallel.reduce_bytes", grad_sh.array.nbytes)
                for worker_id, reply in enumerate(replies):
                    tel.observe("parallel.shard_examples", reply[0])
                    for path, (count, total) in reply[3].items():
                        parallel_span._fold(
                            f"w{worker_id}.{path.replace('/', '.')}",
                            count, total,
                        )
        if workers == 1:
            return replies[0][1]
        return float(
            sum(reply[0] / n * reply[1] for reply in replies if reply[0])
        )

    # ------------------------------------------------------------------
    # the loop (mirrors Trainer.train_epoch with sharded batch steps)
    # ------------------------------------------------------------------
    def train_epoch(self, loader: DataLoader) -> float:
        """One data-parallel pass over the loader; returns the mean loss."""
        self.model.train()
        capacity_hint = int(getattr(loader, "batch_size", 0))
        owner_block = self._owner_block_for(loader, self.num_workers)
        losses = []
        epoch_started = False
        iterator = iter(loader)
        while True:
            with tel.span("data"):
                batch = next(iterator, None)
            if batch is None:
                break
            self._ensure_pool(batch, capacity_hint)
            if not epoch_started:
                # Replicas own the epoch hooks: the epochwise cache reset
                # must drop *their* caches, not the parent's unused copy.
                self._broadcast_ctl(
                    ("epoch_start", self.epoch, tel.enabled())
                )
                epoch_started = True
            self.optimizer.zero_grad()
            losses.append(self._parallel_step(batch, owner_block))
            with tel.span("optimizer"):
                self.optimizer.step()
        if epoch_started:
            self._broadcast_ctl(("epoch_end", self.epoch))
        self.epoch += 1
        self.inner.epoch = self.epoch
        if self.scheduler is not None:
            self.scheduler.step()
        return float(np.mean(losses)) if losses else 0.0
