"""Runtime services shared by every layer of the stack.

Hosts the precision policy (see :mod:`repro.runtime.policy`): a
process-default plus thread-local stack of :class:`Policy` objects that
centralises every dtype decision — tensor creation, gradient accumulation,
parameter initialisation, dataset emission and attack arithmetic.

    from repro import runtime

    runtime.set_default_policy("float32")
    with runtime.precision("float64"):
        ...

Also hosts the scratch-buffer workspace (see
:mod:`repro.runtime.workspace`): a per-thread pool the hot-path kernels
(fused loss, im2col, backward accumulation) recycle their large buffers
through, plus the ``hotpaths`` toggle that switches between the optimised
kernels and the legacy reference implementations.
"""

from .policy import (
    Policy,
    PolicyLike,
    accum_dtype,
    active_policy,
    compute_dtype,
    ensure_float_array,
    get_default_policy,
    grad_check_dtype,
    precision,
    resolve_policy,
    set_default_policy,
)
from .compiled import (
    compiled,
    compiled_enabled,
    set_compiled,
)
from .workspace import (
    Workspace,
    WorkspaceLease,
    clear_workspace,
    get_workspace,
    hotpaths,
    hotpaths_enabled,
    set_hotpaths,
)

__all__ = [
    "Policy",
    "PolicyLike",
    "active_policy",
    "get_default_policy",
    "set_default_policy",
    "resolve_policy",
    "precision",
    "compute_dtype",
    "accum_dtype",
    "grad_check_dtype",
    "ensure_float_array",
    "Workspace",
    "WorkspaceLease",
    "get_workspace",
    "clear_workspace",
    "hotpaths",
    "hotpaths_enabled",
    "set_hotpaths",
    "compiled",
    "compiled_enabled",
    "set_compiled",
]
