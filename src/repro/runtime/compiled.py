"""Process toggle for the compiled trace-and-replay execution engine.

Mirrors the ``hotpaths`` toggle in :mod:`repro.runtime.workspace`: a
per-thread flag with a process default taken from the ``REPRO_COMPILED``
environment variable.  When enabled, the trainers route their train step
through :class:`repro.autograd.tape.CompiledStep` and the white-box attack
gradient estimator replays its forward/backward from a recorded tape
instead of rebuilding the autograd graph every call.

The flag is **off by default**: the compiled engine is numerically
bit-identical to eager execution (the equivalence suite pins that), but
eager remains the reference semantics.  ``REPRO_COMPILED=1`` (or
``true``/``on``/``yes``) enables it process-wide; :func:`compiled` scopes
it for benchmarks and tests.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Iterator

__all__ = ["compiled", "compiled_enabled", "set_compiled"]


def _default_enabled() -> bool:
    value = os.environ.get("REPRO_COMPILED", "").strip().lower()
    return value in ("1", "true", "on", "yes")


class _CompiledState(threading.local):
    """Per-thread compiled-engine flag (mirrors the hot-path toggle)."""

    def __init__(self) -> None:
        self.enabled = _default_enabled()


_state = _CompiledState()


def compiled_enabled() -> bool:
    """Whether the compiled tape engine is active for this thread."""
    return _state.enabled


def set_compiled(enabled: bool) -> bool:
    """Enable/disable the compiled engine for this thread; returns previous."""
    previous = _state.enabled
    _state.enabled = bool(enabled)
    return previous


@contextlib.contextmanager
def compiled(enabled: bool) -> Iterator[None]:
    """Scoped toggle of the compiled engine (benchmark before/after gate)."""
    previous = set_compiled(enabled)
    try:
        yield
    finally:
        set_compiled(previous)
