"""Runtime precision policy: the single source of truth for dtypes.

Every numeric decision in the stack — what dtype tensors are created in,
what dtype gradients accumulate in, and what dtype numerical gradient
checking is pinned to — is resolved against the *active* :class:`Policy`.
Nothing else in the package hardcodes ``np.float64``/``np.float32``.

The active policy is resolved in two layers:

1. a process-wide **default** (set by :func:`set_default_policy`, or the
   ``REPRO_DTYPE`` environment variable at import time), and
2. a **thread-local stack** pushed/popped by the :func:`precision` context
   manager, so one thread can temporarily run at a different precision
   without affecting concurrent workers.

Typical use::

    from repro import runtime

    runtime.set_default_policy("float32")          # whole process
    with runtime.precision("float64"):             # one scoped region
        ...

Design notes
------------
``compute_dtype``
    Dtype of freshly created tensors/parameters/datasets and of all
    forward/backward arithmetic.  Operations never recast floating inputs:
    they compute in whatever floating dtype their operands carry, so a
    float64 region (e.g. gradient checking) stays float64 even while a
    float32 policy is active.
``accum_dtype``
    Dtype leaf gradients are accumulated in.  Defaults to the compute
    dtype; widening it (e.g. float32 compute with float64 accumulation)
    trades memory for summation accuracy.
``grad_check_dtype``
    Dtype :mod:`repro.autograd.grad_check` pins itself to, *regardless* of
    the active compute dtype.  Central finite differences with ``eps ~ 1e-6``
    are meaningless in float32, so this defaults to float64 and the checker
    enters a nested float64 policy for the duration of the check.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

import numpy as np

__all__ = [
    "Policy",
    "PolicyLike",
    "active_policy",
    "get_default_policy",
    "set_default_policy",
    "precision",
    "compute_dtype",
    "accum_dtype",
    "grad_check_dtype",
    "ensure_float_array",
]

#: Names accepted wherever a policy is expected.
PolicyLike = Union["Policy", str, type, np.dtype, None]

_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _as_float_dtype(value) -> np.dtype:
    """Validate and normalise a dtype-like into a supported float dtype."""
    try:
        dtype = np.dtype(value)
    except TypeError:
        supported = ", ".join(d.name for d in _SUPPORTED_DTYPES)
        raise ValueError(
            f"unsupported precision dtype {value!r}; "
            f"choose one of: {supported}"
        ) from None
    if dtype not in _SUPPORTED_DTYPES:
        supported = ", ".join(d.name for d in _SUPPORTED_DTYPES)
        raise ValueError(
            f"unsupported precision dtype {dtype.name!r}; "
            f"choose one of: {supported}"
        )
    return dtype


@dataclass(frozen=True)
class Policy:
    """An immutable precision policy.

    Parameters
    ----------
    compute_dtype:
        Dtype for tensor/parameter/dataset creation and arithmetic.
    accum_dtype:
        Dtype for leaf-gradient accumulation; defaults to ``compute_dtype``.
    grad_check_dtype:
        Dtype gradient checking pins itself to; defaults to float64.
    """

    compute_dtype: np.dtype = field(default=np.dtype(np.float64))
    accum_dtype: Optional[np.dtype] = None
    grad_check_dtype: np.dtype = field(default=np.dtype(np.float64))

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "compute_dtype", _as_float_dtype(self.compute_dtype)
        )
        accum = (
            self.compute_dtype if self.accum_dtype is None else self.accum_dtype
        )
        object.__setattr__(self, "accum_dtype", _as_float_dtype(accum))
        object.__setattr__(
            self, "grad_check_dtype", _as_float_dtype(self.grad_check_dtype)
        )

    @classmethod
    def from_dtype(cls, dtype) -> "Policy":
        """Policy computing and accumulating in ``dtype`` (grad check f64)."""
        return cls(compute_dtype=_as_float_dtype(dtype))

    def __repr__(self) -> str:
        return (
            f"Policy(compute={self.compute_dtype.name}, "
            f"accum={self.accum_dtype.name}, "
            f"grad_check={self.grad_check_dtype.name})"
        )


def resolve_policy(policy: PolicyLike) -> Policy:
    """Coerce a policy, dtype name, or ``None`` (=active) into a Policy."""
    if policy is None:
        return active_policy()
    if isinstance(policy, Policy):
        return policy
    return Policy.from_dtype(policy)


# ----------------------------------------------------------------------
# default + thread-local stack
# ----------------------------------------------------------------------
def _default_from_env() -> Policy:
    name = os.environ.get("REPRO_DTYPE", "").strip()
    if not name:
        return Policy()
    try:
        return Policy.from_dtype(name)
    except ValueError as exc:
        raise ValueError(f"invalid REPRO_DTYPE: {exc}") from None


_default_policy: Policy = _default_from_env()
_default_lock = threading.Lock()


class _PolicyStack(threading.local):
    """Per-thread stack of explicitly pushed policies."""

    def __init__(self) -> None:
        self.stack: list = []


_policy_stack = _PolicyStack()


def get_default_policy() -> Policy:
    """The process-wide default policy (bottom of every thread's stack)."""
    return _default_policy


def set_default_policy(policy: PolicyLike) -> Policy:
    """Set and return the process-wide default policy.

    Accepts a :class:`Policy` or a dtype name such as ``"float32"``.
    Does not affect regions currently inside a :func:`precision` block.
    """
    global _default_policy
    resolved = (
        policy if isinstance(policy, Policy) else Policy.from_dtype(policy)
    )
    with _default_lock:
        _default_policy = resolved
    return resolved


def active_policy() -> Policy:
    """The policy in effect for the calling thread."""
    stack = _policy_stack.stack
    return stack[-1] if stack else _default_policy


@contextlib.contextmanager
def precision(policy: PolicyLike) -> Iterator[Policy]:
    """Activate ``policy`` for the calling thread within a ``with`` block.

    ``policy`` may be a :class:`Policy` or a dtype name (``"float32"``).
    Nested blocks stack; each thread has its own stack, so a policy pushed
    in a worker thread never leaks into other threads.
    """
    resolved = (
        policy if isinstance(policy, Policy) else Policy.from_dtype(policy)
    )
    _policy_stack.stack.append(resolved)
    try:
        yield resolved
    finally:
        _policy_stack.stack.pop()


# ----------------------------------------------------------------------
# convenience accessors
# ----------------------------------------------------------------------
def compute_dtype() -> np.dtype:
    """Active policy's compute dtype."""
    return active_policy().compute_dtype


def accum_dtype() -> np.dtype:
    """Active policy's gradient-accumulation dtype."""
    return active_policy().accum_dtype


def grad_check_dtype() -> np.dtype:
    """Active policy's gradient-checking dtype (float64 by default)."""
    return active_policy().grad_check_dtype


def ensure_float_array(value, copy: bool = False) -> np.ndarray:
    """Coerce ``value`` to a floating numpy array without hidden upcasts.

    Floating input keeps its own dtype (a float64 grad-check region stays
    float64; a float32 batch stays float32); non-floating input (ints,
    bools, lists of Python numbers) is promoted to the active compute
    dtype.  This is the one conversion attacks, trainers and loaders use,
    replacing the scattered ``np.asarray(x, dtype=np.float64)`` calls.
    """
    arr = np.asarray(value)
    if not np.issubdtype(arr.dtype, np.floating):
        return arr.astype(compute_dtype())
    if copy:
        return arr.copy()
    return arr
