"""Reusable scratch-buffer pool backing the hot-path kernels.

The convolution/pooling kernels and the autograd engine allocate the same
handful of large, identically-shaped buffers on every training step: the
im2col column matrix, the zero-padded image used by ``col2im``, and the
gradient-accumulation buffers of multi-consumer graph nodes.  Allocating
(and for zero-filled buffers, memsetting) them anew each step is pure
overhead, so this module provides a per-thread :class:`Workspace` pool that
recycles them across steps.

Ownership contract
------------------
``acquire`` hands out a buffer with **undefined contents** (``np.empty``
semantics) that the caller owns exclusively.  When the caller can prove the
buffer is dead — nothing else references it and it never escaped into a
result the engine or user code holds — it calls ``release`` to return it to
the pool.  Buffers that escape (layer outputs, gradients handed to the
engine) are simply never released; they are garbage-collected as usual, so
forgetting to release is a missed optimisation, never a bug.

Hot-path toggle
---------------
``hotpaths``/``set_hotpaths`` switch the whole hot-path overhaul — the
fused softmax-cross-entropy, the ``sliding_window_view`` im2col and the
in-place gradient accumulation — between the optimised kernels and the
legacy reference implementations.  With hot paths disabled ``acquire``
degenerates to ``np.empty`` and ``release`` to a no-op, which is exactly
the pre-overhaul allocation behaviour; the benchmark speedup gate times
one flag value against the other.  The ``REPRO_HOTPATHS`` environment
variable (``0``/``false`` to disable) sets the process default.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Iterator

import numpy as np

__all__ = [
    "Workspace",
    "WorkspaceLease",
    "get_workspace",
    "clear_workspace",
    "hotpaths",
    "hotpaths_enabled",
    "set_hotpaths",
]


class WorkspaceLease:
    """A set of buffers pinned out of the pool for a long-lived consumer.

    The per-step ``acquire``/``release`` contract assumes buffers die within
    the step that acquired them.  The compiled tape engine instead holds its
    replay buffers (fused-kernel scratch, gradient accumulators) across an
    unbounded number of steps; a lease makes that ownership explicit: the
    buffers are drawn through the pool (so a retrace after an invalidation
    recycles the previous tape's memory), counted in the
    ``workspace.pool.leased_bytes`` gauge while pinned, and returned to the
    pool in one :meth:`release` when the owning tape is evicted.
    """

    __slots__ = ("_workspace", "_buffers", "nbytes")

    def __init__(self, workspace: "Workspace") -> None:
        self._workspace = workspace
        self._buffers: list = []
        self.nbytes = 0

    def acquire(self, shape, dtype) -> np.ndarray:
        """Pin a buffer (undefined contents) until :meth:`release`."""
        buffer = self._workspace.acquire(shape, dtype)
        self._buffers.append(buffer)
        self.nbytes += buffer.nbytes
        self._workspace.leased_bytes += buffer.nbytes
        return buffer

    def zeros(self, shape, dtype) -> np.ndarray:
        """Pin a zero-filled buffer."""
        buffer = self.acquire(shape, dtype)
        buffer.fill(0)
        return buffer

    def full(self, shape, dtype, value) -> np.ndarray:
        """Pin a constant-filled buffer."""
        buffer = self.acquire(shape, dtype)
        buffer.fill(value)
        return buffer

    def __len__(self) -> int:
        return len(self._buffers)

    def donate(self, buffer) -> None:
        """Untrack a pinned buffer, transferring ownership to the caller.

        The buffer never returns to the pool — used when a replayed tape
        hands a gradient accumulation buffer to a parameter's ``.grad``
        (matching the eager engine's buffer donation) instead of copying
        out of it; releasing it later would let the pool hand the array to
        another consumer while the gradient still references it.
        """
        for index, pinned in enumerate(self._buffers):
            if pinned is buffer:
                del self._buffers[index]
                self.nbytes -= buffer.nbytes
                self._workspace.leased_bytes -= buffer.nbytes
                return

    def release(self) -> None:
        """Return every pinned buffer to the pool (idempotent)."""
        self._workspace.leased_bytes -= self.nbytes
        for buffer in self._buffers:
            self._workspace.release(buffer)
        self._buffers = []
        self.nbytes = 0


class Workspace:
    """A pool of reusable scratch buffers keyed by ``(shape, dtype)``.

    Parameters
    ----------
    max_per_key:
        Maximum number of free buffers retained per ``(shape, dtype)`` key;
        releases beyond the cap drop the buffer (it is garbage-collected).

    Attributes
    ----------
    hits / misses:
        Number of ``acquire`` calls served from the pool vs. freshly
        allocated.  The allocation-regression tests assert that a warmed
        training step acquires every buffer from the pool (``misses`` does
        not move).
    high_water_bytes:
        Largest number of bytes the free pool has ever held — the
        ``workspace.pool.high_water_bytes`` telemetry gauge.
    """

    __slots__ = (
        "_free", "hits", "misses", "max_per_key", "_cached_bytes",
        "high_water_bytes", "leased_bytes",
    )

    def __init__(self, max_per_key: int = 16) -> None:
        self._free: dict = {}
        self.hits = 0
        self.misses = 0
        self.max_per_key = int(max_per_key)
        self._cached_bytes = 0
        self.high_water_bytes = 0
        self.leased_bytes = 0

    def lease(self) -> "WorkspaceLease":
        """Open a pinned multi-buffer lease on this pool (compiled tapes)."""
        return WorkspaceLease(self)

    @staticmethod
    def _key(shape, dtype):
        # np.dtype objects hash and compare by value, so the dtype itself
        # is a valid dict key — no need to render its .str descriptor.
        return (tuple(shape), np.dtype(dtype))

    def acquire(self, shape, dtype) -> np.ndarray:
        """Return an exclusively-owned buffer with undefined contents."""
        if not hotpaths_enabled():
            return np.empty(shape, dtype=dtype)
        bucket = self._free.get(self._key(shape, dtype))
        if bucket:
            self.hits += 1
            buffer = bucket.pop()
            self._cached_bytes -= buffer.nbytes
            return buffer
        self.misses += 1
        return np.empty(shape, dtype=dtype)

    def release(self, array) -> None:
        """Return a dead buffer to the pool.

        Only base, C-contiguous ndarrays are pooled; anything else (views,
        non-arrays) is ignored, so callers can release unconditionally.
        """
        if not hotpaths_enabled():
            return
        if (
            not isinstance(array, np.ndarray)
            or array.base is not None
            or not array.flags["C_CONTIGUOUS"]
        ):
            return
        key = self._key(array.shape, array.dtype)
        bucket = self._free.setdefault(key, [])
        if len(bucket) >= self.max_per_key:
            return
        if any(buffered is array for buffered in bucket):
            return  # guard against double release handing one buffer out twice
        bucket.append(array)
        self._cached_bytes += array.nbytes
        if self._cached_bytes > self.high_water_bytes:
            self.high_water_bytes = self._cached_bytes

    def clear(self) -> None:
        """Drop every pooled buffer and reset the hit/miss counters."""
        self._free.clear()
        self.hits = 0
        self.misses = 0
        self._cached_bytes = 0
        self.high_water_bytes = 0

    @property
    def cached_buffers(self) -> int:
        """Number of free buffers currently held by the pool."""
        return sum(len(bucket) for bucket in self._free.values())

    @property
    def cached_bytes(self) -> int:
        """Total size in bytes of the free buffers held by the pool.

        Tracked incrementally on acquire/release so telemetry can read it
        every epoch without walking the buckets.
        """
        return self._cached_bytes

    def telemetry_gauges(self) -> dict:
        """Pool statistics keyed by their telemetry gauge names."""
        return {
            "workspace.pool.hits": self.hits,
            "workspace.pool.misses": self.misses,
            "workspace.pool.bytes": self._cached_bytes,
            "workspace.pool.high_water_bytes": self.high_water_bytes,
            "workspace.pool.buffers": self.cached_buffers,
            "workspace.pool.leased_bytes": self.leased_bytes,
        }


def _default_enabled() -> bool:
    value = os.environ.get("REPRO_HOTPATHS", "").strip().lower()
    if value in ("0", "false", "off", "no"):
        return False
    return True


class _WorkspaceState(threading.local):
    """Per-thread pool + hot-path flag (mirrors the precision-policy stack)."""

    def __init__(self) -> None:
        self.workspace = Workspace()
        self.enabled = _default_enabled()


_state = _WorkspaceState()


def _reset_after_fork() -> None:
    """Give a forked child a fresh, empty pool.

    The buffers in an inherited pool are copy-on-write copies of the
    parent's scratch memory — recycling them in the child would silently
    double the process's resident set and break the pool's accounting
    (hits/bytes describing buffers the child never allocated).  The
    hot-path enabled flag is kept: it is configuration, not state.
    """
    _state.workspace = Workspace()


# Worker processes (repro.parallel) are forked mid-run; never let them
# inherit a populated pool.
os.register_at_fork(after_in_child=_reset_after_fork)


def get_workspace() -> Workspace:
    """The calling thread's scratch-buffer pool."""
    return _state.workspace


def clear_workspace() -> None:
    """Drop the calling thread's pooled buffers (tests, memory pressure)."""
    _state.workspace.clear()


def hotpaths_enabled() -> bool:
    """Whether the optimised hot-path kernels are active for this thread."""
    return _state.enabled


def set_hotpaths(enabled: bool) -> bool:
    """Enable/disable the hot-path kernels for this thread; returns previous."""
    previous = _state.enabled
    _state.enabled = bool(enabled)
    return previous


@contextlib.contextmanager
def hotpaths(enabled: bool) -> Iterator[None]:
    """Scoped toggle of the hot-path kernels (benchmark before/after gate)."""
    previous = set_hotpaths(enabled)
    try:
        yield
    finally:
        set_hotpaths(previous)
