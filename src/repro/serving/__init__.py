"""High-throughput serving: micro-batching, prediction cache, backpressure.

The ``repro serve`` subsystem — an async inference + robustness-audit
service built on the standard library only:

* :class:`~repro.serving.batching.MicroBatcher` coalesces concurrent
  single-example requests into batched forward passes (max-batch-size /
  max-wait window) behind a bounded queue that sheds on overload;
* :class:`~repro.serving.service.InferenceService` adds the LRU
  prediction cache (input digest + model/policy signature keys), the
  attack-registry ``audit`` endpoint and the telemetry surface;
* :mod:`~repro.serving.http` exposes it all over JSON/HTTP
  (``classify``, ``audit``, ``healthz``, ``metrics``).

See ``docs/serving.md`` for architecture and tuning, and
``benchmarks/bench_serving.py`` for the throughput gate.
"""

from .batching import (
    MicroBatcher,
    QueueFullError,
    RequestTimeout,
    ServiceClosed,
    ServingError,
)
from .http import ServingServer, start_server
from .service import InferenceService, Prediction

__all__ = [
    "MicroBatcher",
    "ServingError",
    "QueueFullError",
    "RequestTimeout",
    "ServiceClosed",
    "InferenceService",
    "Prediction",
    "ServingServer",
    "start_server",
]
