"""Micro-batching request queue with admission control and backpressure.

The serving hot path is dominated by per-call dispatch: a single-example
forward pass through the CNN costs almost as much engine overhead as a
32-example one, so coalescing concurrent single-example requests into one
batched forward amortises that overhead across the batch (Kurakin et al.'s
batched-execution lever, applied to inference).  :class:`MicroBatcher`
implements the standard coalescing window:

* the first request of a batch is dequeued blockingly;
* further requests are admitted until the batch reaches
  ``max_batch_size`` **or** ``max_wait_us`` has elapsed since the batch
  opened — whichever comes first;
* the whole batch runs through one ``run_batch`` call on a dedicated
  worker thread, and each request's :class:`~concurrent.futures.Future`
  is resolved with its example's result.

Overload degrades gracefully instead of collapsing:

* the queue is **bounded** (``queue_depth``); once full, new submissions
  are shed immediately with :class:`QueueFullError` (HTTP 429) rather
  than piling up latency for everyone;
* callers wait with a deadline — :meth:`MicroBatcher.run` maps a missed
  deadline to :class:`RequestTimeout` (HTTP 504);
* :meth:`MicroBatcher.close` stops admissions (:class:`ServiceClosed`,
  HTTP 503) but drains every already-admitted request before the worker
  exits, so in-flight work completes on graceful shutdown.

Metrics are recorded straight into the process-wide registry (bypassing
the thread-local enabled flag) so the ``metrics`` endpoint is always live:
``serving.*`` counters, queue-depth gauge, and batch-size / batch-latency
histograms with streaming p50/p90/p99.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Callable, List, Optional, Sequence

from .. import telemetry as tel

__all__ = [
    "ServingError",
    "QueueFullError",
    "RequestTimeout",
    "ServiceClosed",
    "MicroBatcher",
]


class ServingError(RuntimeError):
    """Base class for serving-layer request failures.

    ``code`` is the documented machine-readable error string clients can
    dispatch on; ``status`` is the matching HTTP status code.
    """

    code = "error"
    status = 500


class QueueFullError(ServingError):
    """The bounded request queue is full; the request was shed."""

    code = "overloaded"
    status = 429


class RequestTimeout(ServingError):
    """The request missed its deadline while queued or executing."""

    code = "timeout"
    status = 504


class ServiceClosed(ServingError):
    """The service is shutting down and no longer admits requests."""

    code = "shutting_down"
    status = 503


#: Queue marker telling the worker to drain out and exit.
_SENTINEL = object()


class MicroBatcher:
    """Coalesce single-payload requests into batched ``run_batch`` calls.

    Parameters
    ----------
    run_batch:
        ``callable(payloads) -> results`` executed on the worker thread;
        must return one result per payload, in order.
    max_batch_size:
        Upper bound on coalesced batch size (1 disables coalescing — the
        single-request-at-a-time baseline the throughput gate compares
        against).
    max_wait_us:
        How long an open batch waits for more requests, in microseconds.
        The clock starts when the batch's first request is dequeued, so an
        idle service adds no latency at all to a lone request.
    queue_depth:
        Bound on admitted-but-unprocessed requests; beyond it submissions
        fail fast with :class:`QueueFullError`.
    name:
        Label used in metric names and the worker thread name.
    """

    def __init__(
        self,
        run_batch: Callable[[Sequence[object]], Sequence[object]],
        *,
        max_batch_size: int = 32,
        max_wait_us: int = 2000,
        queue_depth: int = 256,
        name: str = "classify",
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be at least 1, got {max_batch_size}"
            )
        if queue_depth < 1:
            raise ValueError(
                f"queue_depth must be at least 1, got {queue_depth}"
            )
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        self._run_batch = run_batch
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = max_wait_us / 1e6
        self.queue_depth = int(queue_depth)
        self.name = name
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._closed = threading.Event()
        self._draining = False  # worker-private: sentinel seen mid-batch
        self._metrics = tel.get_metrics()
        self._batches = 0
        self._requests = 0
        self._shed = 0
        self._timeouts = 0
        self._worker = threading.Thread(
            target=self._loop, name=f"repro-serve-{name}", daemon=True
        )
        self._worker.start()

    # -- submission ------------------------------------------------------
    def submit(self, payload) -> Future:
        """Admit one request; returns the future carrying its result.

        Raises :class:`ServiceClosed` after :meth:`close` and
        :class:`QueueFullError` when the bounded queue is full.
        """
        if self._closed.is_set():
            raise ServiceClosed(f"{self.name}: batcher is shut down")
        future: Future = Future()
        # The submitting thread's trace context rides the queue with the
        # request, so the batch executing on the worker thread can join
        # the trace of the request(s) it serves.
        ctx = tel.current_context() if tel.enabled() else None
        try:
            self._queue.put_nowait((payload, future, ctx))
        except queue.Full:
            self._shed += 1
            self._metrics.inc(f"serving.{self.name}.shed")
            raise QueueFullError(
                f"{self.name}: request queue is full "
                f"(depth {self.queue_depth}); request shed"
            ) from None
        self._requests += 1
        self._metrics.set_gauge(
            f"serving.{self.name}.queue_depth", self._queue.qsize()
        )
        return future

    def run(self, payload, timeout: Optional[float] = None):
        """Submit and wait for the result with an optional deadline.

        A missed deadline raises :class:`RequestTimeout`.  The request is
        *not* recalled from the queue — its batch still executes — so a
        timeout bounds the caller's wait, not the server's work.
        """
        future = self.submit(payload)
        try:
            return future.result(timeout)
        except FutureTimeout:
            self._timeouts += 1
            self._metrics.inc(f"serving.{self.name}.timeouts")
            raise RequestTimeout(
                f"{self.name}: no result within {timeout:.3f}s"
            ) from None

    # -- worker ----------------------------------------------------------
    def _collect(self, first) -> List:
        """Grow a batch from ``first`` until full or the window closes."""
        batch = [first]
        if self.max_batch_size == 1:
            return batch
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Window closed: take whatever is already queued, but do
                # not wait for more.
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is _SENTINEL:
                # Everything admitted before close() is ahead of the
                # marker in FIFO order, so this batch is the last one;
                # flag the outer loop instead of re-queueing (a re-put
                # could block the worker on its own full queue).
                self._draining = True
                break
            batch.append(item)
        return batch

    def _run_traced(self, payloads, ctxs):
        """Run the batch, traced when any request carried a context.

        The batch span parents on the *first* traced request; the other
        coalesced requests are recorded as ``links`` (their contexts, in
        header format) since a span has exactly one parent but a batch
        serves many requests.  ``enabled`` is thread-local, so it is
        switched on here just for the batch — the worker thread otherwise
        keeps the process default.
        """
        if not ctxs:
            return self._run_batch(payloads)
        attrs = {"batcher": self.name, "size": len(payloads)}
        if len(ctxs) > 1:
            attrs["links"] = [f"{c.trace_id}-{c.span_id}" for c in ctxs[1:]]
        previous = tel.set_enabled(True)
        try:
            with tel.trace_context(ctxs[0]):
                with tel.span("serving.batch", **attrs):
                    return self._run_batch(payloads)
        finally:
            tel.set_enabled(previous)

    def _execute(self, batch) -> None:
        started = time.perf_counter()
        payloads = [payload for payload, _future, _ctx in batch]
        ctxs = [ctx for _payload, _future, ctx in batch if ctx is not None]
        try:
            results = self._run_traced(payloads, ctxs)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"{self.name}: run_batch returned {len(results)} "
                    f"results for {len(batch)} payloads"
                )
        except BaseException as exc:  # noqa: BLE001 - routed to callers
            self._metrics.inc(f"serving.{self.name}.batch_errors")
            for _payload, future, _ctx in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_payload, future, _ctx), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._batches += 1
        self._metrics.inc(f"serving.{self.name}.batches")
        self._metrics.observe(f"serving.{self.name}.batch_size", len(batch))
        self._metrics.observe(
            f"serving.{self.name}.batch_latency_ms", elapsed_ms
        )

    def _loop(self) -> None:
        while not self._draining:
            item = self._queue.get()
            if item is _SENTINEL:
                break
            self._execute(self._collect(item))
        # Anything still queued arrived after close() raced past the
        # closed check; fail those requests explicitly rather than
        # leaving their futures pending forever.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SENTINEL:
                continue
            _payload, future, _ctx = item
            if not future.done():
                future.set_exception(
                    ServiceClosed(f"{self.name}: batcher is shut down")
                )

    # -- lifecycle -------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: stop admissions, drain, join the worker.

        Every request admitted before the call completes normally; later
        submissions raise :class:`ServiceClosed`.  Idempotent.
        """
        if not self._closed.is_set():
            self._closed.set()
            # The queue is bounded and admissions are closed, so a
            # blocking put can only wait for the draining worker.
            self._queue.put(_SENTINEL)
        self._worker.join(timeout)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def stats(self) -> dict:
        """Admission/batch counters for diagnostics and ``metrics``."""
        return {
            "requests": self._requests,
            "batches": self._batches,
            "shed": self._shed,
            "timeouts": self._timeouts,
            "queue_depth": self._queue.qsize(),
            "max_batch_size": self.max_batch_size,
            "max_wait_us": int(round(self.max_wait_s * 1e6)),
            "closed": self.closed,
        }
