"""Stdlib HTTP front-end for :class:`~repro.serving.service.InferenceService`.

A thin JSON-over-HTTP adapter on ``http.server`` — no framework, no
dependency.  ``ThreadingHTTPServer`` gives one handler thread per
connection; all of them funnel into the service's micro-batcher, which is
where concurrency is actually managed (bounded queue, coalescing window,
single inference worker).

Endpoints
---------
``POST /classify``
    ``{"input": [...]}`` for one example or ``{"inputs": [[...], ...]}``
    for a client-side batch; flat 784-vectors and nested
    ``1x28x28`` arrays are both accepted.  Responds with
    ``{"prediction": {...}}`` or ``{"predictions": [...]}`` where each
    prediction is ``{"label", "probs", "cached"}``.
``POST /audit``
    ``{"attack": "pgd:num_steps=10", "inputs": ..., "labels": [...]}``
    (``"attacks": [...]`` for several specs, optional ``"epsilon"``);
    responds with per-spec robust accuracy.
``GET /healthz``
    Liveness payload.
``GET /metrics``
    Full telemetry snapshot: counters, gauges, histograms (with
    p50/p90/p99), batcher and prediction-cache stats.  JSON by default;
    an ``Accept`` header naming ``application/openmetrics-text`` or
    ``text/plain`` gets the OpenMetrics text exposition instead
    (:mod:`repro.telemetry.openmetrics`), so Prometheus-style scrapers
    work unmodified.

Distributed tracing
-------------------
A request carrying an ``X-Repro-Trace: <trace_id>-<span_id>`` header is
served inside a ``serving.request`` span parented on the caller's
context: the handler thread enables telemetry for the request's duration,
the span's context flows through the micro-batcher to the batch that
executes the forward pass, and the response echoes ``X-Repro-Trace`` with
the request span's ids so the client can locate its spans in the server's
run record (``repro report RUN --trace``).  Malformed headers are
ignored, never an error.

Failure mapping: shed requests are ``429 {"error": "overloaded"}``,
missed deadlines ``504 {"error": "timeout"}``, shutdown ``503
{"error": "shutting_down"}``, malformed payloads ``400``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .. import telemetry as tel
from ..telemetry import trace as teltrace
from ..telemetry.openmetrics import CONTENT_TYPE, render_service_metrics
from .batching import ServingError
from .service import InferenceService

__all__ = ["ServingHandler", "ServingServer", "start_server"]

#: Request bodies above this are rejected outright (64 MiB of JSON floats
#: is far beyond any sane classify batch).
_MAX_BODY_BYTES = 64 * 1024 * 1024


class ServingHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the server's :class:`InferenceService`."""

    protocol_version = "HTTP/1.1"
    server: "ServingServer"

    # -- plumbing ---------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self._send_body(status, "application/json", body)

    def _send_body(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        response_trace = getattr(self, "_response_trace", None)
        if response_trace is not None:
            self.send_header(teltrace.TRACE_HEADER, response_trace)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required")
        if length > _MAX_BODY_BYTES:
            raise ValueError(f"request body over {_MAX_BODY_BYTES} bytes")
        payload = json.loads(self.rfile.read(length))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _fail(self, exc: Exception) -> None:
        if isinstance(exc, ServingError):
            self._send_json(
                exc.status, {"error": exc.code, "detail": str(exc)}
            )
        elif isinstance(exc, (ValueError, KeyError, TypeError)):
            self._send_json(400, {"error": "bad_request", "detail": str(exc)})
        else:
            self._send_json(
                500, {"error": "internal", "detail": str(exc)}
            )

    # -- tracing ----------------------------------------------------------
    def _dispatch(self, method: str, route) -> None:
        """Run ``route`` inside a ``serving.request`` span when traced.

        ``enabled`` is thread-local and handler threads are fresh per
        connection, so tracing a request costs nothing unless the client
        asked for it by sending ``X-Repro-Trace``.
        """
        # Reset per request: handler instances persist across keep-alive
        # requests, and an untraced request must not echo a stale header.
        self._response_trace = None
        ctx = teltrace.parse_trace_header(
            self.headers.get(teltrace.TRACE_HEADER)
        )
        if ctx is None:
            try:
                route()
            except Exception as exc:  # noqa: BLE001 - becomes the response
                self._fail(exc)
            return
        previous = tel.set_enabled(True)
        try:
            with tel.trace_context(ctx):
                with tel.span(
                    "serving.request", method=method, path=self.path
                ):
                    own = tel.current_context()
                    if own is not None:
                        self._response_trace = teltrace.format_trace_header(
                            own
                        )
                    try:
                        route()
                    except Exception as exc:  # noqa: BLE001
                        self._fail(exc)
        finally:
            tel.set_enabled(previous)

    # -- routes -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST", self._route_post)

    def _route_get(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(200, service.healthz())
        elif self.path == "/metrics":
            self._metrics(service)
        else:
            self._send_json(404, {"error": "not_found"})

    def _route_post(self) -> None:
        service = self.server.service
        if self.path == "/classify":
            self._send_json(200, self._classify(service))
        elif self.path == "/audit":
            self._send_json(200, self._audit(service))
        else:
            self._send_json(404, {"error": "not_found"})

    def _metrics(self, service: InferenceService) -> None:
        payload = service.metrics()
        accept = (self.headers.get("Accept") or "").lower()
        if "application/openmetrics-text" in accept or "text/plain" in accept:
            self._send_body(
                200, CONTENT_TYPE, render_service_metrics(payload).encode()
            )
        else:
            self._send_json(200, payload)

    def _classify(self, service: InferenceService) -> dict:
        payload = self._read_json()
        timeout = payload.get("timeout")
        if "input" in payload:
            prediction = service.classify(payload["input"], timeout=timeout)
            return {"prediction": prediction.to_dict()}
        if "inputs" in payload:
            predictions = service.classify_many(
                payload["inputs"], timeout=timeout
            )
            return {"predictions": [p.to_dict() for p in predictions]}
        raise ValueError("classify payload needs 'input' or 'inputs'")

    def _audit(self, service: InferenceService) -> dict:
        payload = self._read_json()
        specs = payload.get("attacks")
        if specs is None:
            spec = payload.get("attack")
            if spec is None:
                raise ValueError("audit payload needs 'attack' or 'attacks'")
            specs = [spec]
        if "inputs" not in payload or "labels" not in payload:
            raise ValueError("audit payload needs 'inputs' and 'labels'")
        return service.audit(
            specs,
            payload["inputs"],
            payload["labels"],
            epsilon=payload.get("epsilon"),
        )


class ServingServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`InferenceService`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: InferenceService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServingHandler)
        self.service = service
        self.verbose = verbose

    def shutdown_gracefully(self) -> None:
        """Stop accepting connections, then drain the service."""
        self.shutdown()
        self.server_close()
        self.service.close()


def start_server(
    service: InferenceService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    background: bool = True,
) -> ServingServer:
    """Bind and start serving; ``port=0`` picks an ephemeral port.

    With ``background=True`` the accept loop runs on a daemon thread and
    the (bound) server is returned immediately — the pattern tests and
    the smoke script use.  The CLI passes ``background=False`` and blocks
    in ``serve_forever``.
    """
    server = ServingServer((host, port), service, verbose=verbose)
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
    else:
        server.serve_forever()
    return server
