"""The inference + robustness-audit service behind ``repro serve``.

:class:`InferenceService` owns a trained classifier and exposes the four
operations the HTTP layer (and tests, which drive it in-process) need:

* :meth:`classify` / :meth:`classify_many` — single-example requests flow
  through an LRU **prediction cache** and, on a miss, the
  :class:`~repro.serving.batching.MicroBatcher`, which coalesces
  concurrent requests into one batched forward pass through the
  pooled-workspace kernels;
* :meth:`audit` — robust accuracy of the served model under any attack
  from the registry's ``name:param=value`` spec grammar;
* :meth:`healthz` / :meth:`metrics` — liveness and the process-wide
  telemetry snapshot (counters, gauges, histograms with p50/p90/p99).

Cache semantics
---------------
Keys are ``blake2b`` digests of the input's raw bytes plus shape/dtype,
scoped by a **model/policy signature** (digest of every parameter array,
the compute dtype, and the model name) computed once at construction.
The model is frozen while served, so a cached prediction is exactly the
array a cold forward pass of the same bytes produced — hits are returned
as copies and are bit-identical to the stored cold result.

Compiled-tape forward
---------------------
With ``use_tape=True`` (or ambient ``REPRO_COMPILED=1``) the batched
forward runs under :class:`repro.autograd.tape.CompiledStep`: batches are
zero-padded to a fixed shape so one traced variant replays every request
allocation-free, and ``consume=()`` dead-code-eliminates the entire
replayed backward — the tape executes forward entries only.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as tel
from ..attacks import build_attack, parse_attack_spec
from ..autograd import as_tensor, no_grad
from ..autograd.tape import CompiledStep
from ..eval.robustness import clean_accuracy, robust_accuracy
from ..nn import Module
from ..runtime import compiled_enabled, compute_dtype
from ..utils.lru import LRUCache
from .batching import MicroBatcher, RequestTimeout

__all__ = ["InferenceService", "Prediction"]


class Prediction:
    """One classify result: hard label, class probabilities, cache flag."""

    __slots__ = ("label", "probs", "cached")

    def __init__(self, label: int, probs: np.ndarray, cached: bool) -> None:
        self.label = label
        self.probs = probs
        self.cached = cached

    def to_dict(self) -> dict:
        """JSON-serialisable form used by the HTTP layer."""
        return {
            "label": self.label,
            "probs": [float(p) for p in self.probs],
            "cached": self.cached,
        }


def _softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, matching ``FeatureClassifier.predict_proba``."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class InferenceService:
    """Micro-batched, cached, backpressured serving of one classifier.

    Parameters
    ----------
    model:
        Trained classifier (switched to eval mode; must not be mutated
        while served — the prediction cache assumes frozen parameters).
    input_shape:
        Per-example shape the model expects (channels, height, width).
    max_batch_size / max_wait_us / queue_depth:
        Micro-batching window and admission bound, forwarded to
        :class:`~repro.serving.batching.MicroBatcher`.
    timeout_s:
        Default per-request deadline for :meth:`classify`.
    cache_size:
        Prediction-cache capacity in entries; 0 disables caching.
    use_tape:
        Run the batched forward as a compiled-tape replay.  ``None``
        (default) follows the ambient ``repro.runtime.compiled`` toggle.
    epsilon:
        Default perturbation budget for :meth:`audit` attack specs that
        do not name one.
    name:
        Model label reported by ``healthz`` and folded into the cache
        signature.
    """

    def __init__(
        self,
        model: Module,
        *,
        input_shape: Tuple[int, ...] = (1, 28, 28),
        max_batch_size: int = 32,
        max_wait_us: int = 2000,
        queue_depth: int = 256,
        timeout_s: float = 30.0,
        cache_size: int = 4096,
        use_tape: Optional[bool] = None,
        epsilon: float = 0.25,
        name: str = "model",
    ) -> None:
        model.eval()
        self._model = model
        self.input_shape = tuple(int(d) for d in input_shape)
        self.timeout_s = float(timeout_s)
        self.epsilon = float(epsilon)
        self.name = name
        self._dtype = np.dtype(compute_dtype())
        self.signature = self._model_signature()
        self._metrics = tel.get_metrics()
        self._started = time.time()
        self._cache: Optional[LRUCache] = (
            LRUCache(cache_size) if cache_size > 0 else None
        )
        self._cache_lock = threading.Lock()
        self._audit_lock = threading.Lock()
        if use_tape is None:
            use_tape = compiled_enabled()
        self._tape: Optional[CompiledStep] = None
        self._pad_buf: Optional[np.ndarray] = None
        if use_tape:
            # One traced variant serves every batch: pad to a fixed shape
            # and replay forward-only (consume=() DCEs the backward).
            self._tape = CompiledStep(
                self._tape_step, grad_inputs=(), consume=(),
                max_variants=1, name=f"serve-{name}",
            )
            self._pad_buf = np.zeros(
                (max_batch_size, *self.input_shape), dtype=self._dtype
            )
        self._batcher = MicroBatcher(
            self._infer_batch,
            max_batch_size=max_batch_size,
            max_wait_us=max_wait_us,
            queue_depth=queue_depth,
            name="classify",
        )

    # -- signatures and keys ---------------------------------------------
    def _model_signature(self) -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.name.encode())
        digest.update(self._dtype.str.encode())
        for key, value in sorted(self._model.state_dict().items()):
            digest.update(key.encode())
            digest.update(np.ascontiguousarray(value).tobytes())
        return digest.hexdigest()

    def _cache_key(self, example: np.ndarray) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.signature.encode())
        digest.update(str(example.dtype).encode())
        digest.update(str(example.shape).encode())
        digest.update(example.tobytes())
        return digest.digest()

    # -- input coercion ---------------------------------------------------
    def coerce(self, data) -> np.ndarray:
        """Coerce one example to the model's input shape and dtype.

        Accepts the exact per-example shape or anything with the right
        number of elements (e.g. a flat 784-vector for 1x28x28 inputs).
        """
        arr = np.asarray(data, dtype=self._dtype)
        if arr.shape != self.input_shape:
            expected = int(np.prod(self.input_shape))
            if arr.size != expected:
                raise ValueError(
                    f"input has {arr.size} elements; expected shape "
                    f"{self.input_shape} ({expected} elements)"
                )
            arr = arr.reshape(self.input_shape)
        return np.ascontiguousarray(arr)

    def coerce_batch(self, data) -> np.ndarray:
        """Coerce a batch to ``(N, *input_shape)``."""
        arr = np.asarray(data, dtype=self._dtype)
        if arr.ndim == 1 or arr.shape[1:] != self.input_shape:
            per = int(np.prod(self.input_shape))
            if arr.ndim < 2 or arr.shape[0] * per != arr.size:
                raise ValueError(
                    f"batch shape {arr.shape} does not match per-example "
                    f"shape {self.input_shape}"
                )
            arr = arr.reshape((arr.shape[0], *self.input_shape))
        return np.ascontiguousarray(arr)

    # -- the batched forward ----------------------------------------------
    def _tape_step(self, x):
        logits = self._model(x)
        # The tape needs a scalar loss to seed tracing; consume=() strips
        # the replayed backward so the sum costs one reduction per batch.
        return logits.sum(), logits

    def _forward(self, x: np.ndarray) -> np.ndarray:
        if self._tape is not None:
            n = x.shape[0]
            padded = self._pad_buf
            if n > padded.shape[0]:  # direct classify_many over-batch
                padded = np.zeros(
                    (n, *self.input_shape), dtype=self._dtype
                )
            padded[:n] = x
            padded[n:] = 0.0
            result = self._tape(padded)
            if not result.compiled:
                # The trace ran eagerly, including a backward pass whose
                # parameter gradients serving must not leak.
                self._model.zero_grad()
            return result.outputs[1][:n]
        with no_grad():
            return self._model(as_tensor(x)).data

    def _infer_batch(self, payloads: Sequence[np.ndarray]) -> List[Tuple]:
        x = np.stack(payloads).astype(self._dtype, copy=False)
        logits = self._forward(x)
        probs = _softmax(logits)
        labels = np.argmax(logits, axis=1)
        return [
            (int(labels[i]), probs[i].copy()) for i in range(len(payloads))
        ]

    # -- classify ---------------------------------------------------------
    def classify(self, data, timeout: Optional[float] = None) -> Prediction:
        """Serve one example: cache lookup, then the micro-batched path.

        Raises :class:`~repro.serving.batching.QueueFullError` when shed,
        :class:`~repro.serving.batching.RequestTimeout` past the deadline
        and :class:`~repro.serving.batching.ServiceClosed` after
        :meth:`close`.
        """
        started = time.perf_counter()
        example = self.coerce(data)
        key = self._cache_key(example)
        cached = self._cache_get(key)
        if cached is not None:
            label, probs = cached
            self._observe_request(started, cached=True)
            return Prediction(label, probs.copy(), True)
        label, probs = self._batcher.run(
            example, self.timeout_s if timeout is None else timeout
        )
        self._cache_put(key, (label, probs))
        self._observe_request(started, cached=False)
        return Prediction(label, probs.copy(), False)

    def classify_many(
        self, data, timeout: Optional[float] = None
    ) -> List[Prediction]:
        """Serve a client-side batch.

        Each example is admitted individually — cache hits are answered
        immediately and misses coalesce with whatever else is in flight —
        then all results are gathered under one deadline.
        """
        batch = self.coerce_batch(data)
        deadline = time.perf_counter() + (
            self.timeout_s if timeout is None else timeout
        )
        pending: List[Tuple[int, bytes, object]] = []
        results: List[Optional[Prediction]] = [None] * batch.shape[0]
        for index in range(batch.shape[0]):
            started = time.perf_counter()
            example = np.ascontiguousarray(batch[index])
            key = self._cache_key(example)
            hit = self._cache_get(key)
            if hit is not None:
                label, probs = hit
                results[index] = Prediction(label, probs.copy(), True)
                self._observe_request(started, cached=True)
            else:
                pending.append((index, key, self._batcher.submit(example)))
        for index, key, future in pending:
            remaining = max(deadline - time.perf_counter(), 0.0)
            try:
                label, probs = future.result(remaining)
            except TimeoutError:
                raise RequestTimeout(
                    "classify: no result within the batch deadline"
                ) from None
            self._cache_put(key, (label, probs))
            results[index] = Prediction(label, probs.copy(), False)
            self._observe_request(deadline, cached=False, skip_latency=True)
        return results  # type: ignore[return-value]

    def _cache_get(self, key):
        cache = self._cache
        if cache is None:
            return None
        with self._cache_lock:
            value = cache.get(key)
        self._metrics.inc(
            "serving.cache.hits" if value is not None
            else "serving.cache.misses"
        )
        return value

    def _cache_put(self, key, value) -> None:
        cache = self._cache
        if cache is None:
            return
        with self._cache_lock:
            cache.put(key, value)

    def _observe_request(
        self, started: float, *, cached: bool, skip_latency: bool = False
    ) -> None:
        self._metrics.inc("serving.requests")
        if cached:
            self._metrics.inc("serving.requests.cached")
        if not skip_latency:
            self._metrics.observe(
                "serving.request_latency_ms",
                (time.perf_counter() - started) * 1000.0,
            )

    # -- audit ------------------------------------------------------------
    def audit(
        self,
        attacks: Sequence[str],
        x,
        y,
        *,
        epsilon: Optional[float] = None,
        batch_size: int = 64,
    ) -> dict:
        """Robust accuracy of the served model under attack specs.

        ``attacks`` are registry spec strings (``"pgd:num_steps=10"``);
        the clean/none spec reports clean accuracy.  Audits serialise on
        one lock — they run full forward/backward attack loops and must
        not starve the classify path of admission capacity (they bypass
        the classify queue entirely).
        """
        batch = self.coerce_batch(x)
        labels = np.asarray(y, dtype=np.int64)
        if labels.shape[0] != batch.shape[0]:
            raise ValueError(
                f"got {labels.shape[0]} labels for {batch.shape[0]} inputs"
            )
        budget = self.epsilon if epsilon is None else float(epsilon)
        started = time.perf_counter()
        rows = {}
        with self._audit_lock:
            for spec in attacks:
                parsed = parse_attack_spec(spec)
                attack = build_attack(parsed, self._model, epsilon=budget)
                if attack is None:
                    accuracy = clean_accuracy(
                        self._model, batch, labels, batch_size=batch_size
                    )
                else:
                    accuracy = robust_accuracy(
                        self._model, attack, batch, labels,
                        batch_size=batch_size,
                    )
                rows[parsed.render()] = float(accuracy)
            # Attack backward passes accumulate parameter gradients the
            # serving model must not carry around.
            self._model.zero_grad()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._metrics.inc("serving.audits")
        self._metrics.observe("serving.audit_latency_ms", elapsed_ms)
        return {
            "model": self.name,
            "signature": self.signature,
            "epsilon": budget,
            "examples": int(batch.shape[0]),
            "robust_accuracy": rows,
            "elapsed_ms": elapsed_ms,
        }

    # -- introspection -----------------------------------------------------
    def healthz(self) -> dict:
        """Liveness payload for load balancers and the smoke tests."""
        stats = self._batcher.stats
        return {
            "status": "shutting_down" if stats["closed"] else "ok",
            "model": self.name,
            "signature": self.signature,
            "dtype": self._dtype.name,
            "uptime_s": time.time() - self._started,
            "queue_depth": stats["queue_depth"],
            "queue_capacity": self._batcher.queue_depth,
        }

    def metrics(self) -> dict:
        """Full metrics payload: registry snapshot + serving-local stats."""
        with self._cache_lock:
            cache_stats = (
                self._cache.stats if self._cache is not None
                else {"hits": 0, "misses": 0, "size": 0, "capacity": 0}
            )
        return {
            "metrics": self._metrics.snapshot(),
            "batcher": self._batcher.stats,
            "cache": cache_stats,
            "tape": self._tape.stats if self._tape is not None else None,
        }

    # -- lifecycle ---------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: drain in-flight requests, release the tape."""
        self._batcher.close(timeout)
        if self._tape is not None:
            self._tape.reset()

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
