"""Observability layer: tracing spans, metrics, events, sinks, reports.

Zero-dependency instrumentation shared by every layer of the stack::

    from repro import telemetry as tel

    with tel.capture(jsonl="run.jsonl"):
        with tel.span("epoch", emit=True, trainer="proposed", epoch=0):
            with tel.span("forward"):
                ...
        tel.counter("attack.early_stop.retired", 12)
        tel.gauge("workspace.pool.bytes", 1 << 20)

Spans keep a thread-local stack and fold their durations into their
parents, so one per-epoch record carries the whole phase breakdown.
Counters/gauges/histograms accumulate in a process-wide registry that is
snapshotted into the run record when a :func:`capture` scope closes.
Records flow to pluggable sinks (in-memory, JSONL, console/CSV summary);
``repro report run.jsonl`` renders a captured run into the Table-I-style
per-epoch/per-phase timing table.

Telemetry is **disabled by default** (the instrumented hot paths cost only
a guarded no-op call); enable it with :func:`capture`, :func:`set_enabled`
or ``REPRO_TELEMETRY=1``.
"""

from .core import (
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    Span,
    Stopwatch,
    TraceContext,
    add_sink,
    capture,
    counter,
    current_context,
    current_span,
    enabled,
    event,
    gauge,
    get_metrics,
    observe,
    remove_sink,
    reset_metrics,
    set_enabled,
    span,
    trace_context,
)
from .report import RunReport, build_report, render_report
from .sinks import (
    ConsoleEvents,
    InMemorySink,
    JsonlSink,
    Sink,
    SummarySink,
    load_records,
)
from .bench import (
    BenchRecord,
    diff_records,
    load_bench_dir,
    render_diff,
)
from .profiler import DEFAULT_HZ, SamplingProfiler
from .trace import (
    TRACE_HEADER,
    TraceCollector,
    format_trace_header,
    parse_trace_header,
    render_trace,
)

__all__ = [
    "Stopwatch",
    "Span",
    "NULL_SPAN",
    "span",
    "current_span",
    "enabled",
    "set_enabled",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "observe",
    "get_metrics",
    "reset_metrics",
    "event",
    "add_sink",
    "remove_sink",
    "capture",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "ConsoleEvents",
    "SummarySink",
    "load_records",
    "RunReport",
    "build_report",
    "render_report",
    "TraceContext",
    "current_context",
    "trace_context",
    "TRACE_HEADER",
    "TraceCollector",
    "format_trace_header",
    "parse_trace_header",
    "render_trace",
    "SamplingProfiler",
    "DEFAULT_HZ",
    "BenchRecord",
    "load_bench_dir",
    "diff_records",
    "render_diff",
]
