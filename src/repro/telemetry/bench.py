"""Perf-regression tracking: structured bench records and baseline diffs.

The ``benchmarks/`` gates have always written human-readable ``.txt``
snapshots into ``benchmarks/results/`` — fine for reading, useless for
*detecting* decay: nothing compared a fresh run against the committed
numbers.  This module adds the machine half:

* :class:`BenchRecord` — one benchmark's metrics in a stable JSON schema,
  written as ``<name>.bench.json`` beside the ``.txt`` snapshot;
* :func:`diff_records` / :func:`render_diff` — compare a directory of
  fresh records against the committed baselines with a configurable
  tolerance, classifying each metric as ok / improved / **regression**;
* the ``repro bench diff`` CLI (see :mod:`repro.cli`) wires this into CI
  so a throughput or speedup regression fails the build loudly.

Schema
------
.. code-block:: json

    {"schema": 1,
     "name": "serving_throughput",
     "created": 1754500000.0,
     "context": {"dtype": "float64", "scale": "smoke"},
     "metrics": {"examples_per_s": {"value": 5719.9,
                                    "unit": "examples/s",
                                    "direction": "higher"}}}

``direction`` declares which way is better: ``"higher"`` (throughput,
speedup), ``"lower"`` (latency, overhead) or ``null`` (informational —
never gated).  A metric regresses when it moves past the tolerance in
its *worse* direction; moves in the better direction are reported as
improvements, not failures (ratchet the baseline by re-running the bench
and committing the new record).
"""

from __future__ import annotations

import glob
import json
import os
import time
from typing import Dict, List, Optional

__all__ = [
    "BENCH_SUFFIX",
    "BenchRecord",
    "load_bench_dir",
    "diff_records",
    "render_diff",
    "DiffRow",
]

BENCH_SUFFIX = ".bench.json"

_DIRECTIONS = ("higher", "lower", None)


class BenchRecord:
    """One benchmark run's metrics, serialisable to ``<name>.bench.json``."""

    def __init__(
        self,
        name: str,
        metrics: Optional[Dict[str, dict]] = None,
        context: Optional[dict] = None,
        created: Optional[float] = None,
    ) -> None:
        self.name = name
        self.metrics: Dict[str, dict] = {}
        self.context = dict(context or {})
        self.created = time.time() if created is None else float(created)
        for metric, spec in (metrics or {}).items():
            self.add(metric, **spec)

    def add(
        self,
        metric: str,
        value: float,
        unit: str = "",
        direction: Optional[str] = None,
    ) -> "BenchRecord":
        """Record one metric; ``direction`` is higher/lower/None-better."""
        if direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be 'higher', 'lower' or None, "
                f"got {direction!r}"
            )
        self.metrics[metric] = {
            "value": float(value), "unit": unit, "direction": direction,
        }
        return self

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "name": self.name,
            "created": self.created,
            "context": self.context,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchRecord":
        record = cls(
            payload["name"],
            context=payload.get("context"),
            created=payload.get("created"),
        )
        for metric, spec in payload.get("metrics", {}).items():
            record.add(
                metric,
                spec["value"],
                unit=spec.get("unit", ""),
                direction=spec.get("direction"),
            )
        return record

    def save(self, directory: str) -> str:
        """Write ``<directory>/<name>.bench.json``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.name}{BENCH_SUFFIX}")
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "BenchRecord":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def load_bench_dir(directory: str) -> Dict[str, BenchRecord]:
    """Every ``*.bench.json`` under ``directory``, keyed by bench name."""
    records: Dict[str, BenchRecord] = {}
    for path in sorted(glob.glob(os.path.join(directory, f"*{BENCH_SUFFIX}"))):
        record = BenchRecord.load(path)
        records[record.name] = record
    return records


class DiffRow:
    """One metric's baseline-vs-current comparison."""

    __slots__ = (
        "bench", "metric", "baseline", "current", "unit",
        "direction", "change", "status",
    )

    def __init__(self, bench, metric, baseline, current, unit,
                 direction, change, status) -> None:
        self.bench = bench
        self.metric = metric
        self.baseline = baseline
        self.current = current
        self.unit = unit
        self.direction = direction
        self.change = change
        self.status = status


def _classify(
    baseline: float, current: float, direction: Optional[str],
    tolerance: float,
) -> str:
    if direction is None:
        return "info"
    if baseline == 0.0:
        # No meaningful ratio; only flag a directional move off zero.
        worse = current < 0 if direction == "higher" else current > 0
        return "regression" if worse else "ok"
    change = (current - baseline) / abs(baseline)
    if direction == "higher":
        if change < -tolerance:
            return "regression"
        return "improved" if change > tolerance else "ok"
    if change > tolerance:
        return "regression"
    return "improved" if change < -tolerance else "ok"


def diff_records(
    baseline: Dict[str, BenchRecord],
    current: Dict[str, BenchRecord],
    tolerance: float = 0.10,
) -> List[DiffRow]:
    """Compare current records against baselines, metric by metric.

    A bench present in the baselines but absent from the current run is
    *skipped* (status ``missing``, never failing): bench lanes run
    different subsets per CI job, and an unrun bench is not a regression.
    Unknown current-only benches are ignored for the same reason — they
    gain a baseline when their record is committed.
    """
    rows: List[DiffRow] = []
    for name in sorted(baseline):
        base_record = baseline[name]
        cur_record = current.get(name)
        for metric in sorted(base_record.metrics):
            spec = base_record.metrics[metric]
            cur_spec = (
                cur_record.metrics.get(metric)
                if cur_record is not None else None
            )
            if cur_spec is None:
                rows.append(DiffRow(
                    name, metric, spec["value"], None, spec.get("unit", ""),
                    spec.get("direction"), None, "missing",
                ))
                continue
            base_value = spec["value"]
            cur_value = cur_spec["value"]
            change = (
                (cur_value - base_value) / abs(base_value)
                if base_value else None
            )
            rows.append(DiffRow(
                name, metric, base_value, cur_value, spec.get("unit", ""),
                spec.get("direction"),
                change,
                _classify(
                    base_value, cur_value, spec.get("direction"), tolerance
                ),
            ))
    return rows


def render_diff(rows: List[DiffRow], tolerance: float = 0.10) -> str:
    """Human-readable diff table with a pass/fail verdict line."""
    if not rows:
        return "bench diff: no baseline records found"
    header = (
        f"{'bench':<28} {'metric':<24} {'baseline':>12} "
        f"{'current':>12} {'change':>8}  status"
    )
    lines = [header, "-" * len(header)]
    regressions = 0
    for row in rows:
        current = "-" if row.current is None else f"{row.current:.4g}"
        change = "-" if row.change is None else f"{row.change:+.1%}"
        lines.append(
            f"{row.bench:<28} {row.metric:<24} {row.baseline:>12.4g} "
            f"{current:>12} {change:>8}  {row.status}"
        )
        if row.status == "regression":
            regressions += 1
    compared = sum(1 for row in rows if row.status != "missing")
    if regressions:
        lines.append(
            f"FAIL: {regressions} regression(s) past the "
            f"{tolerance:.0%} tolerance ({compared} metric(s) compared)"
        )
    else:
        lines.append(
            f"ok: no regressions past the {tolerance:.0%} tolerance "
            f"({compared} metric(s) compared)"
        )
    return "\n".join(lines)
