"""Core telemetry primitives: stopwatches, spans, metrics, events.

This module is deliberately **zero-dependency** (standard library only) and
imports nothing from the rest of :mod:`repro`, so every layer of the stack —
autograd kernels, the attack engine, trainers, the CLI — can instrument
itself without import cycles.

Design
------
* **Spans** (:func:`span`) are hierarchical wall-clock regions kept on a
  thread-local stack.  A finished span folds its duration into its parent's
  per-path aggregation (``"forward"``, ``"forward/attack"``, ...), so a
  single top-level span record carries the whole phase breakdown of the
  region it covers.  Root spans (and spans created with ``emit=True``) are
  dispatched to the attached sinks as ``{"type": "span", ...}`` records.
* **Metrics** (:func:`counter`, :func:`gauge`, :func:`observe`) accumulate
  into a process-wide :class:`MetricsRegistry`; :func:`capture` emits a
  ``{"type": "metrics", ...}`` snapshot record when the run ends.
* **Events** (:func:`event`) are rare, discrete happenings (a checkpoint
  written, early stopping triggered).  They are dispatched to sinks even
  when telemetry is disabled — with no sinks attached they cost a single
  truthiness check.

Disabled mode
-------------
Telemetry is **off by default** (enable per-thread with :func:`set_enabled`
/ :func:`capture`, or process-wide with ``REPRO_TELEMETRY=1``).  While
disabled, :func:`span` returns a shared no-op singleton and the metric
functions return immediately, so instrumented hot loops pay only a function
call and an attribute check per site — the overhead gate in
``benchmarks/bench_telemetry.py`` keeps this under 2% of an epochwise-adv
training epoch.
"""

from __future__ import annotations

import bisect
import contextlib
import os
import random
import threading
import time
from typing import Dict, Iterator, List, NamedTuple, Optional

__all__ = [
    "Stopwatch",
    "Span",
    "span",
    "current_span",
    "enabled",
    "set_enabled",
    "TraceContext",
    "current_context",
    "trace_context",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "observe",
    "get_metrics",
    "reset_metrics",
    "event",
    "add_sink",
    "remove_sink",
    "capture",
]


# ----------------------------------------------------------------------
# Stopwatch: the timing primitive spans (and repro.utils.Timer) share.
# ----------------------------------------------------------------------

class Stopwatch:
    """Reusable ``perf_counter`` stopwatch with segment accumulation.

    ``elapsed`` holds the duration of the most recent completed segment;
    ``total`` accumulates every completed segment.  Usable as a context
    manager; exiting a stopwatch that is not running raises, exactly like
    calling :meth:`stop` before :meth:`start` (unless an exception is
    already propagating, which is never masked).
    """

    __slots__ = ("_start", "elapsed", "total")

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0
        self.total: float = 0.0

    @property
    def running(self) -> bool:
        """Whether a segment is currently being timed."""
        return self._start is not None

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop, accumulate into ``total``, and return the segment seconds."""
        if self._start is None:
            raise RuntimeError(
                f"{type(self).__name__}.stop() called before start()"
            )
        self.elapsed = time.perf_counter() - self._start
        self.total += self.elapsed
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated total and last-segment reading."""
        self._start = None
        self.elapsed = 0.0
        self.total = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is None and exc_type is not None:
            return  # unbalanced, but never mask the in-flight exception
        self.stop()


# ----------------------------------------------------------------------
# Thread-local state: enabled flag + span stack.
# ----------------------------------------------------------------------

def _default_enabled() -> bool:
    value = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    return value in ("1", "true", "on", "yes")


class _TelemetryState(threading.local):
    """Per-thread span stack + enabled flag (mirrors the precision stack)."""

    def __init__(self) -> None:
        self.stack: List["Span"] = []
        self.enabled = _default_enabled()
        self.remote: Optional["TraceContext"] = None


_state = _TelemetryState()

#: thread ident -> name of that thread's innermost active span.  Written by
#: :meth:`Span.__enter__`/`__exit__` (enabled mode only) and read by the
#: sampling profiler, which runs on its own thread and cannot reach the
#: thread-local span stacks.  Plain dict: single-opcode updates under the
#: GIL, and the profiler tolerates a momentarily stale entry.
_active_spans: Dict[int, str] = {}


def enabled() -> bool:
    """Whether spans/metrics are being recorded on this thread."""
    return _state.enabled


def set_enabled(value: bool) -> bool:
    """Enable/disable telemetry for this thread; returns the previous flag."""
    previous = _state.enabled
    _state.enabled = bool(value)
    return previous


def current_span() -> Optional["Span"]:
    """The innermost active span on this thread, or ``None``."""
    stack = _state.stack
    return stack[-1] if stack else None


# ----------------------------------------------------------------------
# Trace identity.
# ----------------------------------------------------------------------

def _new_id() -> str:
    """A 64-bit hex id (W3C-trace-context-sized, stdlib ``random``)."""
    return f"{random.getrandbits(64):016x}"


class TraceContext(NamedTuple):
    """Propagatable trace identity: ``(trace_id, span_id)``.

    ``trace_id`` names the whole distributed trace; ``span_id`` the span
    new root spans should parent on.  The tuple travels over worker
    control pipes, thread handoffs and the ``X-Repro-Trace`` HTTP header
    (see :mod:`repro.telemetry.trace` for the header codec).
    """

    trace_id: str
    span_id: str


def current_context() -> Optional[TraceContext]:
    """The trace context new remote/child work should parent on.

    Walks this thread's span stack innermost-first for the nearest span
    that will *emit* a record (nested ``emit=None`` spans only fold into
    their parents — parenting on them would dangle); falls back to the
    remote context activated by :func:`trace_context`, then ``None``.
    """
    stack = _state.stack
    for open_span in reversed(stack):
        if open_span._will_emit():
            return TraceContext(
                open_span._resolve_trace_id(), open_span.span_id
            )
    return _state.remote


@contextlib.contextmanager
def trace_context(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Adopt a remote trace context for this thread's new root spans.

    Workers, serving threads and the prefetch producer wrap their work in
    this scope so root spans they open join the caller's trace instead of
    starting their own.  ``None`` is accepted (no-op scope) so call sites
    need no conditional.
    """
    previous = _state.remote
    if ctx is not None:
        _state.remote = TraceContext(*ctx)
    try:
        yield
    finally:
        _state.remote = previous


# ----------------------------------------------------------------------
# Spans.
# ----------------------------------------------------------------------

class Span:
    """One timed region; aggregates descendant durations by path.

    ``children`` maps a slash-joined descendant path (relative to this
    span) to ``[count, total_seconds]``; direct children are the paths
    without a ``"/"``.  ``self_seconds`` is the time not attributed to any
    direct child.
    """

    __slots__ = (
        "name", "attrs", "emit", "children", "duration", "wall_start",
        "_watch", "trace_id", "_span_id", "_parent_span", "_remote",
    )

    def __init__(
        self, name: str, emit: Optional[bool] = None, attrs: Optional[dict] = None
    ) -> None:
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.emit = emit
        self.children: Dict[str, List[float]] = {}
        self.duration: float = 0.0
        self.wall_start: float = 0.0
        self._watch = Stopwatch()
        # Trace identity: ids are generated lazily (only spans that emit,
        # or are asked for their context, ever pay for one).  The parent
        # reference chain is captured at __enter__ so ids resolve even
        # after the stack has been popped.
        self.trace_id: Optional[str] = None
        self._span_id: Optional[str] = None
        self._parent_span: Optional["Span"] = None
        self._remote: Optional[TraceContext] = None

    def note(self, **attrs) -> "Span":
        """Attach result attributes (loss, accuracy, ...) to the record."""
        self.attrs.update(attrs)
        return self

    # -- trace identity ------------------------------------------------
    @property
    def span_id(self) -> str:
        """This span's id, generated on first access."""
        sid = self._span_id
        if sid is None:
            sid = self._span_id = _new_id()
        return sid

    def _will_emit(self) -> bool:
        """Whether this (entered) span will dispatch a record on exit."""
        if self.emit is not None:
            return self.emit
        return self._parent_span is None

    def _resolve_trace_id(self) -> str:
        """Trace id shared by this span's whole local tree.

        Walks to the local root; the root inherits the adopted remote
        context's trace, else mints a fresh one (cached on the root so
        every descendant resolves identically).
        """
        node = self
        while node._parent_span is not None:
            node = node._parent_span
        tid = node.trace_id
        if tid is None:
            remote = node._remote
            tid = remote.trace_id if remote is not None else _new_id()
            node.trace_id = tid
        return tid

    def _resolve_parent_id(self) -> Optional[str]:
        """Span id of the nearest *emitting* ancestor (local or remote)."""
        node = self._parent_span
        while node is not None:
            if node._will_emit():
                return node.span_id
            if node._parent_span is None:
                break
            node = node._parent_span
        remote = node._remote if node is not None else self._remote
        return remote.span_id if remote is not None else None

    def _fold(self, path: str, count: float, total: float) -> None:
        entry = self.children.get(path)
        if entry is None:
            self.children[path] = [count, total]
        else:
            entry[0] += count
            entry[1] += total

    @property
    def self_seconds(self) -> float:
        """Duration minus the total of all direct children."""
        return self.duration - sum(
            total for path, (_n, total) in self.children.items()
            if "/" not in path
        )

    def __enter__(self) -> "Span":
        self.wall_start = time.time()
        stack = _state.stack
        if stack:
            self._parent_span = stack[-1]
        else:
            self._remote = _state.remote
        stack.append(self)
        _active_spans[threading.get_ident()] = self.name
        self._watch.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = self._watch.stop() if self._watch.running else 0.0
        stack = _state.stack
        if stack and stack[-1] is self:
            stack.pop()
        parent = stack[-1] if stack else None
        ident = threading.get_ident()
        if parent is not None:
            parent._fold(self.name, 1, self.duration)
            for path, (count, total) in self.children.items():
                parent._fold(f"{self.name}/{path}", count, total)
            _active_spans[ident] = parent.name
        else:
            _active_spans.pop(ident, None)
        should_emit = self.emit if self.emit is not None else parent is None
        if should_emit and _sinks:
            _dispatch(self.to_record())

    def to_record(self) -> dict:
        """The JSONL-serialisable form of this (finished) span."""
        return {
            "type": "span",
            "name": self.name,
            "ts": self.wall_start,
            "duration": self.duration,
            "self": self.self_seconds,
            "trace_id": self._resolve_trace_id(),
            "span_id": self.span_id,
            "parent_id": self._resolve_parent_id(),
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
            "children": {
                path: {"count": count, "total": total}
                for path, (count, total) in self.children.items()
            },
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared no-op span handed out while telemetry is disabled."""

    __slots__ = ()

    duration = 0.0
    self_seconds = 0.0
    children: Dict[str, List[float]] = {}
    attrs: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def note(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


def span(name: str, emit: Optional[bool] = None, **attrs):
    """Open a timed region (use as a context manager).

    ``emit=None`` (the default) dispatches the finished span to sinks only
    when it has no parent; pass ``emit=True`` to force a record for nested
    spans of interest (trainers do this for per-epoch records) or
    ``emit=False`` to aggregate silently.  Returns a shared no-op object
    while telemetry is disabled.
    """
    if not _state.enabled:
        return NULL_SPAN
    return Span(name, emit=emit, attrs=attrs)


# ----------------------------------------------------------------------
# Metrics: counters, gauges, histograms.
# ----------------------------------------------------------------------

#: Log-spaced bucket upper bounds shared by every histogram: 8 buckets per
#: decade from 1e-7 to 1e7 (covers sub-microsecond spans through multi-day
#: totals).  Values at or below the smallest bound (including zero and
#: negatives) land in the underflow bucket; values above the largest in the
#: overflow bucket.  A class-level constant so per-instance cost is one
#: lazily allocated count list.
_BUCKET_BOUNDS = tuple(10.0 ** (exponent / 8.0) for exponent in range(-56, 57))


class Histogram:
    """Streaming summary of observed values: count/total/min/max/mean.

    Beyond the scalar summary, observations are folded into fixed
    log-spaced buckets (:data:`_BUCKET_BOUNDS`), giving streaming quantile
    estimates (:meth:`quantile`, surfaced as p50/p90/p99) with constant
    memory and one binary search per observation.  Estimates are exact at
    the observed ``min``/``max`` and interpolate linearly inside a bucket,
    so the relative error is bounded by the bucket width (~33%, one eighth
    of a decade) in the worst case and far smaller in practice.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._buckets: Optional[List[int]] = None

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        buckets = self._buckets
        if buckets is None:
            buckets = self._buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
        buckets[bisect.bisect_left(_BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Streaming estimate of the ``q``-quantile (``0 <= q <= 1``).

        Returns 0.0 before any observation.  The estimate walks the
        cumulative bucket counts to the target rank and interpolates
        linearly between the bucket's bounds, clamped to the exact
        observed ``min``/``max``.
        """
        if not self.count:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self._buckets):
            if not bucket_count:
                continue
            cumulative += bucket_count
            if cumulative >= target:
                lower = _BUCKET_BOUNDS[index - 1] if index > 0 else self.min
                upper = (
                    _BUCKET_BOUNDS[index]
                    if index < len(_BUCKET_BOUNDS) else self.max
                )
                fraction = (
                    1.0 - (cumulative - target) / bucket_count
                    if bucket_count else 1.0
                )
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min), self.max)
        return self.max

    def to_dict(self) -> dict:
        """JSON-serialisable summary (with p50/p90/p99 estimates)."""
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Process-wide store for counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest value."""
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the histogram ``name``."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    def snapshot(self) -> dict:
        """A JSON-serialisable copy of every metric."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in self.histograms.items()
                },
            }

    def reset(self) -> None:
        """Drop every metric (start of a capture scope, tests)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _metrics


def reset_metrics() -> None:
    """Clear the process-wide metrics registry."""
    _metrics.reset()


def counter(name: str, value: float = 1.0) -> None:
    """Increment a counter (no-op while telemetry is disabled)."""
    if _state.enabled:
        _metrics.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Record a gauge's latest value (no-op while disabled)."""
    if _state.enabled:
        _metrics.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Add one histogram observation (no-op while disabled)."""
    if _state.enabled:
        _metrics.observe(name, value)


# ----------------------------------------------------------------------
# Sinks and events.
# ----------------------------------------------------------------------

_sinks: List[object] = []
_sinks_lock = threading.Lock()


def add_sink(sink) -> None:
    """Attach a sink; it receives every span/event/metrics record."""
    with _sinks_lock:
        _sinks.append(sink)


def remove_sink(sink) -> None:
    """Detach a previously attached sink (missing sinks are ignored)."""
    with _sinks_lock:
        try:
            _sinks.remove(sink)
        except ValueError:
            pass


def _dispatch(record: dict) -> None:
    for sink in tuple(_sinks):
        sink.emit(record)


def event(name: str, **fields) -> None:
    """Emit a discrete event record (``checkpoint.saved``, ...).

    Events bypass the enabled flag: they are rare, and sinks like the
    verbose trainer's console printer want them even when span/metric
    recording is off.  With no sinks attached this is a single check.
    """
    if not _sinks:
        return
    _dispatch({
        "type": "event",
        "name": name,
        "ts": time.time(),
        "fields": fields,
    })


# ----------------------------------------------------------------------
# Fork safety.
# ----------------------------------------------------------------------

def _reset_after_fork() -> None:
    """Reset telemetry state in a freshly forked child.

    A fork can happen while another thread holds the metrics or sink lock
    — the child would inherit a lock that is never released (the owning
    thread does not exist there), deadlocking its first counter update.
    Both locks are therefore recreated.  The span stack is cleared (spans
    opened in the parent will be exited there, not here), sinks are
    detached (a child writing to the parent's JSONL file would interleave
    records mid-line) and the metrics registry starts empty so worker
    processes report their own deltas.  The enabled flag is configuration
    and is inherited unchanged.
    """
    global _sinks_lock
    _state.stack = []
    _state.remote = None
    _active_spans.clear()
    _sinks_lock = threading.Lock()
    del _sinks[:]
    _metrics._lock = threading.Lock()
    _metrics.reset()


os.register_at_fork(after_in_child=_reset_after_fork)


# ----------------------------------------------------------------------
# Capture scope: enable + attach sinks + emit the run's metric snapshot.
# ----------------------------------------------------------------------

@contextlib.contextmanager
def capture(
    jsonl: Optional[str] = None,
    sink=None,
    reset: bool = True,
    trace_dir: Optional[str] = None,
) -> Iterator[List[object]]:
    """Record one run: enable telemetry and attach sinks for the scope.

    Parameters
    ----------
    jsonl:
        Optional path; attaches a :class:`~repro.telemetry.sinks.JsonlSink`
        writing every record as one JSON line.
    sink:
        Optional extra sink object (e.g. an in-memory sink in tests).
    reset:
        Clear the metrics registry on entry so the end-of-run snapshot
        describes exactly this scope.
    trace_dir:
        Spool directory for span records emitted by *other* processes
        (forked workers) during this scope.  Defaults to
        ``<jsonl>.spool`` when ``jsonl`` is given; the directory is only
        created if a worker actually emits.  ``repro report --trace``
        merges the run record with these spool files into cross-process
        traces.

    On exit a ``{"type": "metrics", ...}`` snapshot record is dispatched,
    sinks opened here are closed, and the enabled flag is restored.
    Yields the list of sinks attached by this scope.
    """
    from . import trace as trace_module  # local: keeps core free-standing
    from .sinks import JsonlSink

    attached = []
    if jsonl is not None:
        attached.append(JsonlSink(jsonl))
        if trace_dir is None:
            trace_dir = f"{jsonl}.spool"
    if sink is not None:
        attached.append(sink)
    if reset:
        _metrics.reset()
    previous = set_enabled(True)
    previous_spool = trace_module.set_spool_dir(trace_dir)
    for item in attached:
        add_sink(item)
    try:
        yield attached
    finally:
        snapshot = _metrics.snapshot()
        _dispatch({"type": "metrics", "ts": time.time(), **snapshot})
        set_enabled(previous)
        trace_module.set_spool_dir(previous_spool)
        for item in attached:
            remove_sink(item)
            close = getattr(item, "close", None)
            if close is not None:
                close()
