"""OpenMetrics / Prometheus text exposition for the metrics registry.

Standard scrapers speak the `OpenMetrics text format
<https://prometheus.io/docs/specs/om/open_metrics_spec/>`_, not our JSON
snapshot, so ``GET /metrics`` on :mod:`repro.serving.http` content-
negotiates: JSON stays the default, and an ``Accept`` header naming
``application/openmetrics-text`` or ``text/plain`` gets this rendering.

Mapping
-------
* registry **counters** → OpenMetrics ``counter`` families
  (``<name>_total`` samples);
* registry **gauges** (plus serving-local batcher/cache stats) →
  ``gauge`` families;
* registry **histograms** → ``summary`` families: ``quantile``-labelled
  p50/p90/p99 estimates plus ``_count``/``_sum`` (the streaming
  log-bucketed histogram keeps no exact bucket bounds worth exposing).

Dotted repro metric names (``serving.cache.hits``) become legal metric
names by mapping every illegal character to ``_``; everything is prefixed
``repro_`` to namespace the exposition.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

__all__ = ["render_openmetrics", "render_service_metrics", "CONTENT_TYPE"]

#: The content type OpenMetrics scrapers expect back.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")

_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _metric_name(name: str, prefix: str = "repro_") -> str:
    sanitized = _ILLEGAL.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return f"{prefix}{sanitized}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_openmetrics(
    snapshot: dict,
    extra_gauges: Optional[Dict[str, float]] = None,
    prefix: str = "repro_",
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as OpenMetrics text.

    ``extra_gauges`` lets callers fold in metrics that live outside the
    registry (batcher/cache stats); names are namespaced and sanitized the
    same way.  Families are emitted in sorted-name order so the exposition
    is deterministic (and diffable in tests).
    """
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(counters[name])}")
    gauges = dict(snapshot.get("gauges", {}))
    for name, value in (extra_gauges or {}).items():
        gauges[name] = value
    for name in sorted(gauges):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        summary = histograms[name]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for label, key in _QUANTILES:
            lines.append(
                f'{metric}{{quantile="{label}"}} '
                f"{_format_value(summary.get(key, 0.0))}"
            )
        lines.append(f"{metric}_count {_format_value(summary.get('count', 0))}")
        lines.append(f"{metric}_sum {_format_value(summary.get('total', 0.0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_service_metrics(payload: dict) -> str:
    """OpenMetrics text for an ``InferenceService.metrics()`` payload.

    The registry snapshot renders directly; the serving-local batcher and
    prediction-cache stats (plain dicts of numbers) are exposed as gauges
    under ``repro_serving_batcher_*`` / ``repro_serving_cache_*``.
    """
    extra: Dict[str, float] = {}
    for group in ("batcher", "cache"):
        stats = payload.get(group) or {}
        for key, value in stats.items():
            if isinstance(value, (int, float, bool)):
                extra[f"serving.{group}.{key}"] = value
    return render_openmetrics(payload.get("metrics", {}), extra)
