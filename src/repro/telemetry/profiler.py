"""Stdlib statistical profiler: sample every thread, collapse the stacks.

A daemon thread wakes ``hz`` times per second, grabs every thread's
current frame via :func:`sys._current_frames` and folds each stack into a
counter keyed by the collapsed frame tuple.  No tracing hooks, no
interpreter slowdown between samples — the cost is the sampling thread's
own work, which the ``benchmarks/bench_telemetry.py`` gate bounds below
5% of an epochwise-adv epoch at the default rate.

Output is the **collapsed-stack** format flamegraph tooling consumes
(``frame;frame;frame count`` per line, outermost frame first).  Each
stack is prefixed with the sampled thread's innermost *telemetry span*
(from the registry :mod:`repro.telemetry.core` maintains for exactly this
purpose), so profiles read as "inside span X, the time went to Y" —
linking wall-clock attribution to the same span names the traces and
reports use.

Usage::

    with SamplingProfiler(hz=29) as prof:
        train(...)
    prof.save("profile.collapsed")     # or print(prof.collapsed())

or, from the CLI, ``repro --profile out.collapsed table1 ...`` and
``repro profile table1 ...``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from . import core

__all__ = ["SamplingProfiler", "DEFAULT_HZ"]

#: Default sampling rate.  A prime keeps the sampler from phase-locking
#: with periodic work (batch loops), which would bias the attribution.
#: 29 Hz keeps the in-process sampler (every wake contends for the GIL)
#: comfortably under the 5% overhead gate; raise ``hz`` for short runs
#: where resolution matters more than overhead.
DEFAULT_HZ = 29


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


class SamplingProfiler:
    """Sample all threads' stacks from a daemon thread at ``hz``.

    Parameters
    ----------
    hz:
        Samples per second (wall clock).  The default trades resolution
        for overhead; raise it for short runs.
    max_depth:
        Stacks deeper than this keep their innermost ``max_depth`` frames
        (the hot end) — unbounded recursion cannot blow up the key space.
    """

    def __init__(self, hz: int = DEFAULT_HZ, max_depth: int = 64) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.hz = int(hz)
        self.max_depth = int(max_depth)
        self.stacks: Dict[Tuple[str, ...], int] = {}
        self.samples = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- sampling ------------------------------------------------------
    def _take_sample(self, own_ident: int) -> None:
        # sys._current_frames returns a private snapshot dict; frames may
        # keep running while we walk them, which statistical profiling
        # tolerates (a torn stack is one sample of noise).
        for ident, frame in sys._current_frames().items():
            if ident == own_ident:
                continue
            frames: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                frames.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not frames:
                continue
            frames.reverse()  # outermost first, as collapsed format wants
            span_name = core._active_spans.get(ident)
            if span_name is not None:
                frames.insert(0, f"span:{span_name}")
            key = tuple(frames)
            self.stacks[key] = self.stacks.get(key, 0) + 1
        self.samples += 1

    def _loop(self) -> None:
        own_ident = threading.get_ident()
        interval = 1.0 / self.hz
        next_tick = time.perf_counter()
        while not self._stop.is_set():
            self._take_sample(own_ident)
            next_tick += interval
            delay = next_tick - time.perf_counter()
            if delay <= 0:
                # Sampling fell behind (huge thread count, GIL stall):
                # skip missed ticks instead of bursting to catch up.
                next_tick = time.perf_counter()
                continue
            self._stop.wait(delay)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Start the sampling thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and join the sampler thread (idempotent)."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- output --------------------------------------------------------
    def collapsed(self, min_count: int = 1) -> str:
        """Collapsed-stack text: ``frame;frame;... count`` per line.

        Lines are ordered by descending count then lexically, so the
        hottest stacks lead and the output is deterministic for a given
        sample set.  Feed the text to any flamegraph renderer
        (``flamegraph.pl``, speedscope, inferno).
        """
        rows = [
            (count, ";".join(stack))
            for stack, count in self.stacks.items()
            if count >= min_count
        ]
        rows.sort(key=lambda item: (-item[0], item[1]))
        return "\n".join(f"{stack} {count}" for count, stack in rows)

    def save(self, path: str, min_count: int = 1) -> str:
        """Write :meth:`collapsed` output to ``path``; returns the path."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        text = self.collapsed(min_count=min_count)
        with open(path, "w") as handle:
            handle.write(text + ("\n" if text else ""))
        return path

    def top(self, limit: int = 10) -> List[Tuple[str, int]]:
        """The ``limit`` hottest *innermost frames* with sample counts."""
        leaves: Dict[str, int] = {}
        for stack, count in self.stacks.items():
            leaf = stack[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]
