"""Render a telemetry run record into the Table-I-style timing report.

``repro report run.jsonl`` turns the JSONL event stream captured with
``--telemetry`` into two artefacts:

* a **per-epoch table** — one row per ``epoch`` span with the wall-clock
  total broken into the data / attack / forward / backward / optimizer
  phases (forward excludes the attack time nested inside it);
* a **per-trainer summary** — mean seconds per epoch per trainer (the
  paper's Table I efficiency metric) with mean phase costs, plus the
  AttackLoop early-stop and workspace-pool counters captured in the
  end-of-run metrics snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .sinks import load_records

__all__ = ["EpochRow", "RunReport", "build_report", "render_report"]

PHASES = (
    "data", "attack", "forward", "backward", "optimizer", "tape", "parallel",
)


def _is_tape(path: str) -> bool:
    """True for span paths whose leaf is a compiled-tape span."""
    return path.rsplit("/", 1)[-1].startswith("tape.")


def _format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)


class EpochRow:
    """Phase breakdown of one ``epoch`` span record."""

    __slots__ = ("trainer", "epoch", "total", "phases", "other", "attrs")

    def __init__(self, record: dict) -> None:
        attrs = record.get("attrs", {})
        self.trainer = str(attrs.get("trainer", "?"))
        self.epoch = attrs.get("epoch")
        self.total = float(record.get("duration", 0.0))
        self.attrs = attrs
        children = record.get("children", {})

        def total_of(path: str) -> float:
            entry = children.get(path)
            return float(entry["total"]) if entry else 0.0

        def tape_under(prefix: str) -> float:
            # Compiled-tape time nested directly under one span path.
            head = prefix + "/"
            return sum(
                float(entry["total"])
                for path, entry in children.items()
                if path.startswith(head) and _is_tape(path)
            )

        # Compiled-tape trace/replay time, wherever it ran (top level for
        # the trainers' compiled batch step, under attack for the compiled
        # gradient estimator); reported as its own phase and excluded from
        # the phase it nests inside so the columns still sum to the total.
        tape = sum(
            float(entry["total"])
            for path, entry in children.items()
            if _is_tape(path)
        )
        # Attack time may be nested inside the forward phase (mixture
        # trainers craft the adversarial half while computing the batch
        # loss) or recorded at the top level; count each occurrence once.
        attack = sum(
            float(entry["total"]) - tape_under(path)
            for path, entry in children.items()
            if path == "attack" or path.endswith("/attack")
        )
        self.phases: Dict[str, float] = {
            "data": total_of("data"),
            "attack": attack,
            # Tape time under forward/attack is already removed with the
            # forward/attack total, so only subtract the directly-nested
            # remainder.
            "forward": (
                total_of("forward")
                - total_of("forward/attack")
                - (tape_under("forward") - tape_under("forward/attack"))
            ),
            "backward": total_of("backward"),
            "optimizer": total_of("optimizer"),
            "tape": tape,
            # Data-parallel epochs spend their whole batch step (dispatch,
            # worker wait, gradient reduce) inside one ``parallel`` span;
            # the per-worker phase folds nested under it use dotted leaf
            # names (``parallel/w0.attack``) precisely so they are not
            # double-counted into the serial attack/tape columns above.
            "parallel": total_of("parallel"),
        }
        direct = sum(
            float(entry["total"])
            for path, entry in children.items()
            if "/" not in path
        )
        self.other = max(self.total - direct, 0.0)


class RunReport:
    """Parsed run record: epoch rows plus the metrics snapshot."""

    def __init__(self, records: Sequence[dict]) -> None:
        self.records = list(records)
        self.epochs: List[EpochRow] = [
            EpochRow(r) for r in self.records
            if r.get("type") == "span" and r.get("name") == "epoch"
        ]
        self.metrics: dict = {}
        for record in reversed(self.records):
            if record.get("type") == "metrics":
                self.metrics = record
                break
        self.events: List[dict] = [
            r for r in self.records if r.get("type") == "event"
        ]

    # ------------------------------------------------------------------
    def trainers(self) -> List[str]:
        """Trainer names in first-seen order."""
        seen: List[str] = []
        for row in self.epochs:
            if row.trainer not in seen:
                seen.append(row.trainer)
        return seen

    def epochs_for(self, trainer: str) -> List[EpochRow]:
        """The epoch rows recorded by one trainer."""
        return [row for row in self.epochs if row.trainer == trainer]

    def time_per_epoch(self, trainer: str) -> float:
        """Mean seconds per epoch for ``trainer`` — the Table I metric."""
        rows = self.epochs_for(trainer)
        if not rows:
            return 0.0
        return sum(row.total for row in rows) / len(rows)

    # ------------------------------------------------------------------
    def render_per_epoch(self) -> str:
        """One row per epoch with the per-phase wall-clock breakdown."""
        headers = ["trainer", "epoch", "total_s", *[f"{p}_s" for p in PHASES],
                   "other_s"]
        rows = []
        for row in self.epochs:
            cells = [row.trainer, str(row.epoch), f"{row.total:.4f}"]
            cells.extend(f"{row.phases[p]:.4f}" for p in PHASES)
            cells.append(f"{row.other:.4f}")
            rows.append(cells)
        return _format_table(headers, rows, title="Per-epoch phase breakdown")

    def render_summary(self) -> str:
        """Table-I-style per-trainer mean epoch cost with phase means."""
        headers = ["trainer", "epochs", "s/epoch",
                   *[f"{p}_s" for p in PHASES]]
        rows = []
        for trainer in self.trainers():
            epoch_rows = self.epochs_for(trainer)
            n = len(epoch_rows)
            cells = [trainer, str(n), f"{self.time_per_epoch(trainer):.4f}"]
            for phase in PHASES:
                mean = sum(r.phases[phase] for r in epoch_rows) / n
                cells.append(f"{mean:.4f}")
            rows.append(cells)
        return _format_table(
            headers, rows,
            title="Training time per epoch (telemetry run record)",
        )

    def render_health(self) -> str:
        """The neglected operational counters, surfaced in one block.

        Worker restarts, serving shed/timeout counts and the shard-cache
        hit rate each indicate capacity or stability pressure that the
        timing tables hide; returns ``""`` when the run recorded none of
        them (serial, un-served, non-streaming runs stay clean).
        """
        counters = self.metrics.get("counters", {})
        gauges = self.metrics.get("gauges", {})
        lines = []
        restarts = counters.get("parallel.worker_restarts", 0.0)
        if restarts:
            lines.append(f"  worker restarts: {restarts:g}")
        shed = sum(
            value for name, value in counters.items()
            if name.startswith("serving.") and name.endswith(".shed")
        )
        timeouts = sum(
            value for name, value in counters.items()
            if name.startswith("serving.") and name.endswith(".timeouts")
        )
        requests = counters.get("serving.requests", 0.0)
        if shed or timeouts or requests:
            lines.append(
                f"  serving: {requests:g} request(s), "
                f"{shed:g} shed, {timeouts:g} timed out"
            )
        sc_hits = gauges.get("data.shard_cache.hits", 0.0)
        sc_misses = gauges.get("data.shard_cache.misses", 0.0)
        if sc_hits or sc_misses:
            rate = sc_hits / (sc_hits + sc_misses)
            lines.append(
                f"  shard cache: {rate:.1%} hit-rate "
                f"({sc_hits:g} hit(s) / {sc_misses:g} miss(es))"
            )
        if not lines:
            return ""
        return "\n".join(["health:"] + lines)

    def render_counters(self) -> str:
        """Early-stop / workspace / data counters from the metrics record."""
        counters = dict(self.metrics.get("counters", {}))
        gauges = dict(self.metrics.get("gauges", {}))
        lines = []
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]:g}")
        if gauges:
            lines.append("gauges:")
            for name in sorted(gauges):
                lines.append(f"  {name} = {gauges[name]:g}")
        hits = gauges.get("workspace.pool.hits", 0.0)
        misses = gauges.get("workspace.pool.misses", 0.0)
        if hits or misses:
            rate = hits / (hits + misses) if (hits + misses) else 0.0
            lines.append(f"workspace pool hit-rate: {rate:.1%}")
        sc_hits = gauges.get("data.shard_cache.hits", 0.0)
        sc_misses = gauges.get("data.shard_cache.misses", 0.0)
        if sc_hits or sc_misses:
            rate = sc_hits / (sc_hits + sc_misses)
            lines.append(f"shard cache hit-rate: {rate:.1%}")
        histograms = self.metrics.get("histograms", {})
        if histograms:
            lines.append("histograms:")
            for name in sorted(histograms):
                h = histograms[name]
                line = (
                    f"  {name}: count={h['count']} mean={h['mean']:.3f} "
                    f"min={h['min']:g} max={h['max']:g}"
                )
                # Older run records predate the streaming quantiles.
                if "p50" in h:
                    line += (
                        f" p50={h['p50']:.3f} p90={h['p90']:.3f} "
                        f"p99={h['p99']:.3f}"
                    )
                lines.append(line)
        return "\n".join(lines)

    def render(self, per_epoch: bool = True) -> str:
        """The full report (summary, optional per-epoch table, counters)."""
        parts = []
        if self.epochs:
            parts.append(self.render_summary())
            if per_epoch:
                parts.append(self.render_per_epoch())
        else:
            parts.append("no epoch spans in this run record")
        health = self.render_health()
        if health:
            parts.append(health)
        counters = self.render_counters()
        if counters:
            parts.append(counters)
        if self.events:
            lines = ["events:"]
            for record in self.events:
                fields = " ".join(
                    f"{k}={v}" for k, v in record.get("fields", {}).items()
                )
                lines.append(f"  {record['name']} {fields}".rstrip())
            parts.append("\n".join(lines))
        return "\n\n".join(parts)


def build_report(source) -> RunReport:
    """Build a :class:`RunReport` from a JSONL path or a record list."""
    if isinstance(source, (str, bytes)):
        return RunReport(load_records(source))
    return RunReport(source)


def render_report(source, per_epoch: bool = True) -> str:
    """Convenience: load + render in one call (the ``repro report`` body)."""
    return build_report(source).render(per_epoch=per_epoch)
