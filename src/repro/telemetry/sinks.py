"""Pluggable telemetry sinks: in-memory, JSONL stream, console/CSV summary.

A sink is any object with ``emit(record: dict)`` (and optionally
``close()``).  Records are plain dicts with a ``"type"`` key:

* ``"span"``    — a finished traced region with its child-path breakdown;
* ``"event"``   — a discrete happening (``checkpoint.saved``, ...);
* ``"metrics"`` — the end-of-run counter/gauge/histogram snapshot.
"""

from __future__ import annotations

import csv
import json
import sys
import threading
from typing import Dict, List, Optional, Sequence

__all__ = ["Sink", "InMemorySink", "JsonlSink", "ConsoleEvents", "SummarySink"]


class Sink:
    """Interface for telemetry consumers."""

    def emit(self, record: dict) -> None:
        """Receive one record."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (optional)."""


class InMemorySink(Sink):
    """Keep every record in a list — the in-process registry of a run."""

    def __init__(self) -> None:
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()

    def spans(self, name: Optional[str] = None) -> List[dict]:
        """Span records, optionally filtered by span name."""
        return [
            r for r in self.records
            if r.get("type") == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> List[dict]:
        """Event records, optionally filtered by event name."""
        return [
            r for r in self.records
            if r.get("type") == "event" and (name is None or r["name"] == name)
        ]

    def metrics(self) -> Optional[dict]:
        """The last metrics snapshot record, or ``None``."""
        for record in reversed(self.records):
            if record.get("type") == "metrics":
                return record
        return None


class JsonlSink(Sink):
    """Append each record as one JSON line to a file (the run record).

    Accepts a path (opened/owned by the sink) or an existing text stream
    (flushed but not closed).  Every record is flushed as it is written:
    a crashed (or SIGKILLed worker) process loses at most the line it was
    mid-write on — which :func:`load_records` tolerates — never the spans
    that completed before the crash.
    """

    def __init__(self, target) -> None:
        if isinstance(target, (str, bytes)):
            self._stream = open(target, "w")
            self._owns = True
        else:
            self._stream = target
            self._owns = False
        # Spans can be emitted from several threads of one process (the
        # prefetch producer, serving handler threads); serialise writes so
        # lines never interleave.
        self._lock = threading.Lock()

    @property
    def path(self) -> Optional[str]:
        """The file backing this sink, or ``None`` for borrowed streams."""
        return getattr(self._stream, "name", None) if self._owns else None

    def emit(self, record: dict) -> None:
        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            self._stream.write(line)
            self._stream.flush()

    def close(self) -> None:
        self._stream.flush()
        if self._owns:
            self._stream.close()


class ConsoleEvents(Sink):
    """Print selected event records as human-readable console lines.

    Trainers attach this during verbose fits so rare events (checkpoints
    saved, early stopping) surface in the progress log.
    """

    def __init__(
        self,
        names: Optional[Sequence[str]] = None,
        stream=None,
        prefix: str = "[telemetry]",
    ) -> None:
        self.names = tuple(names) if names is not None else None
        self.stream = stream
        self.prefix = prefix

    def emit(self, record: dict) -> None:
        if record.get("type") != "event":
            return
        if self.names is not None and record["name"] not in self.names:
            return
        fields = " ".join(
            f"{key}={value}" for key, value in record.get("fields", {}).items()
        )
        line = f"{self.prefix} {record['name']}"
        if fields:
            line = f"{line} {fields}"
        print(line, file=self.stream if self.stream is not None else sys.stdout)


class SummarySink(Sink):
    """Aggregate span records and render an end-of-run summary table.

    On :meth:`close` the per-name aggregate (count, total seconds, mean
    seconds) plus any captured counters are rendered to ``stream`` and/or
    written as CSV rows to ``csv_path``.
    """

    def __init__(self, stream=None, csv_path: Optional[str] = None) -> None:
        self.stream = stream
        self.csv_path = csv_path
        self._spans: Dict[str, List[float]] = {}
        self._metrics: Optional[dict] = None

    def emit(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "span":
            entry = self._spans.setdefault(record["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += record.get("duration", 0.0)
        elif kind == "metrics":
            self._metrics = record

    def rows(self) -> List[List[str]]:
        """The summary table rows: name, count, total s, mean s."""
        out = []
        for name in sorted(self._spans):
            count, total = self._spans[name]
            out.append([
                name, str(int(count)), f"{total:.4f}",
                f"{total / count:.4f}" if count else "0.0000",
            ])
        return out

    def render(self) -> str:
        """Plain-text summary of span aggregates and counters."""
        lines = ["telemetry summary", "span            count  total_s  mean_s"]
        for name, count, total, mean in self.rows():
            lines.append(f"{name:<15s} {count:>5s}  {total:>7s}  {mean:>6s}")
        if self._metrics:
            counters = self._metrics.get("counters", {})
            if counters:
                lines.append("counters:")
                for name in sorted(counters):
                    lines.append(f"  {name} = {counters[name]:g}")
        return "\n".join(lines)

    def close(self) -> None:
        if self.csv_path is not None:
            with open(self.csv_path, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["span", "count", "total_s", "mean_s"])
                writer.writerows(self.rows())
        if self.stream is not None:
            print(self.render(), file=self.stream)


def load_records(path: str) -> List[dict]:
    """Read a JSONL run record back into a list of record dicts.

    A truncated *final* line — the signature of a process killed mid-write
    — is skipped rather than raised, so a crashed worker's spool is still
    readable up to its last complete record.  Corruption anywhere else in
    the file still raises: that is not a crash artefact.
    """
    records = []
    with open(path) as handle:
        lines = [line.strip() for line in handle]
    while lines and not lines[-1]:
        lines.pop()
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break
            raise
    return records
