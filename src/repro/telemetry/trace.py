"""Cross-process distributed tracing: context codec, spools, collector.

:mod:`repro.telemetry.core` gives every emitted span a ``trace_id`` /
``span_id`` / ``parent_id``.  This module supplies the three pieces that
turn those per-process records into one causally-ordered trace:

* **Header codec** — :func:`format_trace_header` /
  :func:`parse_trace_header` serialise a
  :class:`~repro.telemetry.core.TraceContext` for the ``X-Repro-Trace``
  HTTP header (and anywhere else a string context is convenient).
* **Spool files** — a forked worker cannot write into the parent's JSONL
  run record (interleaved lines), so each traced process lazily opens its
  own ``spool-<pid>-<nonce>.jsonl`` under the capture's spool directory
  (:func:`ensure_spool`).  The :class:`~repro.telemetry.sinks.JsonlSink`
  flushes per record, so spans survive even a SIGKILLed worker.
* **Collector** — :class:`TraceCollector` merges the run record plus every
  spool file, groups spans by ``trace_id``, orders them causally (parent
  links, ties broken by wall-clock start) and renders each trace as an
  indented tree with a cross-process waterfall
  (``repro report RUN --trace``).
"""

from __future__ import annotations

import glob
import os
import random
from typing import Dict, List, Optional, Sequence

from . import core
from .core import TraceContext
from .sinks import JsonlSink, load_records

__all__ = [
    "TRACE_HEADER",
    "format_trace_header",
    "parse_trace_header",
    "set_spool_dir",
    "spool_dir",
    "ensure_spool",
    "shutdown_spool",
    "TraceCollector",
    "render_trace",
]

#: The HTTP header carrying a trace context across the serving boundary.
TRACE_HEADER = "X-Repro-Trace"


# ----------------------------------------------------------------------
# Header codec.
# ----------------------------------------------------------------------

def format_trace_header(ctx: TraceContext) -> str:
    """``TraceContext -> "trace_id-span_id"`` (both 16-hex-char ids)."""
    return f"{ctx.trace_id}-{ctx.span_id}"


def parse_trace_header(value: Optional[str]) -> Optional[TraceContext]:
    """Parse an ``X-Repro-Trace`` value; malformed headers yield ``None``.

    Tolerance over strictness: a client sending garbage gets an untraced
    (but served) request, never a 500.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 2:
        return None
    trace_id, span_id = parts
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    if not trace_id or not span_id:
        return None
    return TraceContext(trace_id, span_id)


# ----------------------------------------------------------------------
# Per-process spool files.
# ----------------------------------------------------------------------

_spool_dir: Optional[str] = None
_spool_sink: Optional[JsonlSink] = None
_spool_sink_dir: Optional[str] = None
_spool_pid: Optional[int] = None


def set_spool_dir(path: Optional[str]) -> Optional[str]:
    """Set the ambient spool directory; returns the previous value.

    Setting a directory costs nothing by itself — files and the directory
    appear only when a process actually emits (:func:`ensure_spool`).
    ``None`` disarms spooling (the value :func:`capture` restores).
    """
    global _spool_dir
    previous = _spool_dir
    _spool_dir = path
    return previous


def spool_dir() -> Optional[str]:
    """The ambient spool directory, or ``None`` when spooling is off."""
    return _spool_dir


def ensure_spool(path: Optional[str] = None) -> Optional[JsonlSink]:
    """Attach this process's spool sink, creating it on first use.

    ``path`` overrides the ambient directory (worker control messages
    carry the capture's spool dir explicitly, so a pool that outlives one
    capture scope never writes into a stale spool).  Returns the attached
    sink, or ``None`` when no spool directory is configured.  Idempotent
    per ``(pid, directory)``; a forked child never reuses the parent's
    sink — it opens its own file.
    """
    global _spool_sink, _spool_sink_dir, _spool_pid
    directory = path if path is not None else _spool_dir
    if directory is None:
        return None
    pid = os.getpid()
    if (
        _spool_sink is not None
        and _spool_pid == pid
        and _spool_sink_dir == directory
    ):
        return _spool_sink
    if _spool_sink is not None and _spool_pid == pid:
        # Same process, new capture: retire the old spool cleanly.
        core.remove_sink(_spool_sink)
        _spool_sink.close()
    # A pid-mismatched sink is the parent's, inherited through fork; the
    # fork hook already detached it from this process's sink list, and
    # per-record flushing means its buffer holds nothing — just drop it.
    os.makedirs(directory, exist_ok=True)
    nonce = f"{random.getrandbits(32):08x}"
    sink = JsonlSink(os.path.join(directory, f"spool-{pid}-{nonce}.jsonl"))
    core.add_sink(sink)
    _spool_sink = sink
    _spool_sink_dir = directory
    _spool_pid = pid
    return sink


def shutdown_spool() -> None:
    """Detach and close this process's spool sink (tests, clean exits)."""
    global _spool_sink, _spool_sink_dir, _spool_pid
    if _spool_sink is not None and _spool_pid == os.getpid():
        core.remove_sink(_spool_sink)
        _spool_sink.close()
    _spool_sink = None
    _spool_sink_dir = None
    _spool_pid = None


def _reset_spool_after_fork() -> None:
    # The child must never write the parent's spool file; its own sink is
    # recreated lazily on first traced work.
    global _spool_sink, _spool_sink_dir, _spool_pid
    _spool_sink = None
    _spool_sink_dir = None
    _spool_pid = None


os.register_at_fork(after_in_child=_reset_spool_after_fork)


# ----------------------------------------------------------------------
# Collector: merge, order, render.
# ----------------------------------------------------------------------

class TraceCollector:
    """Merge span records from many processes into per-trace trees.

    Feed it record lists (:meth:`add`) or JSONL files (:meth:`add_file`);
    :meth:`from_run` loads a run record *plus* its spool directory in one
    call.  Only span records carrying a ``trace_id`` participate —
    legacy records and metrics/event records are ignored.
    """

    def __init__(self, records: Sequence[dict] = ()) -> None:
        self.spans: List[dict] = []
        if records:
            self.add(records)

    # -- ingestion -----------------------------------------------------
    def add(self, records: Sequence[dict]) -> "TraceCollector":
        """Fold span records (dicts with a ``trace_id``) into the pool."""
        for record in records:
            if record.get("type") == "span" and record.get("trace_id"):
                self.spans.append(record)
        return self

    def add_file(self, path: str) -> "TraceCollector":
        """Load one JSONL record file (run record or spool file)."""
        return self.add(load_records(path))

    @classmethod
    def from_run(
        cls, path: str, spool: Optional[str] = None
    ) -> "TraceCollector":
        """Collector over a run record and its spool directory.

        ``spool`` defaults to ``<path>.spool`` — the directory
        :func:`~repro.telemetry.core.capture` arms for worker processes.
        A missing directory just means the run was single-process.
        """
        collector = cls()
        collector.add_file(path)
        directory = f"{path}.spool" if spool is None else spool
        if os.path.isdir(directory):
            for spool_path in sorted(
                glob.glob(os.path.join(directory, "*.jsonl"))
            ):
                collector.add_file(spool_path)
        return collector

    # -- grouping ------------------------------------------------------
    def traces(self) -> Dict[str, List[dict]]:
        """Spans grouped by ``trace_id``; groups and members time-ordered."""
        groups: Dict[str, List[dict]] = {}
        for span in sorted(self.spans, key=lambda r: r.get("ts", 0.0)):
            groups.setdefault(span["trace_id"], []).append(span)
        return groups

    def trace_ids(self) -> List[str]:
        """Trace ids ordered by each trace's first span start."""
        return list(self.traces())

    # -- rendering -----------------------------------------------------
    @staticmethod
    def _attr_text(attrs: dict, limit: int = 3) -> str:
        parts = []
        for key in sorted(attrs)[:limit]:
            value = attrs[key]
            if isinstance(value, float):
                value = f"{value:.4g}"
            parts.append(f"{key}={value}")
        return " ".join(parts)

    def render_one(self, trace_id: str, width: int = 28) -> str:
        """One trace as an indented tree with a cross-process waterfall."""
        spans = self.traces().get(trace_id)
        if not spans:
            return f"trace {trace_id}: no spans"
        by_id = {s["span_id"]: s for s in spans if s.get("span_id")}
        children: Dict[Optional[str], List[dict]] = {}
        roots: List[dict] = []
        for span in spans:
            parent = span.get("parent_id")
            if parent and parent in by_id:
                children.setdefault(parent, []).append(span)
            else:
                # Parent unknown here (an un-emitted ancestor or a remote
                # client): surface the span at the top level.
                roots.append(span)
        t0 = min(s.get("ts", 0.0) for s in spans)
        t1 = max(s.get("ts", 0.0) + s.get("duration", 0.0) for s in spans)
        total = max(t1 - t0, 1e-9)
        processes = {s.get("pid") for s in spans}

        rows: List[tuple] = []

        def visit(span: dict, depth: int) -> None:
            label = "  " * depth + str(span.get("name", "?"))
            attrs = self._attr_text(span.get("attrs", {}))
            if attrs:
                label = f"{label} [{attrs}]"
            where = f"{span.get('pid', '?')}/{span.get('thread', '?')}"
            start_ms = (span.get("ts", 0.0) - t0) * 1000.0
            dur_ms = span.get("duration", 0.0) * 1000.0
            offset = int((span.get("ts", 0.0) - t0) / total * width)
            length = max(
                int(round(span.get("duration", 0.0) / total * width)), 1
            )
            offset = min(offset, width - 1)
            length = min(length, width - offset)
            bar = " " * offset + "#" * length
            bar = bar.ljust(width)
            rows.append(
                (label, where, f"{start_ms:+.1f}ms", f"{dur_ms:.1f}ms", bar)
            )
            for child in children.get(span.get("span_id"), ()):
                visit(child, depth + 1)

        for root in roots:
            visit(root, 0)
        widths = [
            max(len(row[col]) for row in rows) for col in range(4)
        ]
        lines = [
            f"trace {trace_id}  ({len(spans)} span(s), "
            f"{len(processes)} process(es), {total * 1000.0:.1f} ms)"
        ]
        for label, where, start, dur, bar in rows:
            lines.append(
                f"  {label.ljust(widths[0])}  {where.ljust(widths[1])}  "
                f"{start.rjust(widths[2])}  {dur.rjust(widths[3])}  |{bar}|"
            )
        return "\n".join(lines)

    def render(
        self, trace_id: Optional[str] = None, width: int = 28
    ) -> str:
        """Render one trace (id or unique prefix) or every trace."""
        ids = self.trace_ids()
        if not ids:
            return "no traced spans (record the run with --telemetry)"
        if trace_id:
            matches = [t for t in ids if t.startswith(trace_id)]
            if not matches:
                return f"no trace matching {trace_id!r} (have: {ids})"
            ids = matches
        return "\n\n".join(self.render_one(t, width=width) for t in ids)


def render_trace(
    source, trace_id: Optional[str] = None, spool: Optional[str] = None
) -> str:
    """Convenience: run-record path (or record list) -> rendered traces."""
    if isinstance(source, (str, bytes)):
        collector = TraceCollector.from_run(source, spool=spool)
    else:
        collector = TraceCollector(source)
    return collector.render(trace_id)
