"""Shared utilities: RNG management, timing, serialization, validation."""

from .lru import LRUCache
from .rng import ensure_rng, make_rng, spawn_rngs
from .serialization import (
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
    to_jsonable,
)
from .timing import EpochTimer, Timer
from .validation import (
    check_image_batch,
    check_in_unit_interval,
    check_labels,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "LRUCache",
    "ensure_rng",
    "make_rng",
    "spawn_rngs",
    "Timer",
    "EpochTimer",
    "save_state_dict",
    "load_state_dict",
    "save_json",
    "load_json",
    "to_jsonable",
    "check_positive",
    "check_non_negative",
    "check_in_unit_interval",
    "check_probability",
    "check_image_batch",
    "check_labels",
]
