"""Shared bounded LRU cache with hit/miss counters and eviction callback.

Two hot subsystems keep a small most-recently-used working set of
expensive values: the compiled autograd tape caches replayable program
variants per input signature (:mod:`repro.autograd.tape`), and the serving
layer caches predictions per input digest (:mod:`repro.serving`).  Both
need the same three things beyond a plain ``OrderedDict``: a capacity
bound enforced on insert, observable hit/miss counters for diagnostics,
and a disposal hook so evicted values can release pooled resources
(workspace leases, in the tape's case) instead of leaking them.

The cache is deliberately **not** thread-safe — the tape is per-trainer
single-threaded and the serving layer guards its instance with its own
lock — so the common path stays free of lock overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Optional, Tuple

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries; inserting beyond it evicts the least
        recently used entry.  Must be at least 1.
    on_evict:
        Optional ``callback(key, value)`` invoked for every entry removed
        by *capacity pressure* (not by :meth:`pop` or a plain
        :meth:`clear`, whose callers own the value's disposal).

    :meth:`get` and :meth:`put` maintain recency; :meth:`get` also counts
    hits and misses.  :meth:`peek` reads without touching either.
    """

    __slots__ = ("capacity", "on_evict", "hits", "misses", "_data")

    def __init__(
        self,
        capacity: int,
        on_evict: Optional[Callable[[object, object], None]] = None,
    ) -> None:
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self.on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    # -- reads -----------------------------------------------------------
    def get(self, key, default=None):
        """Return the cached value, bumping recency and the hit counter."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def peek(self, key, default=None):
        """Read without updating recency or the hit/miss counters."""
        value = self._data.get(key, _MISSING)
        return default if value is _MISSING else value

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def values(self):
        """View of the cached values, least recently used first."""
        return self._data.values()

    def items(self) -> Iterator[Tuple[object, object]]:
        """Iterator over ``(key, value)`` pairs, least recently used first."""
        return iter(self._data.items())

    # -- writes ----------------------------------------------------------
    def put(self, key, value) -> None:
        """Insert or update an entry, evicting the LRU tail past capacity."""
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        data[key] = value
        while len(data) > self.capacity:
            old_key, old_value = data.popitem(last=False)
            if self.on_evict is not None:
                self.on_evict(old_key, old_value)

    def pop(self, key, default=None):
        """Remove and return an entry (no eviction callback)."""
        return self._data.pop(key, default)

    def clear(self) -> None:
        """Drop every entry without invoking the eviction callback.

        Callers that must dispose of the values (the tape releasing its
        programs' workspace leases) iterate :meth:`values` first.
        """
        self._data.clear()

    # -- diagnostics -----------------------------------------------------
    @property
    def stats(self) -> dict:
        """Hit/miss/size counters for tests and the metrics endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "capacity": self.capacity,
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are untouched)."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"LRUCache(capacity={self.capacity}, size={len(self._data)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
