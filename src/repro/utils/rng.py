"""Deterministic random-number management.

Every stochastic component in the library (weight init, data generation,
shuffling, dropout, attack random starts) draws from an explicitly passed
``numpy.random.Generator`` so that experiments are reproducible end-to-end.
This module provides helpers for creating and splitting generators.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "ensure_rng"]

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a new generator from an optional integer seed."""
    return np.random.default_rng(seed)


def ensure_rng(rng: RngLike) -> np.random.Generator:
    """Coerce ``rng`` (seed, generator or None) to a generator.

    Passing an existing generator returns it unchanged so that callers can
    thread a single stream through a pipeline.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, count: int) -> list:
    """Split a generator into ``count`` independent child generators.

    Child streams are derived via ``spawn`` on the underlying bit
    generator's seed sequence, guaranteeing statistical independence.
    """
    parent = ensure_rng(rng)
    seeds = parent.bit_generator.seed_seq.spawn(count)
    return [np.random.Generator(np.random.PCG64(s)) for s in seeds]
