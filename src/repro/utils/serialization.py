"""Saving and loading model parameters and experiment results.

Model state is persisted as ``.npz`` archives keyed by parameter path
(e.g. ``layers.0.weight``); experiment results as JSON with numpy values
converted to plain Python types.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping

import numpy as np

__all__ = [
    "save_state_dict",
    "load_state_dict",
    "save_json",
    "load_json",
    "to_jsonable",
]


def save_state_dict(path: str, state: Mapping[str, np.ndarray]) -> None:
    """Persist a name→array mapping to an ``.npz`` archive."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a mapping previously written by :func:`save_state_dict`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so ``json`` can encode them."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


def save_json(path: str, payload: Any) -> None:
    """Write ``payload`` as pretty-printed JSON, creating parent dirs."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(to_jsonable(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Any:
    """Load a JSON file written by :func:`save_json`."""
    with open(path) as handle:
        return json.load(handle)
