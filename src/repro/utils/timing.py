"""Wall-clock instrumentation used by the training-time experiments.

The paper's efficiency metric is *training time per epoch* (Table I).  The
:class:`EpochTimer` here records per-epoch durations so trainers can report
exactly that statistic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Timer", "EpochTimer"]


class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


@dataclass
class EpochTimer:
    """Accumulates per-epoch wall-clock durations.

    Attributes
    ----------
    durations:
        One entry per completed epoch, in seconds.
    """

    durations: List[float] = field(default_factory=list)
    _start: Optional[float] = None

    def begin_epoch(self) -> None:
        """Mark the start of an epoch."""
        self._start = time.perf_counter()

    def end_epoch(self) -> float:
        """Record and return the just-finished epoch's duration."""
        if self._start is None:
            raise RuntimeError("end_epoch() called before begin_epoch()")
        elapsed = time.perf_counter() - self._start
        self.durations.append(elapsed)
        self._start = None
        return elapsed

    @property
    def total(self) -> float:
        """Total training time across recorded epochs."""
        return float(sum(self.durations))

    @property
    def mean_per_epoch(self) -> float:
        """Average training time per epoch — the Table I metric."""
        if not self.durations:
            return 0.0
        return self.total / len(self.durations)
