"""Wall-clock instrumentation used by the training-time experiments.

The paper's efficiency metric is *training time per epoch* (Table I).  The
:class:`EpochTimer` here records per-epoch durations so trainers can report
exactly that statistic.

Both timers are thin layers over :class:`repro.telemetry.Stopwatch` — the
same ``perf_counter`` primitive telemetry spans are built on — so stopwatch
readings and the span records emitted by instrumented trainers agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..telemetry import Stopwatch

__all__ = ["Timer", "EpochTimer"]


class Timer(Stopwatch):
    """Context-manager stopwatch, reusable across start/stop cycles.

    ``elapsed`` holds the duration of the most recent segment; ``total``
    accumulates every completed segment, so one Timer can meter repeated
    regions (e.g. each batch of an epoch) without losing earlier segments.

    Exiting the context behaves exactly like :meth:`stop`: the segment is
    accumulated and an unbalanced exit (the timer is not running, e.g.
    ``stop()`` was already called inside the block) raises ``RuntimeError``
    — unless an exception is already propagating, which is never masked.

    Example
    -------
    >>> t = Timer()
    >>> for _ in range(3):
    ...     with t:
    ...         _ = sum(range(1000))
    >>> t.total >= t.elapsed >= 0.0
    True
    """

    __slots__ = ()


@dataclass
class EpochTimer:
    """Accumulates per-epoch wall-clock durations.

    Attributes
    ----------
    durations:
        One entry per completed epoch, in seconds.
    """

    durations: List[float] = field(default_factory=list)
    _watch: Stopwatch = field(default_factory=Stopwatch, repr=False)

    def begin_epoch(self) -> None:
        """Mark the start of an epoch."""
        self._watch.start()

    def end_epoch(self) -> float:
        """Record and return the just-finished epoch's duration."""
        if not self._watch.running:
            raise RuntimeError("end_epoch() called before begin_epoch()")
        elapsed = self._watch.stop()
        self.durations.append(elapsed)
        return elapsed

    @property
    def total(self) -> float:
        """Total training time across recorded epochs."""
        return float(sum(self.durations))

    @property
    def mean_per_epoch(self) -> float:
        """Average training time per epoch — the Table I metric."""
        if not self.durations:
            return 0.0
        return self.total / len(self.durations)
