"""Wall-clock instrumentation used by the training-time experiments.

The paper's efficiency metric is *training time per epoch* (Table I).  The
:class:`EpochTimer` here records per-epoch durations so trainers can report
exactly that statistic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Timer", "EpochTimer"]


class Timer:
    """Context-manager stopwatch, reusable across start/stop cycles.

    ``elapsed`` holds the duration of the most recent segment; ``total``
    accumulates every completed segment, so one Timer can meter repeated
    regions (e.g. each batch of an epoch) without losing earlier segments.

    Example
    -------
    >>> t = Timer()
    >>> for _ in range(3):
    ...     with t:
    ...         _ = sum(range(1000))
    >>> t.total >= t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0
        self.total: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self.total += self.elapsed
            self._start = None

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop, accumulate into ``total``, and return the segment seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self.total += self.elapsed
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated total and last-segment reading."""
        self._start = None
        self.elapsed = 0.0
        self.total = 0.0


@dataclass
class EpochTimer:
    """Accumulates per-epoch wall-clock durations.

    Attributes
    ----------
    durations:
        One entry per completed epoch, in seconds.
    """

    durations: List[float] = field(default_factory=list)
    _start: Optional[float] = None

    def begin_epoch(self) -> None:
        """Mark the start of an epoch."""
        self._start = time.perf_counter()

    def end_epoch(self) -> float:
        """Record and return the just-finished epoch's duration."""
        if self._start is None:
            raise RuntimeError("end_epoch() called before begin_epoch()")
        elapsed = time.perf_counter() - self._start
        self.durations.append(elapsed)
        self._start = None
        return elapsed

    @property
    def total(self) -> float:
        """Total training time across recorded epochs."""
        return float(sum(self.durations))

    @property
    def mean_per_epoch(self) -> float:
        """Average training time per epoch — the Table I metric."""
        if not self.durations:
            return 0.0
        return self.total / len(self.durations)
