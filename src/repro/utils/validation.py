"""Input-validation helpers shared across the library.

Raising early with a precise message is preferred over letting numpy
broadcast errors surface deep inside the autograd engine.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_unit_interval",
    "check_probability",
    "check_image_batch",
    "check_labels",
]


def check_positive(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_unit_interval(name: str, value) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


def check_probability(name: str, value) -> None:
    """Raise ``ValueError`` unless ``0 <= value < 1`` (dropout-style rate)."""
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must lie in [0, 1), got {value!r}")


def check_image_batch(x: np.ndarray) -> Tuple[int, int, int, int]:
    """Validate an NCHW image batch and return its shape."""
    arr = np.asarray(x)
    if arr.ndim != 4:
        raise ValueError(
            f"expected NCHW batch with 4 dimensions, got shape {arr.shape}"
        )
    return arr.shape


def check_labels(y: np.ndarray, num_classes: int) -> np.ndarray:
    """Validate integer class labels against ``num_classes``."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.any(arr != arr.astype(np.int64)):
            raise ValueError("labels must be integers")
        arr = arr.astype(np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), "
            f"got range [{arr.min()}, {arr.max()}]"
        )
    return arr
