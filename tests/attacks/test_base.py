"""Tests for the attack base class and projection helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attacks import Attack, FGSM, clip_to_box, project_linf


class TestProjectLinf:
    def test_inside_ball_unchanged(self):
        x = np.array([0.5, 0.5])
        adv = np.array([0.55, 0.45])
        assert np.allclose(project_linf(adv, x, 0.1), adv)

    def test_outside_ball_clamped(self):
        x = np.zeros(3)
        adv = np.array([0.5, -0.5, 0.05])
        out = project_linf(adv, x, 0.1)
        assert np.allclose(out, [0.1, -0.1, 0.05])

    @given(
        delta=arrays(
            np.float64, (8,), elements=st.floats(-1.0, 1.0)
        ),
        eps=st.floats(0.01, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_result_always_within_ball(self, delta, eps):
        x = np.full(8, 0.5)
        out = project_linf(x + delta, x, eps)
        assert np.abs(out - x).max() <= eps + 1e-12


class TestClipToBox:
    def test_clips(self):
        out = clip_to_box(np.array([-0.5, 0.5, 1.5]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_custom_box(self):
        out = clip_to_box(np.array([-2.0, 2.0]), low=-1.0, high=1.0)
        assert np.allclose(out, [-1.0, 1.0])


class TestAttackBase:
    def test_generate_not_implemented(self, trained_mlp, tiny_batch):
        attack = Attack(trained_mlp)
        with pytest.raises(NotImplementedError):
            attack.generate(*tiny_batch)

    def test_invalid_clip_range(self, trained_mlp):
        with pytest.raises(ValueError, match="clip_min"):
            Attack(trained_mlp, clip_min=1.0, clip_max=0.0)

    def test_input_gradient_shape(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        grad = Attack(trained_mlp).input_gradient(x, y)
        assert grad.shape == x.shape
        assert np.isfinite(grad).all()

    def test_input_gradient_nonzero(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        grad = Attack(trained_mlp).input_gradient(x, y)
        assert np.abs(grad).max() > 0.0

    def test_loss_direction(self, trained_mlp):
        assert Attack(trained_mlp).loss_direction() == 1.0
        assert Attack(trained_mlp, targeted=True).loss_direction() == -1.0

    def test_label_length_mismatch(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = FGSM(trained_mlp, 0.1)
        with pytest.raises(ValueError, match="disagree"):
            attack.generate(x, y[:-1])

    def test_non_nchw_rejected(self, trained_mlp):
        attack = FGSM(trained_mlp, 0.1)
        with pytest.raises(ValueError, match="NCHW"):
            attack.generate(np.zeros((4, 784)), np.zeros(4, dtype=int))

    def test_callable_alias(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = FGSM(trained_mlp, 0.1)
        # __call__ must behave exactly like generate (same determinism).
        assert np.array_equal(attack(x, y), attack.generate(x, y))

    def test_name(self, trained_mlp):
        assert FGSM(trained_mlp, 0.1).name == "FGSM"
