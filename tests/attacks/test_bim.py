"""Tests for BIM — the attack at the heart of the paper's experiments."""

import numpy as np
import pytest

from repro.attacks import BIM, FGSM
from repro.autograd import Tensor
from repro.nn import cross_entropy

from tests.helpers import box_tol


class TestInvariants:
    def test_total_linf_bound_respected(self, trained_mlp, tiny_batch):
        """Even with a per-step size whose sum exceeds eps, the projection
        keeps the total perturbation within budget."""
        x, y = tiny_batch
        attack = BIM(trained_mlp, epsilon=0.1, num_steps=10, step_size=0.05)
        x_adv = attack.generate(x, y)
        assert np.abs(x_adv - x).max() <= 0.1 + box_tol(x)

    def test_stays_in_unit_box(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = BIM(trained_mlp, 0.3, num_steps=5).generate(x, y)
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_default_step_is_eps_over_n(self, trained_mlp):
        attack = BIM(trained_mlp, epsilon=0.3, num_steps=10)
        assert np.isclose(attack.step_size, 0.03)

    def test_bim1_with_full_step_equals_fgsm(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        bim = BIM(trained_mlp, epsilon=0.1, num_steps=1, step_size=0.1)
        fgsm = FGSM(trained_mlp, 0.1)
        assert np.allclose(bim.generate(x, y), fgsm.generate(x, y))

    def test_stronger_than_fgsm(self, trained_mlp, digits_small):
        """Paper premise: iterative attacks beat single-step at equal eps."""
        _train, test = digits_small
        x, y = test.arrays()
        eps = 0.15
        fgsm_acc = (
            trained_mlp.predict(FGSM(trained_mlp, eps).generate(x, y)) == y
        ).mean()
        bim_acc = (
            trained_mlp.predict(
                BIM(trained_mlp, eps, num_steps=10).generate(x, y)
            )
            == y
        ).mean()
        assert bim_acc <= fgsm_acc

    def test_increases_loss_monotonically_in_steps(
        self, trained_mlp, tiny_batch
    ):
        """More BIM iterations should (weakly) increase the victim loss."""
        x, y = tiny_batch
        losses = []
        for steps in (1, 5, 10):
            x_adv = BIM(trained_mlp, 0.2, num_steps=steps).generate(x, y)
            losses.append(
                cross_entropy(trained_mlp(Tensor(x_adv)), y).item()
            )
        assert losses[2] >= losses[0]

    def test_deterministic(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = BIM(trained_mlp, 0.2, num_steps=3)
        assert np.array_equal(attack.generate(x, y), attack.generate(x, y))


class TestIntermediates:
    def test_count_matches_steps(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        iterates = BIM(
            trained_mlp, 0.2, num_steps=7
        ).generate_with_intermediates(x, y)
        assert len(iterates) == 7

    def test_last_iterate_equals_generate(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = BIM(trained_mlp, 0.2, num_steps=5)
        iterates = attack.generate_with_intermediates(x, y)
        assert np.allclose(iterates[-1], attack.generate(x, y))

    def test_perturbation_grows_across_iterates(self, trained_mlp, tiny_batch):
        """Figure 2 premise: cumulative perturbation grows per iteration."""
        x, y = tiny_batch
        iterates = BIM(
            trained_mlp, 0.3, num_steps=6
        ).generate_with_intermediates(x, y)
        norms = [np.abs(it - x).max() for it in iterates]
        assert all(b >= a - box_tol(x) for a, b in zip(norms, norms[1:]))
        # First iterate moved at most one step.
        assert norms[0] <= 0.05 + box_tol(x)

    def test_iterates_are_copies(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        iterates = BIM(
            trained_mlp, 0.2, num_steps=3
        ).generate_with_intermediates(x, y)
        iterates[0][:] = -1.0
        assert iterates[1].min() >= 0.0  # later iterates unaffected


class TestStep:
    def test_single_step_moves_at_most_step_size(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = BIM(trained_mlp, epsilon=0.3, num_steps=10)
        x_next = attack.step(x, x, y)
        assert np.abs(x_next - x).max() <= attack.step_size + box_tol(x)

    def test_step_projects_around_origin(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = BIM(trained_mlp, epsilon=0.05, num_steps=1, step_size=0.5)
        x_next = attack.step(x, x, y)
        assert np.abs(x_next - x).max() <= 0.05 + box_tol(x)


class TestValidation:
    def test_bad_steps(self, trained_mlp):
        with pytest.raises(ValueError, match="num_steps"):
            BIM(trained_mlp, 0.1, num_steps=0)

    def test_bad_epsilon(self, trained_mlp):
        with pytest.raises(ValueError, match="epsilon"):
            BIM(trained_mlp, -0.1)
