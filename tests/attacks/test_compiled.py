"""Attacks must be bit-identical with the compiled tape engine on.

The white-box gradient estimator replays its forward/backward from a
recorded tape when ``repro.runtime.compiled`` is enabled; the adversarial
examples it produces must match eager execution exactly, including the
parameter-gradient side effects eager ``loss.backward()`` leaves behind.
"""

import numpy as np
import pytest

from repro.attacks import build_attack
from repro.models import build_model
from repro.runtime import compiled

_RNG = np.random.default_rng(5)
_X = np.clip(_RNG.random((6, 1, 28, 28)), 0.05, 0.95)
_Y = np.array([0, 1, 2, 3, 4, 5])

_SPECS = ["fgsm", "bim:num_steps=4", "pgd:num_steps=3,rng=7"]


def _run(spec, enabled):
    model = build_model("small_cnn", seed=0)
    model.eval()
    attack = build_attack(spec, model, epsilon=0.1)
    with compiled(enabled):
        adv = attack(_X.copy(), _Y.copy())
    return adv


@pytest.mark.parametrize("spec", _SPECS)
def test_attack_bit_identical_under_compiled_toggle(spec):
    eager = _run(spec, False)
    replay = _run(spec, True)
    assert np.array_equal(eager, replay), spec
    assert not np.array_equal(eager, _X)  # the attack actually moved x


def test_estimator_tape_is_live_under_toggle():
    """The speedup comes from replays: assert the cache actually hits."""
    model = build_model("small_cnn", seed=0)
    model.eval()
    attack = build_attack("bim:num_steps=4", model, epsilon=0.1)
    with compiled(True):
        attack(_X.copy(), _Y.copy())
    step = attack.loop.step_fn.estimator._compiled_step()
    assert step.stats["disabled"] is None
    assert step.stats["hits"] > 0
