"""Tests for DeepFool."""

import numpy as np
import pytest

from repro.attacks import DeepFool


class TestDeepFool:
    def test_fools_most_examples(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = DeepFool(trained_mlp, max_steps=30)
        x_adv = attack.generate(x, y)
        fooled = (trained_mlp.predict(x_adv) != y).mean()
        assert fooled > 0.7

    def test_perturbations_are_small(self, trained_mlp, tiny_batch):
        """DeepFool finds near-minimal perturbations — far below the image
        diameter."""
        x, y = tiny_batch
        attack = DeepFool(trained_mlp, max_steps=30)
        norms = attack.perturbation_norms(x, y)
        image_norm = np.linalg.norm(x.reshape(len(x), -1), axis=1).mean()
        assert norms.mean() < image_norm  # much smaller than the images

    def test_stays_in_box(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = DeepFool(trained_mlp, max_steps=10).generate(x, y)
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_already_wrong_examples_untouched(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        wrong_labels = (trained_mlp.predict(x) + 1) % 10
        x_adv = DeepFool(trained_mlp, max_steps=5).generate(x, wrong_labels)
        # Every example is already "fooled" w.r.t. these labels.
        assert np.allclose(x_adv, x)

    def test_validation(self, trained_mlp):
        with pytest.raises(ValueError):
            DeepFool(trained_mlp, max_steps=0)
        with pytest.raises(ValueError):
            DeepFool(trained_mlp, overshoot=-0.1)

    def test_smaller_than_budgeted_attacks(self, trained_mlp, tiny_batch):
        """DeepFool's perturbation should be (on average) smaller than a
        successful full-budget BIM perturbation in l2."""
        from repro.attacks import BIM

        x, y = tiny_batch
        deepfool_norms = DeepFool(
            trained_mlp, max_steps=30
        ).perturbation_norms(x, y)
        bim_adv = BIM(trained_mlp, 0.25, num_steps=10).generate(x, y)
        bim_norms = np.linalg.norm(
            (bim_adv - x).reshape(len(x), -1), axis=1
        )
        assert deepfool_norms.mean() < bim_norms.mean()
