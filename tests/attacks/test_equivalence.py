"""Bit-exact equivalence: engine-based attacks vs the legacy loops.

Each ``_legacy_*`` function below is the pre-refactor implementation
inlined (a function instead of a method, otherwise verbatim).  The engine
rewrites must reproduce them **bit for bit** — ``np.array_equal``, not
``allclose`` — under fixed seeds in float64.  Every attack that supports
targeted mode is checked in both modes.
"""

import numpy as np
import pytest

from repro.attacks import (
    BIM,
    FGSM,
    MIM,
    PGD,
    PGDL2,
    SPSA,
    RandomNoise,
    clip_to_box,
    project_l2,
    project_linf,
)
from repro.autograd import Tensor, no_grad
from repro.models import mnist_mlp
from repro.nn import cross_entropy

EPS = 0.25


@pytest.fixture(scope="module")
def model(digits_small):
    train, _test = digits_small
    model = mnist_mlp(seed=0)
    model.eval()
    return model


@pytest.fixture(scope="module")
def batch(digits_small):
    train, _test = digits_small
    x, y = train.arrays()
    x = np.asarray(x, dtype=np.float64)[:24]
    y = np.asarray(y)[:24]
    return x, y


@pytest.fixture(scope="module")
def targets(batch):
    _x, y = batch
    return (y + 3) % 10


def _direction(targeted):
    return -1.0 if targeted else 1.0


def _input_gradient(model, x, y):
    x_tensor = Tensor(x, requires_grad=True)
    loss = cross_entropy(model(x_tensor), y)
    loss.backward()
    return x_tensor.grad


def _normalize_l2(grad):
    flat = grad.reshape(len(grad), -1)
    norms = np.maximum(np.linalg.norm(flat, axis=1), 1e-12)
    return (flat / norms[:, None]).reshape(grad.shape)


# ----------------------------------------------------------------------
# Legacy implementations (pre-refactor generate() bodies).
# ----------------------------------------------------------------------

def _legacy_fgsm(model, x, y, epsilon, targeted=False):
    grad = _input_gradient(model, x, y)
    step = _direction(targeted) * epsilon * np.sign(grad)
    return clip_to_box(x + step)


def _legacy_bim_step(model, x_adv, x_orig, y, epsilon, step_size, targeted):
    grad = _input_gradient(model, x_adv, y)
    moved = x_adv + _direction(targeted) * step_size * np.sign(grad)
    return clip_to_box(project_linf(moved, x_orig, epsilon))


def _legacy_bim(model, x, y, epsilon, num_steps, targeted=False):
    step_size = epsilon / num_steps
    x_adv = x.copy()
    for _ in range(num_steps):
        x_adv = _legacy_bim_step(
            model, x_adv, x, y, epsilon, step_size, targeted
        )
    return x_adv


def _legacy_pgd(
    model, x, y, epsilon, num_steps, rng, random_start=True, targeted=False
):
    step_size = epsilon / num_steps
    if random_start:
        noise = rng.uniform(-epsilon, epsilon, size=x.shape).astype(
            x.dtype, copy=False
        )
        x_adv = clip_to_box(x + noise)
    else:
        x_adv = x.copy()
    for _ in range(num_steps):
        x_adv = _legacy_bim_step(
            model, x_adv, x, y, epsilon, step_size, targeted
        )
    return x_adv


def _legacy_mim(model, x, y, epsilon, num_steps, decay, targeted=False):
    step_size = epsilon / num_steps
    x_adv = x.copy()
    momentum = np.zeros_like(x)
    for _ in range(num_steps):
        grad = _input_gradient(model, x_adv, y)
        flat = np.abs(grad).reshape(len(grad), -1).mean(axis=1)
        flat = np.maximum(flat, 1e-12).reshape((-1,) + (1,) * (grad.ndim - 1))
        momentum = decay * momentum + grad / flat
        moved = x_adv + _direction(targeted) * step_size * np.sign(momentum)
        x_adv = clip_to_box(project_linf(moved, x, epsilon))
    return x_adv


def _legacy_pgd_l2(
    model, x, y, epsilon, num_steps, rng, random_start=True, targeted=False
):
    step_size = 2.5 * epsilon / num_steps
    if random_start:
        direction = rng.normal(size=x.shape).astype(x.dtype, copy=False)
        direction = _normalize_l2(direction)
        radii = (
            epsilon
            * rng.uniform(0, 1, size=(len(x),) + (1,) * (x.ndim - 1))
            ** (1.0 / x[0].size)
        ).astype(x.dtype, copy=False)
        x_adv = clip_to_box(x + direction * radii)
    else:
        x_adv = x.copy()
    for _ in range(num_steps):
        grad = _input_gradient(model, x_adv, y)
        step = _direction(targeted) * step_size * _normalize_l2(grad)
        x_adv = project_l2(x_adv + step, x, epsilon)
        x_adv = clip_to_box(x_adv)
    return x_adv


def _legacy_spsa(
    model, x, y, epsilon, num_steps, samples, delta, rng, targeted=False
):
    step_size = 2.0 * epsilon / num_steps

    def loss_values(x_probe):
        with no_grad():
            logits = model(Tensor(x_probe))
            return cross_entropy(logits, y, reduction="none").data

    def estimate_gradient(x_probe):
        estimate = np.zeros_like(x_probe)
        for _ in range(samples):
            direction = rng.choice([-1.0, 1.0], size=x_probe.shape).astype(
                x_probe.dtype, copy=False
            )
            plus = loss_values(x_probe + delta * direction)
            minus = loss_values(x_probe - delta * direction)
            diff = (plus - minus) / (2.0 * delta)
            estimate += (
                diff.reshape((-1,) + (1,) * (x_probe.ndim - 1)) * direction
            )
        return estimate / samples

    x_adv = x.copy()
    for _ in range(num_steps):
        grad = estimate_gradient(x_adv)
        moved = x_adv + _direction(targeted) * step_size * np.sign(grad)
        x_adv = clip_to_box(project_linf(moved, x, epsilon))
    return x_adv


def _legacy_noise(x, epsilon, rng):
    noise = rng.uniform(-epsilon, epsilon, size=x.shape).astype(
        x.dtype, copy=False
    )
    return clip_to_box(x + noise)


# ----------------------------------------------------------------------
# Equivalence checks.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("targeted", [False, True])
def test_fgsm_bitwise(model, batch, targets, targeted):
    x, y = batch
    labels = targets if targeted else y
    new = FGSM(model, EPS, targeted=targeted).generate(x, labels)
    old = _legacy_fgsm(model, x, labels, EPS, targeted=targeted)
    assert np.array_equal(new, old)


@pytest.mark.parametrize("targeted", [False, True])
def test_bim_bitwise(model, batch, targets, targeted):
    x, y = batch
    labels = targets if targeted else y
    new = BIM(model, EPS, num_steps=5, targeted=targeted).generate(x, labels)
    old = _legacy_bim(model, x, labels, EPS, num_steps=5, targeted=targeted)
    assert np.array_equal(new, old)


def test_bim_intermediates_bitwise(model, batch):
    x, y = batch
    attack = BIM(model, EPS, num_steps=4)
    iterates = attack.generate_with_intermediates(x, y)
    assert len(iterates) == 4
    step_size = EPS / 4
    x_adv = x.copy()
    for i in range(4):
        x_adv = _legacy_bim_step(model, x_adv, x, y, EPS, step_size, False)
        assert np.array_equal(iterates[i], x_adv)


@pytest.mark.parametrize("targeted", [False, True])
def test_pgd_bitwise(model, batch, targets, targeted):
    x, y = batch
    labels = targets if targeted else y
    new = PGD(
        model, EPS, num_steps=5, rng=11, targeted=targeted
    ).generate(x, labels)
    old = _legacy_pgd(
        model, x, labels, EPS, 5,
        np.random.default_rng(11), targeted=targeted,
    )
    assert np.array_equal(new, old)


def test_pgd_no_random_start_is_bim(model, batch):
    x, y = batch
    new = PGD(model, EPS, num_steps=5, random_start=False).generate(x, y)
    old = _legacy_bim(model, x, y, EPS, num_steps=5)
    assert np.array_equal(new, old)


@pytest.mark.parametrize("targeted", [False, True])
def test_mim_bitwise(model, batch, targets, targeted):
    x, y = batch
    labels = targets if targeted else y
    new = MIM(
        model, EPS, num_steps=5, decay=0.9, targeted=targeted
    ).generate(x, labels)
    old = _legacy_mim(
        model, x, labels, EPS, 5, decay=0.9, targeted=targeted
    )
    assert np.array_equal(new, old)


@pytest.mark.parametrize("targeted", [False, True])
def test_pgd_l2_bitwise(model, batch, targets, targeted):
    x, y = batch
    labels = targets if targeted else y
    new = PGDL2(
        model, EPS, num_steps=5, rng=13, targeted=targeted
    ).generate(x, labels)
    old = _legacy_pgd_l2(
        model, x, labels, EPS, 5,
        np.random.default_rng(13), targeted=targeted,
    )
    assert np.array_equal(new, old)


@pytest.mark.parametrize("targeted", [False, True])
def test_spsa_bitwise(model, batch, targets, targeted):
    x, y = batch
    labels = targets if targeted else y
    new = SPSA(
        model, EPS, num_steps=3, samples=4, delta=0.01, rng=17,
        targeted=targeted,
    ).generate(x[:8], labels[:8])
    old = _legacy_spsa(
        model, x[:8], labels[:8], EPS, 3, 4, 0.01,
        np.random.default_rng(17), targeted=targeted,
    )
    assert np.array_equal(new, old)


def test_noise_bitwise(model, batch):
    x, y = batch
    new = RandomNoise(model, EPS, rng=19).generate(x, y)
    old = _legacy_noise(x, EPS, np.random.default_rng(19))
    assert np.array_equal(new, old)
