"""Tests for FGSM."""

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.autograd import Tensor
from repro.nn import cross_entropy

from tests.helpers import box_tol


class TestInvariants:
    def test_linf_bound(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = FGSM(trained_mlp, 0.1).generate(x, y)
        assert np.abs(x_adv - x).max() <= 0.1 + box_tol(x)

    def test_stays_in_unit_box(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = FGSM(trained_mlp, 0.5).generate(x, y)
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_moves_full_epsilon_in_interior(self, trained_mlp, tiny_batch):
        """Away from the box boundary every pixel moves exactly eps."""
        x, y = tiny_batch
        x_mid = np.clip(x, 0.3, 0.7)  # keep clear of the box walls
        x_adv = FGSM(trained_mlp, 0.05).generate(x_mid, y)
        deltas = np.abs(x_adv - x_mid)
        moved = deltas[deltas > 0]
        assert np.allclose(moved, 0.05)

    def test_increases_loss(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = FGSM(trained_mlp, 0.1).generate(x, y)
        before = cross_entropy(trained_mlp(Tensor(x)), y).item()
        after = cross_entropy(trained_mlp(Tensor(x_adv)), y).item()
        assert after > before

    def test_degrades_accuracy(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        clean_acc = (trained_mlp.predict(x) == y).mean()
        x_adv = FGSM(trained_mlp, 0.25).generate(x, y)
        adv_acc = (trained_mlp.predict(x_adv) == y).mean()
        assert adv_acc < clean_acc - 0.3

    def test_deterministic(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = FGSM(trained_mlp, 0.1)
        assert np.array_equal(attack.generate(x, y), attack.generate(x, y))

    def test_does_not_mutate_input(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        original = x.copy()
        FGSM(trained_mlp, 0.1).generate(x, y)
        assert np.array_equal(x, original)

    def test_leaves_no_parameter_grads_behind(self, trained_mlp, tiny_batch):
        """Attack gradients flow to the input; model parameters do pick up
        grads during backward, but the training loop zeroes them — verify
        the attack itself doesn't corrupt parameter values."""
        x, y = tiny_batch
        before = [p.data.copy() for p in trained_mlp.parameters()]
        FGSM(trained_mlp, 0.1).generate(x, y)
        for b, p in zip(before, trained_mlp.parameters()):
            assert np.array_equal(b, p.data)


class TestTargeted:
    def test_targeted_decreases_target_loss(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        target = (y + 1) % 10
        attack = FGSM(trained_mlp, 0.2, targeted=True)
        x_adv = attack.generate(x, target)
        before = cross_entropy(trained_mlp(Tensor(x)), target).item()
        after = cross_entropy(trained_mlp(Tensor(x_adv)), target).item()
        assert after < before


class TestValidation:
    def test_epsilon_positive(self, trained_mlp):
        with pytest.raises(ValueError, match="epsilon"):
            FGSM(trained_mlp, 0.0)
