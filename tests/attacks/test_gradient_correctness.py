"""End-to-end correctness of attack input gradients.

The attacks are only as correct as ``Attack.input_gradient``; this checks
it against central finite differences through a real (small) model — the
full path: conv/dense forward, cross-entropy, backward to the pixels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import BIM, Attack
from repro.autograd import Tensor
from repro.models import small_cnn
from repro.nn import cross_entropy


@pytest.fixture(scope="module")
def model():
    net = small_cnn(image_size=8, seed=0)
    net.eval()
    return net


def loss_value(model, x, y):
    from repro.autograd import no_grad

    with no_grad():
        return cross_entropy(model(Tensor(x)), y).item()


class TestInputGradient:
    def test_matches_finite_differences(self, model):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.2, 0.8, size=(2, 1, 8, 8))
        y = np.array([1, 4])
        grad = Attack(model).input_gradient(x, y)
        eps = 1e-5
        # Probe a handful of random coordinates.
        flat = x.reshape(-1)
        grad_flat = grad.reshape(-1)
        for index in rng.choice(flat.size, size=12, replace=False):
            original = flat[index]
            flat[index] = original + eps
            plus = loss_value(model, x, y)
            flat[index] = original - eps
            minus = loss_value(model, x, y)
            flat[index] = original
            numeric = (plus - minus) / (2 * eps)
            assert grad_flat[index] == pytest.approx(numeric, abs=1e-4)

    def test_gradient_batch_independence(self, model):
        """Each example's gradient must not depend on its batch-mates."""
        rng = np.random.default_rng(1)
        x = rng.uniform(0.2, 0.8, size=(3, 1, 8, 8))
        y = np.array([0, 1, 2])
        attack = Attack(model)
        # cross_entropy mean-reduces, so scale by batch size for comparison.
        full = attack.input_gradient(x, y) * 3
        solo = attack.input_gradient(x[1:2], y[1:2]) * 1
        assert np.allclose(full[1], solo[0], atol=1e-10)


class TestBimProjectionProperties:
    @given(
        step_frac=st.floats(0.05, 2.0),
        steps=st.integers(1, 6),
        eps=st.floats(0.05, 0.4),
    )
    @settings(max_examples=15, deadline=None)
    def test_budget_and_box_always_hold(self, model, step_frac, steps, eps):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.0, 1.0, size=(2, 1, 8, 8))
        y = np.array([0, 1])
        attack = BIM(
            model, eps, num_steps=steps, step_size=eps * step_frac
        )
        x_adv = attack.generate(x, y)
        assert np.abs(x_adv - x).max() <= eps + 1e-12
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0
