"""Tests for the composable AttackLoop engine.

The unmasked path's bit-exactness is covered by ``test_equivalence.py``;
these tests cover the engine-only behaviours: batched early stopping,
multi-restart, the step protocol and the workspace-pooled compaction.
"""

import numpy as np
import pytest

from repro.attacks import (
    BIM,
    PGD,
    AttackLoop,
    BackpropGradient,
    GradientStep,
    LinfBoxProjection,
    Misclassified,
    SignStep,
    UniformLinfInit,
    zero_init,
)
from repro.models import mnist_mlp
from repro.runtime import get_workspace

EPS = 0.3


@pytest.fixture(scope="module")
def model(digits_small):
    train, _test = digits_small
    model = mnist_mlp(seed=0)
    model.eval()
    return model


@pytest.fixture(scope="module")
def batch(digits_small):
    train, _test = digits_small
    x, y = train.arrays()
    return np.asarray(x, dtype=np.float64)[:32], np.asarray(y)[:32]


def _bim_loop(model, num_steps, early_stop=False, restarts=1, rng=None):
    step_size = EPS / num_steps
    initializer = (
        UniformLinfInit(EPS, np.random.default_rng(rng))
        if rng is not None
        else zero_init
    )
    return AttackLoop(
        model,
        GradientStep(
            BackpropGradient(model),
            SignStep(step_size),
            LinfBoxProjection(EPS),
        ),
        num_steps=num_steps,
        initializer=initializer,
        stop=Misclassified() if (early_stop or restarts > 1) else None,
        early_stop=early_stop,
        restarts=restarts,
    )


class TestEarlyStop:
    def test_retired_examples_keep_their_iterate(self, model, batch):
        """Rows retire the moment the forward pass shows them fooled, and
        every row of the masked run matches SOME iterate of the unmasked
        run (rows are independent through an MLP, so compaction must not
        change any surviving row's trajectory)."""
        x, y = batch
        masked = _bim_loop(model, 6, early_stop=True).run(x, y)
        unmasked_iterates = [x] + BIM(
            model, EPS, num_steps=6
        ).generate_with_intermediates(x, y)
        for row in range(len(x)):
            assert any(
                np.array_equal(masked[row], it[row])
                for it in unmasked_iterates
            ), f"row {row} matches no unmasked iterate"

    def test_masked_run_is_as_strong(self, model, batch):
        """Early stop must not weaken the attack: every example fooled by
        the unmasked run is also fooled by the masked run (a fooled row is
        frozen, never un-fooled by later steps)."""
        x, y = batch
        masked = _bim_loop(model, 6, early_stop=True).run(x, y)
        unmasked = _bim_loop(model, 6, early_stop=False).run(x, y)
        fooled_masked = model.predict(masked) != y
        fooled_unmasked = model.predict(unmasked) != y
        assert fooled_masked.sum() >= fooled_unmasked.sum()

    def test_identical_when_nothing_retires(self, model, batch):
        """With a stop condition that never fires, the masked driver must
        be bit-identical to the unmasked one."""
        x, y = batch
        never = lambda model, xa, ya, state: np.zeros(len(ya), dtype=bool)
        loop = _bim_loop(model, 4, early_stop=False)
        loop.stop = never
        loop.early_stop = True
        masked = loop.run(x, y)
        unmasked = _bim_loop(model, 4, early_stop=False).run(x, y)
        assert np.array_equal(masked, unmasked)

    def test_workspace_buffers_released(self, model, batch):
        """Compaction scratch goes back to the pool: a repeat run with the
        identical retirement schedule allocates nothing new."""
        x, y = batch
        workspace = get_workspace()
        loop = _bim_loop(model, 4, early_stop=True)
        loop.run(x, y)  # warm the pool
        misses_before = workspace.misses
        loop.run(x, y)  # deterministic: same shapes, served from the pool
        assert workspace.misses == misses_before


class TestRestarts:
    def test_restarts_only_reattack_survivors(self, model, batch):
        """Extra restarts never lose already-fooled examples."""
        x, y = batch
        single = _bim_loop(model, 3, rng=5).run(x, y)
        multi = _bim_loop(model, 3, restarts=3, rng=5).run(x, y)
        fooled_single = model.predict(single) != y
        fooled_multi = model.predict(multi) != y
        assert (fooled_multi | ~fooled_single).all() or (
            fooled_multi.sum() >= fooled_single.sum()
        )

    def test_restarts_preserve_fooled_rows_bitwise(self, model, batch):
        """Rows fooled on the first run are returned untouched."""
        x, y = batch
        rng_a = np.random.default_rng(5)
        loop_single = AttackLoop(
            model,
            GradientStep(
                BackpropGradient(model),
                SignStep(EPS / 3),
                LinfBoxProjection(EPS),
            ),
            num_steps=3,
            initializer=UniformLinfInit(EPS, rng_a),
            stop=Misclassified(),
        )
        first = loop_single.run(x, y)
        fooled = model.predict(first) != y
        rng_b = np.random.default_rng(5)
        loop_multi = AttackLoop(
            model,
            GradientStep(
                BackpropGradient(model),
                SignStep(EPS / 3),
                LinfBoxProjection(EPS),
            ),
            num_steps=3,
            initializer=UniformLinfInit(EPS, rng_b),
            stop=Misclassified(),
            restarts=2,
        )
        multi = loop_multi.run(x, y)
        assert np.array_equal(multi[fooled], first[fooled])

    def test_restarts_require_stop(self, model):
        with pytest.raises(ValueError, match="stop condition"):
            AttackLoop(
                model,
                GradientStep(
                    BackpropGradient(model),
                    SignStep(0.1),
                    LinfBoxProjection(EPS),
                ),
                num_steps=1,
                restarts=2,
            )

    def test_early_stop_requires_stop(self, model):
        with pytest.raises(ValueError, match="stop condition"):
            AttackLoop(
                model,
                GradientStep(
                    BackpropGradient(model),
                    SignStep(0.1),
                    LinfBoxProjection(EPS),
                ),
                num_steps=1,
                early_stop=True,
            )


class TestStepProtocol:
    def test_step_matches_bim_step(self, model, batch):
        """AttackLoop.step is the epoch-wise defense's primitive and must
        agree with BIM.step exactly."""
        x, y = batch
        loop = _bim_loop(model, 5)
        bim = BIM(model, EPS, num_steps=5)
        assert np.array_equal(
            loop.step(x.copy(), x, y), bim.step(x.copy(), x, y)
        )

    def test_run_accepts_carried_start(self, model, batch):
        """``start=`` overrides the initializer (carried-state defense)."""
        x, y = batch
        loop = _bim_loop(model, 1)
        carried = np.clip(x + 0.1, 0.0, 1.0)
        out = loop.run(x, y, start=carried.copy())
        assert np.array_equal(out, loop.step(carried.copy(), x, y))

    def test_zero_steps_returns_initialization(self, model, batch):
        x, y = batch
        loop = AttackLoop(model, None, num_steps=0)
        assert np.array_equal(loop.run(x, y), x)


class TestPgdEarlyStopIntegration:
    def test_pgd_early_stop_flag(self, model, batch):
        """The attack classes expose the engine's early_stop switch."""
        x, y = batch
        attack = PGD(model, EPS, num_steps=5, rng=3, early_stop=True)
        x_adv = attack.generate(x, y)
        assert x_adv.shape == x.shape
        assert np.all(np.abs(x_adv - x) <= EPS + 1e-12)
        plain = PGD(model, EPS, num_steps=5, rng=3)
        fooled_es = (model.predict(x_adv) != y).sum()
        fooled_plain = (model.predict(plain.generate(x, y)) != y).sum()
        assert fooled_es >= fooled_plain
