"""Tests for alternative attack objectives."""

import numpy as np
import pytest

from repro.attacks import BIM, FGSM, margin_loss
from repro.autograd import Tensor, check_gradients

from tests.helpers import box_tol


class TestMarginLoss:
    def test_value_matches_manual(self):
        logits = Tensor(np.array([[2.0, 5.0, 1.0]]))
        labels = np.array([0])
        # best other (5.0) - true (2.0) = 3.0
        assert margin_loss(logits, labels).item() == pytest.approx(3.0)

    def test_negative_when_confidently_correct(self):
        logits = Tensor(np.array([[10.0, 0.0]]))
        assert margin_loss(logits, np.array([0])).item() == pytest.approx(-10.0)

    def test_reductions(self):
        logits = Tensor(np.array([[1.0, 2.0], [3.0, 0.0]]))
        labels = np.array([0, 1])
        per = margin_loss(logits, labels, reduction="none")
        assert per.shape == (2,)
        assert margin_loss(logits, labels, reduction="sum").item() == (
            pytest.approx(per.data.sum())
        )

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            margin_loss(Tensor(np.zeros((1, 2))), np.array([0]), "prod")

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            margin_loss(Tensor(np.zeros(3)), np.array([0]))

    def test_gradients(self):
        labels = np.array([0, 1, 2])
        check_gradients(
            lambda a: margin_loss(a, labels),
            [Tensor(np.random.default_rng(0).normal(size=(3, 4)))],
        )

    def test_gradient_does_not_saturate(self, trained_mlp, tiny_batch):
        """Cross-entropy gradients vanish on confident predictions; the
        margin gradient does not."""
        from repro.attacks.base import Attack
        from repro.nn import cross_entropy

        x, y = tiny_batch
        # Scale up logits to simulate extreme confidence.
        trained_mlp.head.weight.data *= 20.0
        try:
            ce_grad = Attack(
                trained_mlp, loss_fn=cross_entropy
            ).input_gradient(x, y)
            margin_grad = Attack(
                trained_mlp, loss_fn=margin_loss
            ).input_gradient(x, y)
            assert np.abs(margin_grad).mean() > np.abs(ce_grad).mean()
        finally:
            trained_mlp.head.weight.data /= 20.0


class TestMarginAttacks:
    def test_fgsm_with_margin_loss(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = FGSM(trained_mlp, 0.2, loss_fn=margin_loss)
        x_adv = attack.generate(x, y)
        assert np.abs(x_adv - x).max() <= 0.2 + box_tol(x)

    def test_margin_bim_at_least_as_strong(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        eps = 0.15
        ce_acc = (
            trained_mlp.predict(
                BIM(trained_mlp, eps, num_steps=10).generate(x, y)
            ) == y
        ).mean()
        margin_acc = (
            trained_mlp.predict(
                BIM(
                    trained_mlp, eps, num_steps=10, loss_fn=margin_loss
                ).generate(x, y)
            ) == y
        ).mean()
        assert margin_acc <= ce_acc + 0.05
