"""Tests for the momentum iterative method."""

import numpy as np
import pytest

from repro.attacks import BIM, MIM
from repro.autograd import Tensor
from repro.nn import cross_entropy

from tests.helpers import box_tol


class TestInvariants:
    def test_linf_bound(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = MIM(trained_mlp, 0.1, num_steps=5).generate(x, y)
        assert np.abs(x_adv - x).max() <= 0.1 + box_tol(x)

    def test_unit_box(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = MIM(trained_mlp, 0.4, num_steps=5).generate(x, y)
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_increases_loss(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = MIM(trained_mlp, 0.2, num_steps=5).generate(x, y)
        before = cross_entropy(trained_mlp(Tensor(x)), y).item()
        after = cross_entropy(trained_mlp(Tensor(x_adv)), y).item()
        assert after > before

    def test_zero_decay_first_step_matches_bim(self, trained_mlp, tiny_batch):
        """With decay=0 momentum reduces to the per-step gradient sign."""
        x, y = tiny_batch
        mim = MIM(trained_mlp, 0.2, num_steps=1, decay=0.0, step_size=0.2)
        bim = BIM(trained_mlp, 0.2, num_steps=1, step_size=0.2)
        assert np.allclose(mim.generate(x, y), bim.generate(x, y))

    def test_momentum_changes_result(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        with_m = MIM(trained_mlp, 0.2, num_steps=5, decay=1.0).generate(x, y)
        without = MIM(trained_mlp, 0.2, num_steps=5, decay=0.0).generate(x, y)
        assert not np.array_equal(with_m, without)

    def test_deterministic(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = MIM(trained_mlp, 0.2, num_steps=3)
        assert np.array_equal(attack.generate(x, y), attack.generate(x, y))

    def test_invalid_decay(self, trained_mlp):
        with pytest.raises(ValueError, match="decay"):
            MIM(trained_mlp, 0.1, decay=-1.0)
