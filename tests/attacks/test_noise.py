"""Tests for the random-noise baseline."""

import numpy as np
import pytest

from repro.attacks import FGSM, RandomNoise


class TestRandomNoise:
    def test_linf_bound(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = RandomNoise(trained_mlp, 0.1, rng=0).generate(x, y)
        assert np.abs(x_adv - x).max() <= 0.1 + 1e-12

    def test_unit_box(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = RandomNoise(trained_mlp, 0.5, rng=0).generate(x, y)
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_seeded(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        a = RandomNoise(trained_mlp, 0.1, rng=3).generate(x, y)
        b = RandomNoise(trained_mlp, 0.1, rng=3).generate(x, y)
        assert np.array_equal(a, b)

    def test_weaker_than_fgsm(self, trained_mlp, digits_small):
        """Sanity baseline: random noise must hurt far less than gradients."""
        _train, test = digits_small
        x, y = test.arrays()
        eps = 0.2
        noise_acc = (
            trained_mlp.predict(
                RandomNoise(trained_mlp, eps, rng=0).generate(x, y)
            ) == y
        ).mean()
        fgsm_acc = (
            trained_mlp.predict(FGSM(trained_mlp, eps).generate(x, y)) == y
        ).mean()
        assert noise_acc > fgsm_acc

    def test_uses_no_gradients(self, trained_mlp, tiny_batch):
        """RandomNoise never calls the model at all."""
        x, y = tiny_batch

        class Boom:
            def __call__(self, *_a, **_k):
                raise AssertionError("model should not be called")

        attack = RandomNoise(Boom(), 0.1, rng=0)
        attack.generate(x, y)  # must not raise

    def test_invalid_epsilon(self, trained_mlp):
        with pytest.raises(ValueError):
            RandomNoise(trained_mlp, 0.0)
