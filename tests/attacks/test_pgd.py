"""Tests for PGD."""

import numpy as np
import pytest

from repro.attacks import BIM, PGD

from tests.helpers import box_tol


class TestInvariants:
    def test_linf_bound(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = PGD(trained_mlp, 0.1, num_steps=5, rng=0).generate(x, y)
        assert np.abs(x_adv - x).max() <= 0.1 + box_tol(x)

    def test_unit_box(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = PGD(trained_mlp, 0.4, num_steps=5, rng=0).generate(x, y)
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_random_start_differs_across_rngs(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        a = PGD(trained_mlp, 0.2, num_steps=2, rng=0).generate(x, y)
        b = PGD(trained_mlp, 0.2, num_steps=2, rng=1).generate(x, y)
        assert not np.array_equal(a, b)

    def test_seeded_reproducibility(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        a = PGD(trained_mlp, 0.2, num_steps=2, rng=7).generate(x, y)
        b = PGD(trained_mlp, 0.2, num_steps=2, rng=7).generate(x, y)
        assert np.array_equal(a, b)

    def test_no_random_start_matches_bim(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        pgd = PGD(
            trained_mlp, 0.2, num_steps=4, rng=0, random_start=False
        )
        bim = BIM(trained_mlp, 0.2, num_steps=4)
        assert np.allclose(pgd.generate(x, y), bim.generate(x, y))

    def test_at_least_as_strong_as_bim(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        eps = 0.15
        bim_acc = (
            trained_mlp.predict(
                BIM(trained_mlp, eps, num_steps=10).generate(x, y)
            ) == y
        ).mean()
        pgd_acc = (
            trained_mlp.predict(
                PGD(trained_mlp, eps, num_steps=10, rng=0).generate(x, y)
            ) == y
        ).mean()
        assert pgd_acc <= bim_acc + 0.05
