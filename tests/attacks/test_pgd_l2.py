"""Tests for the l2 PGD attack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import PGDL2, project_l2
from repro.autograd import Tensor
from repro.nn import cross_entropy


def l2_norms(delta):
    return np.linalg.norm(delta.reshape(len(delta), -1), axis=1)


class TestProjectL2:
    def test_inside_ball_unchanged(self):
        x = np.zeros((1, 4))
        adv = x + 0.01
        assert np.allclose(project_l2(adv, x, 1.0), adv)

    def test_outside_ball_scaled_to_radius(self):
        x = np.zeros((1, 4))
        adv = np.ones((1, 4))  # norm 2
        out = project_l2(adv, x, 1.0)
        assert np.isclose(l2_norms(out - x)[0], 1.0)

    def test_direction_preserved(self):
        x = np.zeros((1, 2))
        adv = np.array([[3.0, 4.0]])
        out = project_l2(adv, x, 1.0)
        assert np.allclose(out / np.linalg.norm(out), adv / 5.0)

    @given(scale=st.floats(0.01, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_always_within_radius(self, scale):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(4, 8))
        adv = x + rng.normal(size=(4, 8)) * scale
        out = project_l2(adv, x, 0.5)
        assert (l2_norms(out - x) <= 0.5 + 1e-9).all()


class TestPGDL2:
    def test_l2_budget_respected(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = PGDL2(trained_mlp, epsilon=1.0, num_steps=5, rng=0)
        x_adv = attack.generate(x, y)
        assert (l2_norms(x_adv - x) <= 1.0 + 1e-9).all()

    def test_box_respected(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = PGDL2(trained_mlp, epsilon=5.0, num_steps=5, rng=0).generate(
            x, y
        )
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_increases_loss(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = PGDL2(
            trained_mlp, epsilon=2.0, num_steps=10, rng=0
        ).generate(x, y)
        before = cross_entropy(trained_mlp(Tensor(x)), y).item()
        after = cross_entropy(trained_mlp(Tensor(x_adv)), y).item()
        assert after > before

    def test_degrades_accuracy(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        clean = (trained_mlp.predict(x) == y).mean()
        x_adv = PGDL2(trained_mlp, epsilon=3.0, num_steps=10, rng=0).generate(
            x, y
        )
        assert (trained_mlp.predict(x_adv) == y).mean() < clean - 0.3

    def test_default_step_heuristic(self, trained_mlp):
        attack = PGDL2(trained_mlp, epsilon=1.0, num_steps=10)
        assert np.isclose(attack.step_size, 0.25)

    def test_no_random_start_deterministic(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = PGDL2(
            trained_mlp, epsilon=1.0, num_steps=3, random_start=False
        )
        assert np.array_equal(attack.generate(x, y), attack.generate(x, y))

    def test_validation(self, trained_mlp):
        with pytest.raises(ValueError):
            PGDL2(trained_mlp, epsilon=0.0)
        with pytest.raises(ValueError):
            PGDL2(trained_mlp, epsilon=1.0, num_steps=0)
