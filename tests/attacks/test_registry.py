"""Tests for the canonical attack registry and spec grammar."""

import numpy as np
import pytest

from repro.attacks import (
    BIM,
    FGSM,
    MIM,
    PGD,
    PGDL2,
    AttackSpec,
    DeepFool,
    RandomNoise,
    attack_names,
    build_attack,
    canonical_attack_name,
    parse_attack_spec,
)
from repro.attacks.losses import margin_loss
from repro.models import mnist_mlp


@pytest.fixture(scope="module")
def model():
    return mnist_mlp(seed=0)


class TestParse:
    def test_bare_name(self):
        spec = parse_attack_spec("fgsm")
        assert spec == AttackSpec("fgsm", {})

    def test_params_coerced(self):
        spec = parse_attack_spec(
            "pgd:num_steps=10,step_size=0.05,random_start=true,rng=none"
        )
        assert spec.name == "pgd"
        assert spec.params == {
            "num_steps": 10,
            "step_size": 0.05,
            "random_start": True,
            "rng": None,
        }
        assert isinstance(spec.params["num_steps"], int)
        assert isinstance(spec.params["step_size"], float)

    def test_alias_expansion(self):
        assert parse_attack_spec("bim10") == AttackSpec(
            "bim", {"num_steps": 10}
        )
        assert parse_attack_spec("bim30") == AttackSpec(
            "bim", {"num_steps": 30}
        )
        assert parse_attack_spec("pgdl2").name == "pgd_l2"
        assert parse_attack_spec("random_noise").name == "noise"

    def test_spec_params_override_alias_params(self):
        spec = parse_attack_spec("bim10:num_steps=7")
        assert spec.params["num_steps"] == 7

    def test_case_and_whitespace(self):
        assert parse_attack_spec("  FGSM  ").name == "fgsm"

    def test_render_round_trips(self):
        spec = parse_attack_spec("pgd:rng=3,num_steps=10")
        assert parse_attack_spec(spec.render()) == spec

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_attack_spec("bim:numsteps")
        with pytest.raises(ValueError, match="non-empty"):
            parse_attack_spec("")
        with pytest.raises(ValueError, match="non-empty"):
            parse_attack_spec(None)

    def test_passthrough(self):
        spec = AttackSpec("bim", {"num_steps": 4})
        assert parse_attack_spec(spec) is spec


class TestCanonicalNames:
    def test_known_names(self):
        assert canonical_attack_name("bim10") == "bim"
        assert canonical_attack_name("PGDL2") == "pgd_l2"
        assert canonical_attack_name("fgsm") == "fgsm"
        for clean in ("clean", "none", "original"):
            assert canonical_attack_name(clean) == "clean"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown attack"):
            canonical_attack_name("cw")

    def test_attack_names_sorted_canonical(self):
        names = attack_names()
        assert names == tuple(sorted(names))
        assert "bim" in names and "bim10" not in names


class TestBuild:
    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("fgsm", FGSM),
            ("bim", BIM),
            ("pgd", PGD),
            ("pgd_l2", PGDL2),
            ("pgdl2", PGDL2),
            ("mim", MIM),
            ("noise", RandomNoise),
            ("random_noise", RandomNoise),
        ],
    )
    def test_builds_expected_class(self, model, spec, cls):
        attack = build_attack(spec, model, epsilon=0.25)
        assert type(attack) is cls
        assert attack.epsilon == 0.25

    def test_clean_specs_build_none(self, model):
        for spec in ("clean", "none", "original"):
            assert build_attack(spec, model, epsilon=0.25) is None

    def test_alias_step_counts(self, model):
        assert build_attack("bim10", model, epsilon=0.25).num_steps == 10
        assert build_attack("bim30", model, epsilon=0.25).num_steps == 30

    def test_spec_epsilon_overrides_keyword(self, model):
        attack = build_attack("bim:epsilon=0.1", model, epsilon=0.25)
        assert attack.epsilon == 0.1

    def test_missing_epsilon_rejected(self, model):
        with pytest.raises(ValueError, match="needs an epsilon"):
            build_attack("bim", model)

    def test_deepfool_needs_no_epsilon(self, model):
        attack = build_attack("deepfool:max_steps=5", model)
        assert type(attack) is DeepFool
        assert attack.max_steps == 5
        # A supplied experiment-wide epsilon is simply ignored.
        assert type(build_attack("deepfool", model, epsilon=0.25)) is DeepFool

    def test_overrides_yield_to_spec_params(self, model):
        attack = build_attack(
            "bim:num_steps=3", model, epsilon=0.25, num_steps=7
        )
        assert attack.num_steps == 3

    def test_loss_fn_override(self, model):
        attack = build_attack(
            "fgsm", model, epsilon=0.25, loss_fn=margin_loss
        )
        assert attack.loss_fn is margin_loss

    def test_unknown_attack(self, model):
        with pytest.raises(KeyError, match="unknown attack"):
            build_attack("cw", model, epsilon=0.25)

    def test_built_attack_runs(self, model, digits_small):
        train, _test = digits_small
        x, y = train.arrays()
        x = np.asarray(x, dtype=np.float64)[:8]
        y = np.asarray(y)[:8]
        attack = build_attack(
            "pgd:num_steps=2,rng=0", model, epsilon=0.25
        )
        x_adv = attack.generate(x, y)
        assert x_adv.shape == x.shape
        assert np.all(np.abs(x_adv - x) <= 0.25 + 1e-12)
