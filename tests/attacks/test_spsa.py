"""Tests for the gradient-free SPSA attack."""

import numpy as np
import pytest

from repro.attacks import SPSA

from tests.helpers import box_tol


class TestSPSA:
    def test_linf_bound(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        attack = SPSA(trained_mlp, 0.15, num_steps=3, samples=4, rng=0)
        x_adv = attack.generate(x, y)
        assert np.abs(x_adv - x).max() <= 0.15 + box_tol(x)

    def test_box_bound(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        x_adv = SPSA(
            trained_mlp, 0.5, num_steps=3, samples=4, rng=0
        ).generate(x, y)
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_degrades_accuracy_without_gradients(
        self, trained_mlp, digits_small
    ):
        _train, test = digits_small
        x, y = test.arrays()
        x, y = x[:40], y[:40]
        clean = (trained_mlp.predict(x) == y).mean()
        attack = SPSA(trained_mlp, 0.25, num_steps=8, samples=16, rng=0)
        adv_acc = (trained_mlp.predict(attack.generate(x, y)) == y).mean()
        assert adv_acc < clean - 0.3

    def test_more_samples_at_least_as_strong(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        x, y = x[:30], y[:30]
        weak = SPSA(trained_mlp, 0.25, num_steps=5, samples=2, rng=0)
        strong = SPSA(trained_mlp, 0.25, num_steps=5, samples=24, rng=0)
        weak_acc = (trained_mlp.predict(weak.generate(x, y)) == y).mean()
        strong_acc = (trained_mlp.predict(strong.generate(x, y)) == y).mean()
        assert strong_acc <= weak_acc + 0.1

    def test_seeded_reproducibility(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        a = SPSA(trained_mlp, 0.2, num_steps=2, samples=4, rng=3).generate(x, y)
        b = SPSA(trained_mlp, 0.2, num_steps=2, samples=4, rng=3).generate(x, y)
        assert np.array_equal(a, b)

    def test_no_graph_built(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        trained_mlp.zero_grad()  # other tests may have left gradients
        SPSA(trained_mlp, 0.2, num_steps=1, samples=2, rng=0).generate(x, y)
        assert all(p.grad is None for p in trained_mlp.parameters())

    def test_validation(self, trained_mlp):
        with pytest.raises(ValueError):
            SPSA(trained_mlp, 0.1, samples=0)
        with pytest.raises(ValueError):
            SPSA(trained_mlp, 0.1, delta=0.0)
        with pytest.raises(ValueError):
            SPSA(trained_mlp, 0.1, num_steps=0)
