"""Tests for the autograd engine core (Tensor, Function, backward)."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    as_tensor,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)


class TestTensorBasics:
    def test_wraps_numpy_array(self):
        t = Tensor(np.ones((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert t.dtype == np.float64

    def test_wraps_nested_tensor(self):
        inner = Tensor([1.0, 2.0])
        outer = Tensor(inner)
        assert np.array_equal(outer.data, inner.data)

    def test_requires_grad_defaults_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError, match="floating point"):
            Tensor(np.array([1, 2]), requires_grad=True)

    def test_item_on_scalar(self):
        assert Tensor([3.5]).item() == 3.5

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3.0).detach()
        assert not y.requires_grad
        assert y._ctx is None

    def test_copy_is_deep(self):
        x = Tensor([1.0, 2.0])
        c = x.copy()
        c.data[0] = 99.0
        assert x.data[0] == 1.0

    def test_astype(self):
        x = Tensor([1.0])
        assert x.astype(np.float32).dtype == np.float32

    def test_transpose_property(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)


class TestBackward:
    def test_scalar_backward_default_grad(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x * x).sum().backward()
        assert np.allclose(x.grad, [4.0, 6.0])

    def test_backward_requires_grad_flag(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError, match="does not require grad"):
            x.backward()

    def test_non_scalar_needs_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError, match="non-scalar"):
            y.backward()

    def test_explicit_grad_shape_checked(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError, match="shape"):
            y.backward(np.ones(3))

    def test_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        assert np.allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates(self):
        # y = x*2, z = x*3, out = y + z -> d out / dx = 5
        x = Tensor([1.0], requires_grad=True)
        out = (x * 2.0 + x * 3.0).sum()
        out.backward()
        assert np.allclose(x.grad, [5.0])

    def test_reused_tensor_in_one_expression(self):
        x = Tensor([3.0], requires_grad=True)
        (x * x * x).sum().backward()  # d/dx x^3 = 3x^2
        assert np.allclose(x.grad, [27.0])

    def test_deep_chain_does_not_recurse(self):
        # 5000 sequential ops would blow Python's recursion limit if the
        # topological sort were recursive.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1.0
        y.sum().backward()
        assert np.allclose(x.grad, [1.0])

    def test_constant_branch_gets_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([2.0])  # no grad
        (x * c).sum().backward()
        assert c.grad is None
        assert np.allclose(x.grad, [2.0])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._ctx is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_set_grad_enabled(self):
        set_grad_enabled(False)
        try:
            x = Tensor([1.0], requires_grad=True)
            assert (x * 2)._ctx is None
        finally:
            set_grad_enabled(True)


class TestAsTensor:
    def test_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_promotes_int_to_float(self):
        t = as_tensor([1, 2, 3])
        assert np.issubdtype(t.dtype, np.floating)

    def test_scalar(self):
        assert as_tensor(2.5).item() == 2.5

    def test_dtype_cast(self):
        t = as_tensor(np.ones(3, dtype=np.float64), dtype=np.float32)
        assert t.dtype == np.float32
