"""Property-based fuzzing of the autograd engine.

Hypothesis builds random compositions of differentiable operations and
checks every composite against central finite differences — the strongest
guarantee the engine offers: if arbitrary compositions differentiate
correctly, so does any model built from them.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients

# Unary ops, all smooth on the sampled domain (inputs kept near [0.5, 2]).
UNARY_OPS = [
    ("exp", lambda t: t.exp()),
    ("log", lambda t: t.log()),
    ("sqrt", lambda t: t.sqrt()),
    ("sigmoid", lambda t: t.sigmoid()),
    ("tanh", lambda t: t.tanh()),
    ("square", lambda t: t * t),
    ("scale", lambda t: t * 0.5 + 1.0),
    ("mean0", lambda t: t.mean(axis=0, keepdims=True) + t * 0.0 + 1.0),
    ("softmax", lambda t: t.softmax(axis=-1) + 1.0),
    ("neg_exp", lambda t: (-t).exp()),
]

BINARY_OPS = [
    ("add", lambda a, b: a + b),
    ("mul", lambda a, b: a * b),
    ("div", lambda a, b: a / (b + 3.0)),
    ("sub_scaled", lambda a, b: a - 0.5 * b),
]


@st.composite
def op_chain(draw):
    """A random chain of 1-4 unary ops plus one binary combination."""
    ops = draw(
        st.lists(st.sampled_from(UNARY_OPS), min_size=1, max_size=4)
    )
    binary = draw(st.sampled_from(BINARY_OPS))
    return ops, binary


@given(chain=op_chain(), seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_random_composition_gradients(chain, seed):
    ops, (_bname, binary) = chain
    rng = np.random.default_rng(seed)
    # Domain [0.6, 1.8]: positive and away from kinks for log/sqrt.
    a = Tensor(rng.uniform(0.6, 1.8, size=(3, 4)))
    b = Tensor(rng.uniform(0.6, 1.8, size=(3, 4)))

    def fn(x, y):
        out = binary(x, y)
        for _name, op in ops:
            out = op(out)
        return out

    # Discard numerically explosive or out-of-domain compositions (e.g.
    # exp(exp(exp(x))), log of a negative intermediate): finite differences
    # cannot probe them, and they are not what models compute.  Every
    # *stage* must stay bounded — a finite final value can hide an infinite
    # intermediate whose backward produces 0 * inf = nan.
    with np.errstate(all="ignore"):
        stage = binary(a, b)
        stages = [stage]
        for _name, op in ops:
            stage = op(stage)
            stages.append(stage)
    for value in stages:
        assume(
            np.isfinite(value.data).all()
            and np.abs(value.data).max() < 1e6
        )
    assume(np.abs(stages[-1].data).max() < 1e3)

    check_gradients(fn, [a, b], atol=5e-4, rtol=5e-3)


@given(seed=st.integers(0, 10_000), depth=st.integers(1, 30))
@settings(max_examples=30, deadline=None)
def test_repeated_self_composition(seed, depth):
    """y = x * c applied `depth` times: grad must be exactly c^depth."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.uniform(0.5, 1.5, size=(4,)), requires_grad=True)
    c = 1.01
    y = x
    for _ in range(depth):
        y = y * c
    y.sum().backward()
    assert np.allclose(x.grad, c ** depth)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_fan_out_gradient_sums(seed):
    """Using a tensor in k branches must sum the branch gradients."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(2, 6))
    x = Tensor(rng.uniform(0.5, 1.5, size=(3,)), requires_grad=True)
    total = x * 0.0
    for i in range(k):
        total = total + x * float(i + 1)
    total.sum().backward()
    expected = sum(range(1, k + 1))
    assert np.allclose(x.grad, expected)
