"""Tests for the numerical gradient checker itself."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, numerical_gradient
from repro.autograd.engine import Function


def test_numerical_gradient_of_square():
    x = Tensor(np.array([1.0, 2.0, 3.0]))
    grad = numerical_gradient(lambda a: a * a, [x], 0)
    assert np.allclose(grad, 2.0 * x.data, atol=1e-5)


def test_check_gradients_passes_on_correct_op():
    check_gradients(lambda a: a * 2.0, [Tensor(np.array([1.0, -2.0]))])


def test_check_gradients_catches_wrong_backward():
    class BadDouble(Function):
        @staticmethod
        def forward(ctx, a):
            return a * 2.0

        @staticmethod
        def backward(ctx, grad_output):
            return (grad_output * 3.0,)  # wrong: should be * 2

    with pytest.raises(AssertionError, match="gradient mismatch"):
        check_gradients(
            lambda a: BadDouble.apply(a), [Tensor(np.array([1.0, 2.0]))]
        )


def test_check_gradients_coerces_raw_arrays():
    check_gradients(lambda a: a + 1.0, [np.array([1.0, 2.0])])
