"""Tests for the numerical gradient checker — and, through it, every op.

The second half of this module runs ``check_gradients`` over **every**
``Function`` subclass the autograd package registers (including the fused
``SoftmaxCrossEntropy`` loss), with a final exhaustiveness test that fails
when a newly added op has no gradient-check case here.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, numerical_gradient
from repro.autograd import ops_basic, ops_loss, ops_nn, ops_reduce, ops_shape
from repro.autograd.engine import Function


def test_numerical_gradient_of_square():
    x = Tensor(np.array([1.0, 2.0, 3.0]))
    grad = numerical_gradient(lambda a: a * a, [x], 0)
    assert np.allclose(grad, 2.0 * x.data, atol=1e-5)


def test_check_gradients_passes_on_correct_op():
    check_gradients(lambda a: a * 2.0, [Tensor(np.array([1.0, -2.0]))])


def test_check_gradients_catches_wrong_backward():
    class BadDouble(Function):
        @staticmethod
        def forward(ctx, a):
            return a * 2.0

        @staticmethod
        def backward(ctx, grad_output):
            return (grad_output * 3.0,)  # wrong: should be * 2

    with pytest.raises(AssertionError, match="gradient mismatch"):
        check_gradients(
            lambda a: BadDouble.apply(a), [Tensor(np.array([1.0, 2.0]))]
        )


def test_check_gradients_coerces_raw_arrays():
    check_gradients(lambda a: a + 1.0, [np.array([1.0, 2.0])])


# --------------------------------------------------------------------------
# Exhaustive per-op gradient checks
# --------------------------------------------------------------------------
# One numerical-vs-analytical case for every Function subclass the autograd
# package registers.  Inputs are chosen away from kinks (ReLU/Abs zeros,
# clip bounds, max/min ties) so the central difference is well defined, and
# pool/argmax inputs use irrational-ish values so a +/-eps nudge cannot flip
# a winner.  Non-differentiable arguments (labels, masks, shapes, indices)
# are closed over; gradients are checked for every Tensor argument.

_R = np.random.default_rng(7)


def _smooth(*shape):
    """Random values bounded away from 0 and from each other."""
    signs = np.where(_R.random(shape) < 0.5, -1.0, 1.0)
    return signs * (0.2 + _R.random(shape))


_A23 = _smooth(2, 3)
_B23 = _smooth(2, 3)
_P23 = 0.2 + _R.random((2, 3))  # strictly positive (Log/Sqrt/Pow)
_SEP = _A23 + np.where(_R.random((2, 3)) < 0.5, -0.3, 0.3)  # |a-b| >= 0.3
_COND = np.array([[True, False, True], [False, True, False]])
_IMG = _R.standard_normal((2, 3, 6, 6)) * 1.7  # continuous: no pool ties
_KERNEL = _R.standard_normal((4, 3, 3, 3)) * 0.4
_BIAS = _R.standard_normal(4) * 0.1
_LABELS = np.array([2, 0, 3])
_MASK = (_R.random((2, 5)) < 0.7).astype(float) / 0.7
_DISTINCT = _R.permutation(24).astype(float).reshape(2, 3, 4) * 0.37

_CASES = {
    # ops_basic -----------------------------------------------------------
    "Add": (lambda a, b: ops_basic.Add.apply(a, b), [_A23, _smooth(3)]),
    "Sub": (lambda a, b: ops_basic.Sub.apply(a, b), [_A23, _smooth(2, 1)]),
    "Mul": (lambda a, b: ops_basic.Mul.apply(a, b), [_A23, _B23]),
    "Div": (lambda a, b: ops_basic.Div.apply(a, b), [_A23, _B23]),
    "Neg": (lambda a: ops_basic.Neg.apply(a), [_A23]),
    "Exp": (lambda a: ops_basic.Exp.apply(a), [_A23]),
    "Log": (lambda a: ops_basic.Log.apply(a), [_P23]),
    "Sqrt": (lambda a: ops_basic.Sqrt.apply(a), [_P23]),
    "Abs": (lambda a: ops_basic.Abs.apply(a), [_A23]),
    "Pow": (lambda a: ops_basic.Pow.apply(a, 1.7), [_P23]),
    "Clip": (
        lambda a: ops_basic.Clip.apply(a * 3.0, -1.0, 1.0),
        [_A23],  # scaled so interior/exterior elements sit away from +/-1
    ),
    "Maximum": (lambda a, b: ops_basic.Maximum.apply(a, b), [_A23, _SEP]),
    "Minimum": (lambda a, b: ops_basic.Minimum.apply(a, b), [_A23, _SEP]),
    "Where": (
        lambda a, b: ops_basic.Where.apply(_COND, a, b),
        [_A23, _smooth(3)],
    ),
    # ops_shape -----------------------------------------------------------
    "Reshape": (lambda a: ops_shape.Reshape.apply(a, (3, 2)), [_A23]),
    "Transpose": (lambda a: ops_shape.Transpose.apply(a, (1, 0)), [_A23]),
    "GetItem": (
        lambda a: ops_shape.GetItem.apply(a, (slice(0, 2), [0, 2, 2])),
        [_A23],  # repeated fancy index exercises the scatter-add
    ),
    "Concat": (
        lambda a, b: ops_shape.Concat.apply(a, b, axis=1),
        [_A23, _smooth(2, 2)],
    ),
    "Pad": (
        lambda a: ops_shape.Pad.apply(a, ((1, 0), (2, 1))),
        [_A23],
    ),
    "BroadcastTo": (
        lambda a: ops_shape.BroadcastTo.apply(a, (4, 2, 3)),
        [_smooth(2, 1)],
    ),
    # ops_reduce ----------------------------------------------------------
    "Sum": (lambda a: ops_reduce.Sum.apply(a, axis=1, keepdims=True), [_A23]),
    "Mean": (lambda a: ops_reduce.Mean.apply(a, axis=0), [_A23]),
    "MaxMin": (
        lambda a: ops_reduce.MaxMin.apply(a, axis=2, mode="max")
        + ops_reduce.MaxMin.apply(a, mode="min"),
        [_DISTINCT],
    ),
    "LogSumExp": (
        lambda a: ops_reduce.LogSumExp.apply(a, axis=-1, keepdims=False),
        [_A23],
    ),
    # ops_loss ------------------------------------------------------------
    "SoftmaxCrossEntropy": (
        lambda logits: ops_loss.SoftmaxCrossEntropy.apply(
            logits, _LABELS, reduction="mean", label_smoothing=0.1
        ),
        [_R.standard_normal((3, 5))],
    ),
    # ops_nn --------------------------------------------------------------
    "MatMul": (
        lambda a, b: ops_nn.MatMul.apply(a, b),
        [_smooth(2, 3, 4), _smooth(4, 5)],
    ),
    "ReLU": (lambda a: ops_nn.ReLU.apply(a), [_A23]),
    "LeakyReLU": (
        lambda a: ops_nn.LeakyReLU.apply(a, negative_slope=0.2), [_A23]
    ),
    "Sigmoid": (lambda a: ops_nn.Sigmoid.apply(a), [_A23]),
    "Tanh": (lambda a: ops_nn.Tanh.apply(a), [_A23]),
    "Softmax": (lambda a: ops_nn.Softmax.apply(a, axis=-1), [_A23]),
    "Conv2d": (
        lambda x, w, b: ops_nn.Conv2d.apply(x, w, b, stride=2, padding=1),
        [_IMG, _KERNEL, _BIAS],
    ),
    "MaxPool2d": (
        lambda x: ops_nn.MaxPool2d.apply(x, kernel_size=2)
        + ops_nn.MaxPool2d.apply(x, kernel_size=3, stride=2, padding=1),
        [_IMG],  # k=2 fast path plus the generic strided/padded path
    ),
    "AvgPool2d": (
        lambda x: ops_nn.AvgPool2d.apply(x, kernel_size=2, padding=1),
        [_IMG],
    ),
    "DropoutMask": (
        lambda a: ops_nn.DropoutMask.apply(a, _MASK), [_smooth(2, 5)]
    ),
}


@pytest.mark.parametrize("name", sorted(_CASES))
def test_op_gradients(name):
    fn, inputs = _CASES[name]
    check_gradients(fn, [Tensor(np.asarray(x, dtype=float)) for x in inputs])


def test_every_registered_op_has_a_gradient_case():
    """Adding a Function subclass without a grad-check case fails here."""

    def walk(cls):
        for sub in cls.__subclasses__():
            yield sub
            yield from walk(sub)

    registered = {
        sub.__name__
        for sub in walk(Function)
        if sub.__module__.startswith("repro.")  # skip test-local helpers
    }
    missing = registered - set(_CASES)
    assert not missing, f"ops without a gradient-check case: {sorted(missing)}"
    stale = set(_CASES) - registered
    assert not stale, f"gradient-check cases for unknown ops: {sorted(stale)}"
