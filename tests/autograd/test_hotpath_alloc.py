"""Allocation-regression tests for the hot-path training step.

Once the workspace pool is warm, a training step must serve every scratch
buffer from the pool (the miss counter stays put) and the backward pass
must stay within a small, fixed budget of explicit array allocations —
catching regressions that quietly reintroduce per-step allocation churn.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import mnist_cnn
from repro.nn import cross_entropy
from repro.runtime import clear_workspace, get_workspace, hotpaths, precision


@pytest.fixture(autouse=True)
def _clean_pool():
    clear_workspace()
    yield
    clear_workspace()


def batch(n=16):
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, size=(n, 1, 28, 28))
    y = rng.integers(0, 10, size=n)
    return x, y


def train_step(model, x, y):
    model.zero_grad()
    loss = cross_entropy(model(Tensor(x)), y)
    loss.backward()
    return loss


def test_warm_step_serves_all_buffers_from_pool():
    x, y = batch()
    with hotpaths(True), precision("float64"):
        model = mnist_cnn(seed=0)
        for _ in range(2):
            train_step(model, x, y)
        workspace = get_workspace()
        misses_before = workspace.misses
        hits_before = workspace.hits
        train_step(model, x, y)
        assert workspace.misses == misses_before, (
            "a warmed training step allocated fresh workspace buffers "
            f"({workspace.misses - misses_before} pool misses)"
        )
        assert workspace.hits > hits_before


def test_backward_allocation_budget(monkeypatch):
    """Count explicit np.empty/np.zeros/np.*_like calls during backward.

    The engine and kernels may allocate escaping results (gradients handed
    to ``.grad``), but the total must stay small and fixed; allocation in a
    loop over graph nodes would blow well past this bound.
    """
    x, y = batch()
    with hotpaths(True), precision("float64"):
        model = mnist_cnn(seed=0)
        for _ in range(2):
            train_step(model, x, y)
        model.zero_grad()
        loss = cross_entropy(model(Tensor(x)), y)

        counts = {"n": 0}

        def counting(real):
            def wrapper(*args, **kwargs):
                counts["n"] += 1
                return real(*args, **kwargs)
            return wrapper

        for name in ("empty", "zeros", "ones", "empty_like",
                     "zeros_like", "ones_like"):
            monkeypatch.setattr(np, name, counting(getattr(np, name)))
        loss.backward()
    # Escaping allocations per backward of the 2-conv/2-pool/2-dense CNN:
    # the root seed, per-layer image gradients and the leaf .grad copies.
    assert counts["n"] <= 24, (
        f"backward() made {counts['n']} explicit array allocations "
        "(budget 24) — a hot-path buffer stopped being pooled"
    )


def test_repeated_steps_do_not_grow_the_pool():
    x, y = batch()
    with hotpaths(True), precision("float64"):
        model = mnist_cnn(seed=0)
        for _ in range(2):
            train_step(model, x, y)
        workspace = get_workspace()
        cached = workspace.cached_buffers
        for _ in range(3):
            train_step(model, x, y)
        assert workspace.cached_buffers == cached, (
            "steady-state training grew the free-buffer pool: buffers are "
            "being acquired under one shape and released under another"
        )
