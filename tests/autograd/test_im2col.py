"""Fast-vs-reference parity for the im2col/col2im kernels.

The sliding-window gather and the layout-specialised scatter must be bit-
compatible with the original kernel-position loops across every stride /
padding / kernel combination the layers can produce.
"""

import numpy as np
import pytest

from repro.autograd._im2col import (
    col2im,
    col2im_reference,
    conv_output_size,
    im2col,
    im2col_reference,
)
from repro.runtime import clear_workspace, get_workspace, hotpaths

CASES = [
    # (kernel, stride, padding)
    (3, 1, 0),
    (3, 1, 1),
    (3, 2, 1),
    (2, 2, 0),   # pooling tiling layout: pure-permutation col2im
    (2, 2, 1),
    (3, 3, 0),
    (5, 1, 2),
    (2, 1, 0),
]


@pytest.fixture(autouse=True)
def _clean_pool():
    clear_workspace()
    yield
    clear_workspace()


@pytest.mark.parametrize("kernel,stride,padding", CASES)
def test_im2col_matches_reference(kernel, stride, padding):
    x = np.random.default_rng(0).normal(size=(2, 3, 12, 12))
    expected = im2col_reference(x, kernel, kernel, stride, padding)
    with hotpaths(True):
        fast = im2col(x, kernel, kernel, stride, padding)
        assert np.array_equal(fast, expected)
        get_workspace().release(fast)


@pytest.mark.parametrize("kernel,stride,padding", CASES)
def test_col2im_matches_reference(kernel, stride, padding):
    n, c, h, w = 2, 3, 12, 12
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    cols = np.random.default_rng(1).normal(
        size=(n * out_h * out_w, c * kernel * kernel)
    )
    expected = col2im_reference(cols, (n, c, h, w), kernel, kernel, stride, padding)
    with hotpaths(True):
        fast = col2im(cols, (n, c, h, w), kernel, kernel, stride, padding)
    assert np.allclose(fast, expected, atol=1e-12)


def test_im2col_pad_value_reaches_border():
    x = np.full((1, 1, 2, 2), 7.0)
    with hotpaths(True):
        cols = im2col(x, 2, 2, 1, 1, pad_value=-np.inf)
        assert cols.min() == -np.inf
        get_workspace().release(cols)
    ref = im2col_reference(x, 2, 2, 1, 1, pad_value=-np.inf)
    assert ref.min() == -np.inf


def test_dispatch_follows_hotpath_flag():
    x = np.random.default_rng(2).normal(size=(1, 2, 6, 6))
    with hotpaths(False):
        baseline = im2col(x, 3, 3, 1, 1)
    with hotpaths(True):
        fast = im2col(x, 3, 3, 1, 1)
        assert np.array_equal(baseline, fast)
        get_workspace().release(fast)


def test_round_trip_counts_window_coverage():
    # col2im(im2col(x)) multiplies each cell by its window multiplicity;
    # for the 2x2/stride-2 tiling every cell is covered exactly once.
    x = np.random.default_rng(3).normal(size=(2, 2, 8, 8))
    with hotpaths(True):
        cols = im2col(x, 2, 2, 2, 0)
        back = col2im(cols, x.shape, 2, 2, 2, 0)
        get_workspace().release(cols)
    assert np.allclose(back, x, atol=1e-12)
