"""Tests for elementwise operations and their gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import (
    Tensor,
    check_gradients,
    clip,
    maximum,
    minimum,
    sign,
    where,
)
from repro.autograd.ops_basic import unbroadcast


def t(values, grad=False):
    return Tensor(np.asarray(values, dtype=np.float64), requires_grad=grad)


class TestForwardValues:
    def test_add(self):
        assert np.allclose((t([1.0]) + t([2.0])).data, [3.0])

    def test_radd_scalar(self):
        assert np.allclose((1.0 + t([2.0])).data, [3.0])

    def test_sub_rsub(self):
        assert np.allclose((t([5.0]) - 2.0).data, [3.0])
        assert np.allclose((5.0 - t([2.0])).data, [3.0])

    def test_mul_div(self):
        assert np.allclose((t([3.0]) * t([4.0])).data, [12.0])
        assert np.allclose((t([8.0]) / t([2.0])).data, [4.0])

    def test_rtruediv(self):
        assert np.allclose((8.0 / t([2.0])).data, [4.0])

    def test_neg(self):
        assert np.allclose((-t([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        assert np.allclose((t([2.0]) ** 3).data, [8.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            t([2.0]) ** t([3.0])

    def test_exp_log_roundtrip(self):
        x = t([0.5, 1.5])
        assert np.allclose(x.exp().log().data, x.data)

    def test_sqrt(self):
        assert np.allclose(t([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_abs(self):
        assert np.allclose(t([-1.5, 2.0]).abs().data, [1.5, 2.0])

    def test_clip(self):
        out = clip(t([-1.0, 0.5, 2.0]), 0.0, 1.0)
        assert np.allclose(out.data, [0.0, 0.5, 1.0])

    def test_sign_detached(self):
        x = t([-2.0, 0.0, 3.0], grad=True)
        s = sign(x)
        assert np.allclose(s.data, [-1.0, 0.0, 1.0])
        assert not s.requires_grad

    def test_maximum_minimum(self):
        assert np.allclose(maximum(t([1.0, 5.0]), t([3.0, 2.0])).data, [3.0, 5.0])
        assert np.allclose(minimum(t([1.0, 5.0]), t([3.0, 2.0])).data, [1.0, 2.0])

    def test_where(self):
        out = where(np.array([True, False]), t([1.0, 1.0]), t([9.0, 9.0]))
        assert np.allclose(out.data, [1.0, 9.0])

    def test_comparisons_detached(self):
        a, b = t([1.0, 3.0], grad=True), t([2.0, 2.0])
        for result in (a > b, a < b, a >= b, a <= b):
            assert not result.requires_grad


class TestGradients:
    def test_add_broadcast(self):
        check_gradients(
            lambda a, b: a + b,
            [Tensor(np.random.default_rng(0).normal(size=(3, 4))),
             Tensor(np.random.default_rng(1).normal(size=(4,)))],
        )

    def test_sub_broadcast(self):
        check_gradients(
            lambda a, b: a - b,
            [Tensor(np.random.default_rng(0).normal(size=(2, 3))),
             Tensor(np.random.default_rng(1).normal(size=(1, 3)))],
        )

    def test_mul(self):
        check_gradients(
            lambda a, b: a * b,
            [Tensor(np.random.default_rng(0).normal(size=(3, 2))),
             Tensor(np.random.default_rng(1).normal(size=(3, 2)))],
        )

    def test_div(self):
        rng = np.random.default_rng(0)
        check_gradients(
            lambda a, b: a / b,
            [Tensor(rng.normal(size=(3,))),
             Tensor(rng.uniform(1.0, 2.0, size=(3,)))],
        )

    def test_pow(self):
        check_gradients(
            lambda a: a ** 3,
            [Tensor(np.random.default_rng(0).uniform(0.5, 2.0, size=(4,)))],
        )

    def test_exp_log_sqrt_abs(self):
        rng = np.random.default_rng(0)
        check_gradients(lambda a: a.exp(), [Tensor(rng.normal(size=(3,)))])
        check_gradients(
            lambda a: a.log(), [Tensor(rng.uniform(0.5, 2.0, size=(3,)))]
        )
        check_gradients(
            lambda a: a.sqrt(), [Tensor(rng.uniform(0.5, 2.0, size=(3,)))]
        )
        check_gradients(
            lambda a: a.abs(),
            [Tensor(rng.normal(size=(3,)) + 0.5)],  # keep away from 0
        )

    def test_clip_gradient_masks_boundaries(self):
        x = t([-2.0, 0.5, 2.0], grad=True)
        clip(x, 0.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_gradient_routing(self):
        a = t([1.0, 5.0], grad=True)
        b = t([3.0, 2.0], grad=True)
        maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_where_gradient_routing(self):
        a = t([1.0, 1.0], grad=True)
        b = t([9.0, 9.0], grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])


class TestUnbroadcast:
    def test_identity_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        assert out.shape == (2, 3)
        assert np.allclose(out, 4.0)

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        assert np.allclose(out, 2.0)

    def test_scalar_target(self):
        out = unbroadcast(np.ones((2, 3)), ())
        assert out.shape == ()
        assert out == 6.0

    @given(
        shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_gradient_sum_preserved(self, shape):
        """Unbroadcasting must conserve the total gradient mass."""
        rng = np.random.default_rng(0)
        big_shape = (2,) + shape
        g = rng.normal(size=big_shape)
        out = unbroadcast(g, shape)
        assert out.shape == shape
        assert np.isclose(out.sum(), g.sum())


@given(
    data=arrays(
        np.float64,
        array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
        elements=st.floats(-10, 10),
    )
)
@settings(max_examples=40, deadline=None)
def test_clip_always_within_bounds(data):
    out = clip(Tensor(data), -1.0, 1.0).data
    assert out.min() >= -1.0 and out.max() <= 1.0


@given(
    data=arrays(
        np.float64,
        array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=6),
        elements=st.floats(-100, 100),
    )
)
@settings(max_examples=40, deadline=None)
def test_add_neg_is_sub(data):
    a = Tensor(data)
    b = Tensor(data * 0.5 + 1.0)
    assert np.allclose((a + (-b)).data, (a - b).data)
