"""Tests for the fused softmax cross-entropy graph node.

The fused kernel must be indistinguishable — values and gradients — from
the composed ``log_softmax`` + one-hot chain it replaces, under every
reduction, with and without label smoothing, and under both precision
policies.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, softmax_cross_entropy
from repro.nn import cross_entropy, cross_entropy_reference
from repro.runtime import hotpaths, precision

REDUCTIONS = ["mean", "sum", "none"]
SMOOTHINGS = [0.0, 0.1]


def make_case(n=6, c=5, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(n, c)).astype(dtype)
    labels = rng.integers(0, c, size=n)
    return logits, labels


class TestFusedMatchesComposed:
    @pytest.mark.parametrize("reduction", REDUCTIONS)
    @pytest.mark.parametrize("smoothing", SMOOTHINGS)
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_values_and_grads(self, reduction, smoothing, dtype):
        with precision(dtype):
            logits, labels = make_case(dtype=np.dtype(dtype))
            fused_in = Tensor(logits.copy(), requires_grad=True)
            composed_in = Tensor(logits.copy(), requires_grad=True)
            fused = softmax_cross_entropy(
                fused_in, labels, reduction=reduction,
                label_smoothing=smoothing,
            )
            composed = cross_entropy_reference(
                composed_in, labels, reduction=reduction,
                label_smoothing=smoothing,
            )
            tol = 1e-12 if dtype == "float64" else 1e-5
            assert np.allclose(fused.data, composed.data, atol=tol)
            seed_grad = np.ones_like(fused.data)
            fused.backward(seed_grad)
            composed.backward(seed_grad)
            assert np.allclose(fused_in.grad, composed_in.grad, atol=tol)

    def test_non_unit_output_grad(self):
        logits, labels = make_case()
        fused_in = Tensor(logits.copy(), requires_grad=True)
        composed_in = Tensor(logits.copy(), requires_grad=True)
        seed = np.linspace(0.5, 2.0, logits.shape[0])
        softmax_cross_entropy(fused_in, labels, reduction="none").backward(seed)
        cross_entropy_reference(
            composed_in, labels, reduction="none"
        ).backward(seed)
        assert np.allclose(fused_in.grad, composed_in.grad, atol=1e-12)


class TestGradcheck:
    @pytest.mark.parametrize("reduction", REDUCTIONS)
    @pytest.mark.parametrize("smoothing", SMOOTHINGS)
    def test_against_finite_differences(self, reduction, smoothing):
        logits, labels = make_case(n=4, c=3, seed=1)
        check_gradients(
            lambda t: softmax_cross_entropy(
                t, labels, reduction=reduction, label_smoothing=smoothing
            ),
            [Tensor(logits, requires_grad=True)],
        )

    def test_under_float32_policy(self):
        # check_gradients pins itself to the policy's grad-check dtype, so
        # the fused node must grad-check even when built in a float32 region.
        with precision("float32"):
            logits, labels = make_case(n=4, c=3, seed=2, dtype=np.float32)
            check_gradients(
                lambda t: softmax_cross_entropy(t, labels),
                [Tensor(logits, requires_grad=True)],
            )


class TestNumericalStability:
    def test_huge_logits_stay_finite(self):
        logits = np.array([[1e4, -1e4, 0.0], [-1e4, 1e4, 1e4]])
        labels = np.array([0, 1])
        t = Tensor(logits, requires_grad=True)
        loss = softmax_cross_entropy(t, labels)
        loss.backward()
        assert np.isfinite(loss.item())
        assert np.all(np.isfinite(t.grad))

    def test_probabilities_grad_rows_sum_to_zero(self):
        # d loss / d logits sums to zero per row (softmax minus target).
        logits, labels = make_case()
        t = Tensor(logits, requires_grad=True)
        softmax_cross_entropy(t, labels).backward()
        # Tolerance tracks the accumulation dtype: the suite also runs
        # under a float32 default policy (REPRO_DTYPE=float32 in CI).
        atol = 100 * np.finfo(t.grad.dtype).eps
        assert np.allclose(t.grad.sum(axis=1), 0.0, atol=atol)


class TestDispatchAndValidation:
    def test_cross_entropy_routes_to_fused_on_hot_path(self):
        logits, labels = make_case()
        with hotpaths(True):
            fused = cross_entropy(Tensor(logits), labels)
        with hotpaths(False):
            composed = cross_entropy(Tensor(logits), labels)
        assert np.allclose(fused.data, composed.data, atol=1e-12)

    def test_rejects_bad_logits_shape(self):
        with pytest.raises(ValueError, match=r"logits must be \(N, C\)"):
            softmax_cross_entropy(Tensor(np.zeros(3)), np.array([0]))

    def test_rejects_unknown_reduction(self):
        logits, labels = make_case()
        with pytest.raises(ValueError, match="unknown reduction"):
            softmax_cross_entropy(Tensor(logits), labels, reduction="avg")

    def test_rejects_out_of_range_labels(self):
        logits, _ = make_case(c=5)
        bad = np.array([0, 1, 2, 3, 4, 5])
        with pytest.raises(ValueError, match="out of range"):
            softmax_cross_entropy(Tensor(logits), bad)

    def test_rejects_bad_smoothing(self):
        logits, labels = make_case()
        with pytest.raises(ValueError):
            softmax_cross_entropy(Tensor(logits), labels, label_smoothing=1.5)
