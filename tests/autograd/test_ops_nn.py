"""Tests for NN operations: matmul, activations, softmax, conv, pooling."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    avg_pool2d,
    check_gradients,
    conv2d,
    dropout_mask,
    leaky_relu,
    log_softmax,
    max_pool2d,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.autograd._im2col import col2im, conv_output_size, im2col


def randn(*shape, seed=0, scale=1.0):
    return Tensor(np.random.default_rng(seed).normal(size=shape) * scale)


def naive_conv2d(x, w, b, stride, padding):
    """Straightforward loop reference implementation of conv2d."""
    n, c_in, h, wdt = x.shape
    c_out, _, kh, kw = w.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (wdt + 2 * padding - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, c_out, out_h, out_w))
    for i in range(n):
        for o in range(c_out):
            for y in range(out_h):
                for z in range(out_w):
                    patch = xp[
                        i, :, y * stride : y * stride + kh,
                        z * stride : z * stride + kw,
                    ]
                    out[i, o, y, z] = (patch * w[o]).sum() + (
                        b[o] if b is not None else 0.0
                    )
    return out


class TestMatmul:
    def test_forward(self):
        a = np.random.default_rng(0).normal(size=(3, 4))
        b = np.random.default_rng(1).normal(size=(4, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_gradients(self):
        check_gradients(
            lambda a, b: a @ b, [randn(3, 4), randn(4, 2, seed=1)]
        )

    def test_batched(self):
        a = randn(2, 3, 4)
        b = randn(2, 4, 5, seed=1)
        assert (a @ b).shape == (2, 3, 5)
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_broadcast_batched(self):
        check_gradients(
            lambda x, y: x @ y, [randn(2, 3, 4), randn(4, 5, seed=1)]
        )


class TestActivations:
    def test_relu_values(self):
        out = relu(Tensor(np.array([-1.0, 0.0, 2.0])))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_gradient(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        relu(x).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu(self):
        out = leaky_relu(Tensor(np.array([-2.0, 2.0])), negative_slope=0.1)
        assert np.allclose(out.data, [-0.2, 2.0])
        check_gradients(
            lambda a: leaky_relu(a, negative_slope=0.1),
            [randn(4, seed=3) + 0.3],
        )

    def test_sigmoid_values_and_grad(self):
        assert np.isclose(sigmoid(Tensor([0.0])).item(), 0.5)
        check_gradients(lambda a: sigmoid(a), [randn(5)])

    def test_tanh_values_and_grad(self):
        assert np.isclose(tanh(Tensor([0.0])).item(), 0.0)
        check_gradients(lambda a: tanh(a), [randn(5)])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(randn(4, 7))
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_stable_with_large_logits(self):
        out = softmax(Tensor(np.array([[1000.0, 1000.0]])))
        assert np.allclose(out.data, [[0.5, 0.5]])

    def test_gradients(self):
        check_gradients(lambda a: softmax(a, axis=-1), [randn(3, 5)])

    def test_log_softmax_matches_log_of_softmax(self):
        x = randn(3, 5)
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_log_softmax_gradients(self):
        check_gradients(lambda a: log_softmax(a), [randn(3, 5)])


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_naive_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        ours = conv2d(
            Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding
        ).data
        theirs = naive_conv2d(x, w, b, stride, padding)
        assert np.allclose(ours, theirs)

    def test_no_bias(self):
        rng = np.random.default_rng(0)
        x, w = rng.normal(size=(1, 2, 4, 4)), rng.normal(size=(3, 2, 3, 3))
        ours = conv2d(Tensor(x), Tensor(w)).data
        theirs = naive_conv2d(x, w, None, 1, 0)
        assert np.allclose(ours, theirs)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channels"):
            conv2d(randn(1, 2, 4, 4), randn(3, 5, 3, 3))

    def test_gradients(self):
        check_gradients(
            lambda x, w, b: conv2d(x, w, b, stride=1, padding=1),
            [randn(2, 2, 5, 5), randn(3, 2, 3, 3, seed=1, scale=0.5),
             randn(3, seed=2)],
        )

    def test_gradients_strided(self):
        check_gradients(
            lambda x, w: conv2d(x, w, stride=2),
            [randn(1, 2, 6, 6), randn(2, 2, 2, 2, seed=1, scale=0.5)],
        )


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradients(self):
        check_gradients(lambda a: max_pool2d(a, 2), [randn(2, 3, 4, 4)])

    def test_avg_pool_gradients(self):
        check_gradients(lambda a: avg_pool2d(a, 2), [randn(2, 3, 4, 4)])

    def test_max_pool_stride(self):
        out = max_pool2d(randn(1, 1, 6, 6), kernel_size=3, stride=3)
        assert out.shape == (1, 1, 2, 2)

    def test_window_too_large_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            max_pool2d(randn(1, 1, 2, 2), kernel_size=5)

    def test_max_pool_padding_all_negative_input(self):
        """Padding cells must never win the argmax.

        With zero-filled padding, a window of strictly negative activations
        would report 0 (the pad value) as its max and route gradient into
        the void; the pad must act as -inf instead.
        """
        x = Tensor(
            np.full((1, 1, 2, 2), -3.0), requires_grad=True
        )
        out = max_pool2d(x, kernel_size=2, stride=2, padding=1)
        assert np.allclose(out.data, -3.0)
        out.backward(np.ones_like(out.data))
        # Each input cell is the max of exactly one window.
        assert np.allclose(x.grad, 1.0)

    def test_max_pool_padding_gradients(self):
        check_gradients(
            lambda a: max_pool2d(a, kernel_size=2, padding=1),
            [randn(2, 2, 4, 4)],
        )


class TestDropoutMask:
    def test_applies_mask(self):
        x = Tensor(np.ones((2, 2)))
        mask = np.array([[1.0, 0.0], [0.0, 2.0]])
        assert np.allclose(dropout_mask(x, mask).data, mask)

    def test_gradient_through_mask(self):
        x = Tensor(np.ones((2,)), requires_grad=True)
        dropout_mask(x, np.array([2.0, 0.0])).sum().backward()
        assert np.allclose(x.grad, [2.0, 0.0])


class TestIm2Col:
    def test_roundtrip_counts_overlaps(self):
        """col2im of all-ones must count each pixel's window membership."""
        x = np.ones((1, 1, 4, 4))
        cols = im2col(x, 3, 3, 1, 0)
        back = col2im(cols, x.shape, 3, 3, 1, 0)
        # Centre pixels belong to 4 windows; corners to 1.
        assert back[0, 0, 0, 0] == 1.0
        assert back[0, 0, 1, 1] == 4.0

    def test_output_size(self):
        assert conv_output_size(28, 3, 1, 1) == 28
        assert conv_output_size(28, 2, 2, 0) == 14

    def test_output_size_invalid(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self):
        cols = im2col(np.zeros((2, 3, 5, 5)), 3, 3, 1, 1)
        assert cols.shape == (2 * 5 * 5, 3 * 3 * 3)
