"""Tests for reduction operations and their gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, logsumexp


def randn(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape))


class TestForward:
    def test_sum_all(self):
        assert Tensor(np.ones((2, 3))).sum().item() == 6.0

    def test_sum_axis(self):
        out = Tensor(np.ones((2, 3))).sum(axis=0)
        assert out.shape == (3,)
        assert np.allclose(out.data, 2.0)

    def test_sum_keepdims(self):
        out = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_sum_negative_axis(self):
        out = Tensor(np.ones((2, 3))).sum(axis=-1)
        assert out.shape == (2,)

    def test_sum_multi_axis(self):
        out = Tensor(np.ones((2, 3, 4))).sum(axis=(0, 2))
        assert out.shape == (3,)
        assert np.allclose(out.data, 8.0)

    def test_mean(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.mean().item() == 2.5
        assert np.allclose(x.mean(axis=0).data, [1.5, 2.5, 3.5])

    def test_max_min(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]))
        assert x.max().item() == 5.0
        assert x.min().item() == 1.0
        assert np.allclose(x.max(axis=1).data, [5.0, 3.0])

    def test_var_std(self):
        x = Tensor(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.isclose(x.var().item(), 1.25)
        assert np.isclose(x.std().item(), np.sqrt(1.25))

    def test_logsumexp_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        ours = logsumexp(Tensor(x), axis=1).data
        theirs = np.log(np.exp(x).sum(axis=1))
        assert np.allclose(ours, theirs)

    def test_logsumexp_stable_at_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = logsumexp(x, axis=1)
        assert np.isfinite(out.data).all()
        assert np.isclose(out.item(), 1000.0 + np.log(2.0))

    def test_logsumexp_keepdims(self):
        out = logsumexp(randn(2, 3), axis=1, keepdims=True)
        assert out.shape == (2, 1)


class TestGradients:
    def test_sum(self):
        check_gradients(lambda a: a.sum(), [randn(3, 4)])

    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=0), [randn(3, 4)])

    def test_sum_keepdims(self):
        check_gradients(lambda a: a.sum(axis=1, keepdims=True), [randn(3, 4)])

    def test_mean(self):
        check_gradients(lambda a: a.mean(), [randn(3, 4)])

    def test_mean_axis(self):
        check_gradients(lambda a: a.mean(axis=(0, 2)), [randn(2, 3, 4)])

    def test_max(self):
        check_gradients(lambda a: a.max(axis=1), [randn(4, 5)])

    def test_min(self):
        check_gradients(lambda a: a.min(axis=0), [randn(4, 5)])

    def test_max_tie_splits_gradient(self):
        x = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5]])

    def test_var(self):
        check_gradients(lambda a: a.var(axis=0), [randn(5, 3)])

    def test_std(self):
        check_gradients(
            lambda a: a.std(axis=0, eps=1e-8), [randn(5, 3, seed=2)]
        )

    def test_logsumexp(self):
        check_gradients(lambda a: logsumexp(a, axis=1), [randn(3, 6)])

    def test_logsumexp_all_gradient_is_softmax(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
        logsumexp(x, axis=1).sum().backward()
        expected = np.exp(x.data) / np.exp(x.data).sum()
        assert np.allclose(x.grad, expected)
