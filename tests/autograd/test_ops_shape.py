"""Tests for shape operations and their gradients."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    broadcast_to,
    check_gradients,
    concat,
    flatten,
    pad,
    reshape,
    stack,
    transpose,
)


def randn(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape))


class TestForward:
    def test_reshape(self):
        x = Tensor(np.arange(6.0))
        assert reshape(x, (2, 3)).shape == (2, 3)
        assert x.reshape(3, 2).shape == (3, 2)

    def test_reshape_minus_one(self):
        assert randn(2, 3, 4).reshape(2, -1).shape == (2, 12)

    def test_transpose_default_reverses(self):
        assert transpose(randn(2, 3, 4)).shape == (4, 3, 2)

    def test_transpose_axes(self):
        assert transpose(randn(2, 3, 4), (1, 0, 2)).shape == (3, 2, 4)

    def test_getitem_slice(self):
        x = Tensor(np.arange(10.0))
        assert np.allclose(x[2:5].data, [2.0, 3.0, 4.0])

    def test_getitem_fancy(self):
        x = Tensor(np.arange(10.0))
        assert np.allclose(x[np.array([0, 0, 3])].data, [0.0, 0.0, 3.0])

    def test_concat(self):
        out = concat([randn(2, 3), randn(4, 3, seed=1)], axis=0)
        assert out.shape == (6, 3)

    def test_stack(self):
        out = stack([randn(2, 3), randn(2, 3, seed=1)], axis=0)
        assert out.shape == (2, 2, 3)

    def test_pad(self):
        out = pad(randn(2, 2), ((1, 1), (0, 2)))
        assert out.shape == (4, 4)
        assert out.data[0, 0] == 0.0

    def test_broadcast_to(self):
        out = broadcast_to(randn(1, 3), (4, 3))
        assert out.shape == (4, 3)

    def test_flatten(self):
        assert flatten(randn(2, 3, 4)).shape == (2, 12)
        assert flatten(randn(2, 3, 4), start_axis=2).shape == (2, 3, 4)


class TestGradients:
    def test_reshape(self):
        check_gradients(lambda a: a.reshape(6), [randn(2, 3)])

    def test_transpose(self):
        check_gradients(lambda a: a.transpose((2, 0, 1)), [randn(2, 3, 4)])

    def test_getitem_slice(self):
        check_gradients(lambda a: a[1:3, ::2], [randn(4, 6)])

    def test_getitem_fancy_accumulates(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(x.grad, [2.0, 0.0, 1.0])

    def test_concat(self):
        check_gradients(
            lambda a, b: concat([a, b], axis=1),
            [randn(2, 2), randn(2, 3, seed=1)],
        )

    def test_stack(self):
        check_gradients(
            lambda a, b: stack([a, b], axis=1),
            [randn(2, 3), randn(2, 3, seed=1)],
        )

    def test_pad(self):
        check_gradients(lambda a: pad(a, ((1, 0), (2, 1))), [randn(2, 3)])

    def test_broadcast_to(self):
        check_gradients(lambda a: broadcast_to(a, (5, 3)), [randn(1, 3)])

    def test_flatten(self):
        check_gradients(lambda a: flatten(a), [randn(2, 3, 2)])

    def test_getitem_boolean_mask(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([True, False, True, False])
        x[mask].sum().backward()
        assert np.allclose(x.grad, [1.0, 0.0, 1.0, 0.0])
