"""Compiled tape engine: bit-exact replay, guards, fusion, fallbacks.

The contract under test is the one ``docs/compiled.md`` documents: a
replayed :class:`CompiledStep` is **bit-for-bit** identical to eager
execution — outputs, requested input gradients and parameter ``.grad``
side effects — and anything the tape cannot replay faithfully falls back
to eager, transparently.
"""

import numpy as np
import pytest

from repro.autograd import CompiledStep, Tensor
from repro.models import MODEL_BUILDERS, build_model
from repro.nn import BatchNorm1d, Dropout, cross_entropy
from repro.runtime import clear_workspace, get_workspace

_RNG = np.random.default_rng(3)
_X = _RNG.standard_normal((2, 1, 28, 28))
_Y = np.array([3, 7])


def _model_step(model):
    """A train-step body: forward + CE loss, loss first as required."""

    def step(x, y):
        logits = model(x)
        loss = cross_entropy(logits, y)
        return loss, logits

    return step


def _eager_reference(name):
    """Ground-truth eager step on a fresh model: loss, logits, grads."""
    model = build_model(name, seed=0)
    x = Tensor(_X.copy(), requires_grad=True)
    logits = model(x)
    loss = cross_entropy(logits, _Y)
    loss.backward()
    param_grads = [p.grad.copy() for p in model.parameters()]
    return loss.data.copy(), logits.data.copy(), x.grad.copy(), param_grads


# --------------------------------------------------------------------------
# Bit-exact equivalence
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_replay_bit_identical_to_eager(name):
    """Trace call and every replay match eager outputs/grads exactly."""
    ref_loss, ref_logits, ref_xgrad, ref_pgrads = _eager_reference(name)
    model = build_model(name, seed=0)
    step = CompiledStep(_model_step(model), grad_inputs=(0,))
    for call in range(3):
        model.zero_grad()
        result = step(_X.copy(), _Y.copy())
        assert np.array_equal(result.outputs[0], ref_loss), (name, call)
        assert np.array_equal(result.outputs[1], ref_logits), (name, call)
        assert np.array_equal(result.input_grads[0], ref_xgrad), (name, call)
        for param, ref in zip(model.parameters(), ref_pgrads):
            assert np.array_equal(param.grad, ref), (name, call)
    assert step.stats == {
        "traces": 1, "hits": 2, "variants": 1, "disabled": None,
    }


def test_consume_inputs_skips_param_grads():
    """consume=("inputs",) DCEs the parameter accumulation from the tape."""
    _, _, ref_xgrad, _ = _eager_reference("small_cnn")
    model = build_model("small_cnn", seed=0)
    step = CompiledStep(
        _model_step(model), grad_inputs=(0,), consume=("inputs",)
    )
    step(_X.copy(), _Y.copy())  # trace runs eagerly: params do get grads
    model.zero_grad()
    result = step(_X.copy(), _Y.copy())
    assert step.stats["hits"] == 1
    assert np.array_equal(result.input_grads[0], ref_xgrad)
    assert all(p.grad is None for p in model.parameters())


def test_fusion_is_bitwise_transparent():
    """Fused elementwise chains replay bit-identically to unfused ones."""
    a = _RNG.standard_normal((16, 16))

    def body(x):
        # A linear single-consumer chain (relu -> neg -> sub -> mul) is
        # exactly what the fuser may collapse: every intermediate feeds
        # one op and the input has a single gradient contribution.
        u = (-(x.relu()) - 1.0) * 3.0
        return u.sum()

    results = {}
    for fuse in (False, True):
        step = CompiledStep(body, grad_inputs=(0,), fuse=fuse)
        step(a)  # trace
        results[fuse] = step(a)  # replay
        assert step.stats["hits"] == 1
        program = next(iter(step._variants.values()))
        kinds = {
            type(entry).__name__
            for entry in (
                tuple(program.forward_entries)
                + tuple(program.backward_entries)
            )
        }
        assert ("_FusedForward" in kinds) is fuse
        assert ("_FusedBackward" in kinds) is fuse
    for fused_v, plain_v in zip(
        results[True].outputs + results[True].input_grads,
        results[False].outputs + results[False].input_grads,
    ):
        assert np.array_equal(fused_v, plain_v)


# --------------------------------------------------------------------------
# Guards, variants, LRU
# --------------------------------------------------------------------------


def test_shape_and_dtype_changes_trace_new_variants():
    model = build_model("mnist_mlp", seed=0)
    step = CompiledStep(_model_step(model), grad_inputs=(0,))
    x2 = _RNG.standard_normal((2, 1, 28, 28))
    x3 = _RNG.standard_normal((3, 1, 28, 28))
    step(x2, np.array([0, 1]))
    step(x3, np.array([0, 1, 2]))           # new batch size -> new variant
    step(x2.astype(np.float32), np.array([0, 1]))  # new dtype -> new variant
    assert step.stats["traces"] == 3
    assert step.stats["variants"] == 3
    step(x2, np.array([4, 5]))              # same signature -> replay
    assert step.stats["hits"] == 1


def test_guard_token_invalidates_variant():
    token = {"mode": "train"}
    model = build_model("mnist_mlp", seed=0)
    step = CompiledStep(
        _model_step(model), grad_inputs=(0,),
        guard=lambda: token["mode"],
    )
    y = np.array([0, 1])
    step(_X, y)
    step(_X, y)
    assert step.stats == {
        "traces": 1, "hits": 1, "variants": 1, "disabled": None,
    }
    token["mode"] = "eval"
    step(_X, y)                             # guard changed -> retrace
    assert step.stats["traces"] == 2
    token["mode"] = "train"
    step(_X, y)                             # old variant still cached
    assert step.stats["hits"] == 2


def test_lru_evicts_oldest_variant():
    model = build_model("mnist_mlp", seed=0)
    step = CompiledStep(_model_step(model), grad_inputs=(0,), max_variants=2)
    for batch in (1, 2, 3):
        x = _RNG.standard_normal((batch, 1, 28, 28))
        step(x, np.arange(batch))
    assert step.stats["variants"] == 2
    step(_RNG.standard_normal((1, 1, 28, 28)), np.array([0]))  # evicted
    assert step.stats["traces"] == 4


def test_reset_releases_variants_and_reenables():
    model = build_model("mnist_mlp", seed=0)
    step = CompiledStep(_model_step(model), grad_inputs=(0,))
    step(_X, _Y)
    assert get_workspace().leased_bytes > 0 or step.stats["variants"] == 1
    step.reset()
    assert step.stats == {
        "traces": 0, "hits": 0, "variants": 0, "disabled": None,
    }


# --------------------------------------------------------------------------
# Eager fallbacks
# --------------------------------------------------------------------------


def test_dropout_falls_back_to_eager():
    """Fresh-RNG ops cannot replay: the step disables itself, stays correct."""
    drop = Dropout(rate=0.5, rng=11)
    dense_in = _RNG.standard_normal((4, 6))

    def body(x):
        return (drop(x) * x).sum()

    step = CompiledStep(body, grad_inputs=(0,))
    first = step(dense_in)
    assert step.stats["disabled"] is not None
    assert "replay" in step.stats["disabled"]
    assert step.stats["variants"] == 0
    second = step(dense_in)
    assert step.stats["hits"] == 0
    # Different dropout masks per call: both finite, both eager.
    assert np.isfinite(first.outputs[0]) and np.isfinite(second.outputs[0])
    assert first.input_grads[0].shape == dense_in.shape


def test_batchnorm_poisons_the_trace():
    """Out-of-graph running statistics discard the tape, not the result."""
    bn = BatchNorm1d(6)
    x = _RNG.standard_normal((8, 6))

    def body(inp):
        return (bn(inp) ** 2).sum()

    step = CompiledStep(body, grad_inputs=(0,))
    result = step(x)
    assert step.stats["disabled"] is not None
    assert "statistics" in step.stats["disabled"]
    # The fallen-back step still produced the eager result.
    eager_x = Tensor(x.copy(), requires_grad=True)
    loss = (bn(eager_x) ** 2).sum()
    loss.backward()
    assert result.input_grads[0].shape == x.shape
    assert np.isfinite(result.outputs[0])


def test_opaque_output_falls_back():
    """A step output computed outside the graph cannot be replayed."""

    def body(x):
        loss = (x * x).sum()
        return loss, np.asarray(loss.data) * 2.0  # constant to the tape

    step = CompiledStep(body, grad_inputs=(0,))
    step(_RNG.standard_normal((3, 3)))
    assert step.stats["disabled"] is not None
    assert "outside the autograd graph" in step.stats["disabled"]


# --------------------------------------------------------------------------
# Workspace discipline
# --------------------------------------------------------------------------


def test_replay_does_not_grow_the_workspace():
    """100 replays: leased bytes and pooled bytes stay flat."""
    clear_workspace()
    model = build_model("small_cnn", seed=0)
    step = CompiledStep(_model_step(model), grad_inputs=(0,))
    for _ in range(3):  # trace + settle the pool's steady state
        model.zero_grad()
        step(_X, _Y)
    pool = get_workspace()
    leased = pool.leased_bytes
    cached = pool.cached_bytes
    program = next(iter(step._variants.values()))
    lease_size = len(program.lease)
    for _ in range(100):
        model.zero_grad()
        step(_X, _Y)
    assert step.stats["hits"] >= 102
    assert pool.leased_bytes == leased
    assert pool.cached_bytes == cached
    assert len(program.lease) == lease_size
    assert all(v is None or isinstance(v, np.ndarray) for v in program.values)
