"""Shared fixtures for the test suite.

Expensive objects (datasets, a lightly trained model) are session-scoped so
the several-hundred-test suite stays fast.
"""

import numpy as np
import pytest

from repro.data import DataLoader, load_dataset
from repro.defenses import Trainer
from repro.models import mnist_mlp, small_cnn
from repro.optim import Adam


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def digits_small():
    """Tiny digit split: 20 train / 10 test per class."""
    return load_dataset("digits", train_per_class=20, test_per_class=10, seed=0)


@pytest.fixture(scope="session")
def fashion_small():
    """Tiny fashion split: 20 train / 10 test per class."""
    return load_dataset(
        "fashion", train_per_class=20, test_per_class=10, seed=0
    )


@pytest.fixture(scope="session")
def digits_arrays(digits_small):
    train, test = digits_small
    return train.arrays() + test.arrays()


@pytest.fixture(scope="session")
def trained_mlp(digits_small):
    """An MLP trained briefly on the tiny digit set (high clean accuracy)."""
    train, _test = digits_small
    model = mnist_mlp(seed=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
    trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=10)
    model.eval()
    return model


@pytest.fixture
def fresh_mlp():
    """Untrained MLP with a fixed seed."""
    return mnist_mlp(seed=0)


@pytest.fixture
def tiny_batch(digits_small):
    """A small (x, y) batch from the tiny test split."""
    _train, test = digits_small
    x, y = test.arrays()
    return x[:16], y[:16]
