"""Tests for common-corruption transforms."""

import numpy as np
import pytest

from repro.data import CORRUPTIONS, corrupt, corruption_sweep
from repro.data.corruptions import (
    brightness,
    contrast,
    gaussian_blur,
    gaussian_noise,
    impulse_noise,
    pixelate,
    shot_noise,
)


@pytest.fixture
def batch():
    return np.random.default_rng(0).uniform(0, 1, size=(4, 1, 28, 28))


class TestAllCorruptions:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    @pytest.mark.parametrize("severity", [1, 3, 5])
    def test_output_in_unit_box(self, batch, name, severity):
        out = corrupt(batch, name, severity, rng=0)
        assert out.shape == batch.shape
        assert out.min() >= 0.0 and out.max() <= 1.0

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_changes_input(self, batch, name):
        out = corrupt(batch, name, severity=3, rng=0)
        assert not np.array_equal(out, batch)

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_does_not_mutate_input(self, batch, name):
        original = batch.copy()
        corrupt(batch, name, severity=3, rng=0)
        assert np.array_equal(batch, original)

    def test_unknown_name(self, batch):
        with pytest.raises(KeyError, match="unknown corruption"):
            corrupt(batch, "fog_of_war")

    def test_invalid_severity(self, batch):
        with pytest.raises(ValueError, match="severity"):
            corrupt(batch, "gaussian_noise", severity=6)
        with pytest.raises(ValueError, match="severity"):
            corrupt(batch, "gaussian_noise", severity=0)


class TestSeverityMonotonicity:
    def test_gaussian_noise_grows(self, batch):
        deltas = [
            np.abs(gaussian_noise(batch, s, rng=0) - batch).mean()
            for s in (1, 3, 5)
        ]
        assert deltas[0] < deltas[1] < deltas[2]

    def test_contrast_shrinks_range(self, batch):
        ranges = [
            np.ptp(contrast(batch, s)) for s in (1, 5)
        ]
        assert ranges[1] < ranges[0]

    def test_blur_smooths(self, batch):
        def roughness(x):
            return np.abs(np.diff(x, axis=-1)).mean()

        assert roughness(gaussian_blur(batch, 5)) < roughness(batch)

    def test_impulse_fraction_grows(self, batch):
        def extremes(x):
            return ((x == 0.0) | (x == 1.0)).mean()

        low = extremes(impulse_noise(batch, 1, rng=0))
        high = extremes(impulse_noise(batch, 5, rng=0))
        assert high > low

    def test_pixelate_reduces_detail(self, batch):
        out = pixelate(batch, 5)
        # Blocky output: fewer unique values per image.
        assert len(np.unique(out[0])) < len(np.unique(batch[0]))

    def test_brightness_shifts_mean(self, batch):
        assert brightness(batch, 3).mean() > batch.mean()

    def test_shot_noise_preserves_scale(self, batch):
        out = shot_noise(batch, 1, rng=0)
        assert abs(out.mean() - batch.mean()) < 0.05


class TestCorruptionSweep:
    def test_full_grid(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        results = corruption_sweep(
            trained_mlp, x[:40], y[:40], severities=(1, 5), rng=0
        )
        assert set(results) == set(CORRUPTIONS)
        for row in results.values():
            assert set(row) == {1, 5}
            for value in row.values():
                assert 0.0 <= value <= 1.0

    def test_severity_hurts_on_average(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        results = corruption_sweep(
            trained_mlp, x, y, severities=(1, 5), rng=0
        )
        mean_low = np.mean([row[1] for row in results.values()])
        mean_high = np.mean([row[5] for row in results.values()])
        assert mean_high <= mean_low + 0.02
