"""Tests for dataset containers."""

import numpy as np
import pytest

from repro.data import (
    ConcatDataset,
    Subset,
    TensorDataset,
    train_test_split,
)
from repro.data.dataset import Dataset


def base_arrays(dataset):
    """The pre-vectorisation per-example materialisation, for parity."""
    return Dataset.arrays(dataset)


def make_dataset(n=10):
    x = np.arange(n * 4, dtype=np.float64).reshape(n, 4)
    y = np.arange(n) % 3
    return TensorDataset(x, y)


class TestTensorDataset:
    def test_len_getitem(self):
        ds = make_dataset(5)
        assert len(ds) == 5
        x, y = ds[2]
        assert x.shape == (4,)
        assert y == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            TensorDataset(np.zeros((3, 2)), np.zeros(4))

    def test_arrays_returns_backing(self):
        ds = make_dataset(4)
        x, y = ds.arrays()
        assert x.shape == (4, 4)
        assert y.shape == (4,)


class TestSubset:
    def test_selects_indices(self):
        ds = make_dataset(10)
        sub = Subset(ds, [3, 7])
        assert len(sub) == 2
        assert sub[0][1] == ds[3][1]
        assert sub[1][1] == ds[7][1]

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Subset(make_dataset(3), [5])

    def test_arrays(self):
        sub = Subset(make_dataset(10), [1, 2])
        x, y = sub.arrays()
        assert x.shape == (2, 4)

    def test_arrays_matches_base_implementation(self):
        """The vectorised override must equal the per-example loop."""
        sub = Subset(make_dataset(10), [7, 0, 3, 3, 9])
        x, y = sub.arrays()
        bx, by = base_arrays(sub)
        assert np.array_equal(x, bx)
        assert np.array_equal(y, by)
        assert x.dtype == bx.dtype

    def test_arrays_of_nested_subset(self):
        inner = Subset(make_dataset(10), [2, 4, 6, 8])
        outer = Subset(inner, [3, 0])
        x, y = outer.arrays()
        bx, by = base_arrays(outer)
        assert np.array_equal(x, bx)
        assert np.array_equal(y, by)


class TestConcatDataset:
    def test_length(self):
        cat = ConcatDataset([make_dataset(3), make_dataset(5)])
        assert len(cat) == 8

    def test_indexing_across_boundary(self):
        a, b = make_dataset(3), make_dataset(5)
        cat = ConcatDataset([a, b])
        assert np.array_equal(cat[2][0], a[2][0])
        assert np.array_equal(cat[3][0], b[0][0])
        assert np.array_equal(cat[7][0], b[4][0])

    def test_negative_index(self):
        cat = ConcatDataset([make_dataset(2), make_dataset(2)])
        assert np.array_equal(cat[-1][0], cat[3][0])

    def test_out_of_range(self):
        cat = ConcatDataset([make_dataset(2)])
        with pytest.raises(IndexError):
            cat[2]

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            ConcatDataset([])

    def test_arrays_matches_base_implementation(self):
        cat = ConcatDataset([make_dataset(3), make_dataset(5)])
        x, y = cat.arrays()
        bx, by = base_arrays(cat)
        assert np.array_equal(x, bx)
        assert np.array_equal(y, by)
        assert x.dtype == bx.dtype

    def test_arrays_of_concat_of_subsets(self):
        cat = ConcatDataset(
            [Subset(make_dataset(6), [5, 1]), Subset(make_dataset(4), [0, 3])]
        )
        x, y = cat.arrays()
        bx, by = base_arrays(cat)
        assert np.array_equal(x, bx)
        assert np.array_equal(y, by)


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(make_dataset(10), 0.3, rng=0)
        assert len(test) == 3
        assert len(train) == 7

    def test_disjoint_and_complete(self):
        ds = make_dataset(20)
        train, test = train_test_split(ds, 0.25, rng=0)
        all_indices = sorted(
            list(train.indices) + list(test.indices)
        )
        assert all_indices == list(range(20))

    def test_deterministic_given_seed(self):
        ds = make_dataset(10)
        t1, _ = train_test_split(ds, 0.2, rng=5)
        t2, _ = train_test_split(ds, 0.2, rng=5)
        assert np.array_equal(t1.indices, t2.indices)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(4), 0.0)
        with pytest.raises(ValueError):
            train_test_split(make_dataset(4), 1.0)
